//! Churn-network demo — topology repair and routing while the network
//! changes under your feet.
//!
//! Builds an ad hoc network on lossy radios, schedules a seeded churn
//! plan (joins, graceful leaves, crashes, waypoint drift), and runs the
//! hardened ΘALG actor protocol through it: every perturbation triggers
//! local re-convergence in the one-hop neighborhoods that can see it.
//! The result is scored against the direct offline construction on the
//! final live positions, and the same plan is then replayed under
//! reliable `(T,γ)`-balancing to show the packet-conservation ledger
//! surviving dead buffers and abandoned custody. Everything is
//! bit-for-bit replayable: the sequential and sharded executors produce
//! the same digest, asserted below.
//!
//! ```text
//! cargo run --release --example churn_network [n] [seed] [loss] [threads]
//! ```

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let loss: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.10_f64)
        .clamp(0.0, 1.0);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(adhoc_net::runtime::shard_threads_from_env)
        .max(1);

    println!(
        "== ΘALG re-convergence under churn, {:.0}% loss ({}) ==\n",
        loss * 100.0,
        if threads > 1 {
            format!("sharded, {threads} threads")
        } else {
            "sequential".to_string()
        }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
    let faults = FaultConfig::lossy(loss);

    // A random but seeded churn plan: the last n/10 nodes start outside
    // the network and may join; live nodes leave, crash, and drift.
    let spares = n / 10;
    let alive = n - spares;
    let events = (n / 6).max(4);
    let plan = ChurnPlan::random(alive, spares, 1.0, 2_000, events, seed ^ 0xc0ffee);
    println!(
        "churn plan: {} events over 2000 ticks ({spares} spare joiners)\n",
        plan.len()
    );

    // -- Topology repair under churn -------------------------------------
    let run = run_theta_churn(
        &points,
        alg.sectors(),
        range,
        ThetaTiming::default(),
        faults,
        seed,
        &plan,
        threads,
    );
    println!("ΘALG protocol over {n} nodes under churn:");
    println!("  joins               {:>8}", run.stats.joins);
    println!("  graceful leaves     {:>8}", run.stats.leaves);
    println!("  crashes             {:>8}", run.stats.crashes);
    println!("  drifts              {:>8}", run.stats.drifts);
    println!("  local re-convergences{:>7}", run.stats.reconvergences);
    println!("  live nodes at end   {:>8}", run.live.len());
    println!("  messages sent       {:>8}", run.stats.sent);
    println!("  in-flight to dead   {:>8}", run.stats.link_lost);
    println!("  fidelity vs offline {:>8.3}", run.fidelity);
    println!("  repair latency      {:>8}", run.repair_latency);
    println!("  replay digest       {:>#8x}\n", run.digest);

    // The digest must be identical on the other executor — replaying the
    // same churn sequentially and sharded is the determinism contract.
    let other_threads = if threads > 1 { 1 } else { 4 };
    let replay = run_theta_churn(
        &points,
        alg.sectors(),
        range,
        ThetaTiming::default(),
        faults,
        seed,
        &plan,
        other_threads,
    );
    assert_eq!(
        replay.digest, run.digest,
        "sequential and sharded churn replays diverged"
    );
    println!("digest parity vs {other_threads}-thread executor: ok\n");

    // -- Routing through the same churn ----------------------------------
    let direct = alg.build(&points);
    let dests = [0u32];
    let inject_steps = 200;
    let steps = inject_steps + 300;
    let workload = uniform_workload(n, &dests, inject_steps, 2, seed ^ 0x9e37);
    let cfg = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        steps,
    )
    .with_reliability(ReliableConfig::default());
    let routed = run_gossip_balancing_churn(
        &direct.spatial,
        &dests,
        cfg,
        &workload,
        faults,
        seed,
        &plan,
        threads,
    );
    println!("reliable (T,γ)-balancing through the same churn, {steps} steps:");
    println!("  packets injected    {:>8}", routed.injected);
    println!(
        "  delivered           {:>8}  ({:.1}%)",
        routed.absorbed,
        routed.delivery_rate() * 100.0
    );
    println!("  lost on the wire    {:>8}", routed.link_lost);
    println!("  still buffered      {:>8}", routed.buffered);
    println!("  in transport custody{:>8}", routed.in_flight);
    println!("  custody abandoned   {:>8}", routed.gave_up);
    println!("  ledger conserved    {:>8}", routed.conserved());
    assert!(
        routed.conserved(),
        "conservation ledger must balance under churn"
    );
}
