//! Adversarial-network demo — Byzantine balancers versus the quarantine
//! defense.
//!
//! Builds an ad hoc network, compromises a seeded subset of nodes with a
//! chosen attack (their *radios* lie — the nodes still run the honest
//! `(T,γ)`-balancing code), and routes the same workload twice: once
//! undefended, once with the plausibility/probe/attestation defense
//! layer quarantining detected liars. Stolen and blackholed packets are
//! booked as first-class custody classes, so the conservation ledger
//! balances exactly in every run, and both runs are bit-for-bit
//! replayable: the sequential and sharded executors produce the same
//! digest, asserted below.
//!
//! ```text
//! cargo run --release --example adversarial_network [n] [seed] [attack] [threads]
//! ```
//!
//! `attack` ∈ {deflate, blackhole, inflate, replay, drop, equivocate}.

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(60);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let attack_name = args.next().unwrap_or_else(|| "blackhole".to_string());
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(adhoc_net::runtime::shard_threads_from_env)
        .max(1);

    let attack = match attack_name.as_str() {
        "deflate" => Attack::Deflate { blackhole: false },
        "blackhole" => Attack::Deflate { blackhole: true },
        "inflate" => Attack::Inflate,
        "replay" => Attack::Replay,
        "drop" => Attack::SelectiveDrop {
            sources: (0..n as u32).step_by(2).collect(),
        },
        "equivocate" => Attack::Equivocate,
        other => {
            eprintln!("unknown attack {other:?}; pick deflate, blackhole, inflate, replay, drop, or equivocate");
            std::process::exit(2);
        }
    };

    println!(
        "== Byzantine {attack_name} attack vs quarantine defense ({}) ==\n",
        if threads > 1 {
            format!("sharded, {threads} threads")
        } else {
            "sequential".to_string()
        }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
    let direct = alg.build(&points);

    // Compromise ~10% of the network (never node 0, the sink) shortly
    // after start-up, once honest gossip has primed every cache.
    let byz = (n / 10).max(2);
    let adversary = AdversaryPlan::random(n, byz, attack, 50, &[0], seed ^ 0xbad);
    println!(
        "compromised {byz}/{n} nodes: {:?}\n",
        adversary.compromised()
    );

    let dests = [0u32];
    let inject_steps = 250;
    let steps = inject_steps + 450;
    let workload = uniform_workload(n, &dests, inject_steps, 2, seed ^ 0x9e37);
    let base = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        steps,
    );

    // A sharper starvation probe than the default: the demo workload is
    // thin (2 packets/step across the whole network), so each watcher
    // feeds its local liar slowly.
    let defense = DefenseConfig {
        probe_packets: 4,
        ..DefenseConfig::default()
    };
    let mut digests = Vec::new();
    for (label, cfg) in [
        ("defense off", base),
        ("defense on", base.with_defense(defense)),
    ] {
        let run = run_gossip_balancing_adversarial(
            &direct.spatial,
            &dests,
            cfg,
            &workload,
            FaultConfig::lossy(0.05),
            seed,
            &ChurnPlan::default(),
            &adversary,
            threads,
        );
        println!("(T,γ)-balancing, {label}, {steps} steps:");
        println!("  packets injected    {:>8}", run.injected);
        println!(
            "  delivered           {:>8}  ({:.1}%)",
            run.absorbed,
            run.delivery_rate() * 100.0
        );
        println!("  stolen              {:>8}", run.stolen);
        println!("  blackholed          {:>8}", run.blackholed);
        println!("  implausible frames  {:>8}", run.implausible_gossip);
        println!("  equivocation proofs {:>8}", run.equivocations);
        println!("  quarantine events   {:>8}", run.quarantines);
        println!("  nodes quarantined   {:>8?}", run.quarantined_nodes);
        println!("  ledger conserved    {:>8}", run.conserved());
        println!("  replay digest       {:>#8x}\n", run.digest);
        assert!(
            run.conserved(),
            "conservation ledger must balance under attack"
        );
        digests.push((cfg, run.digest, run.absorbed));
    }

    // The defense must never convict honest nodes, and with liars in the
    // network it should pay for itself.
    let (_, _, absorbed_off) = digests[0];
    let (_, _, absorbed_on) = digests[1];
    println!(
        "defense recovered {:+} delivered packets\n",
        absorbed_on as i64 - absorbed_off as i64
    );

    // Digest parity on the other executor — the adversary is part of the
    // determinism contract.
    let other_threads = if threads > 1 { 1 } else { 4 };
    for (cfg, digest, _) in digests {
        let replay = run_gossip_balancing_adversarial(
            &direct.spatial,
            &dests,
            cfg,
            &workload,
            FaultConfig::lossy(0.05),
            seed,
            &ChurnPlan::default(),
            &adversary,
            other_threads,
        );
        assert_eq!(
            replay.digest, digest,
            "sequential and sharded adversarial replays diverged"
        );
    }
    println!("digest parity vs {other_threads}-thread executor: ok");
}
