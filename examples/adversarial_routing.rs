//! Adversarial routing demo — the Theorem 3.1 pipeline end to end.
//!
//! An OPT-by-construction adversary builds a feasible conflict-free
//! schedule, then feeds the same edge activations and injections to the
//! `(T,γ)`-balancing router (with the theorem's parameter settings) and
//! to a greedy shortest-path baseline. Prints throughput and cost
//! competitive ratios for several ε.
//!
//! ```text
//! cargo run --release --example adversarial_routing [n] [seed]
//! ```

use adhoc_net::prelude::*;
use adhoc_net::sim::build_schedule_hops;
use adhoc_net::sim::runner::run_greedy_on_schedule;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(80);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(11);

    println!("== adversarial routing: (T,γ)-balancing vs OPT-by-construction ==\n");

    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let sg = unit_disk_graph(&points, 0.5);
    assert!(is_connected(&sg.graph));

    // Six sustained flows of 200 packets each.
    let flows = Workload::RandomPairs.pairs(n, 6, &mut rng);
    let mut pairs = Vec::new();
    for _ in 0..200 {
        pairs.extend(flows.iter().copied());
    }
    let schedule = build_schedule_hops(&sg, &pairs);
    println!(
        "OPT schedule: {} packets over {} steps (L̄ = {:.2}, C̄ = {:.4}, buffer B = {})",
        schedule.packets,
        schedule.len(),
        schedule.l_bar(),
        schedule.c_bar(),
        schedule.opt_buffer
    );

    let mut dests: Vec<u32> = schedule
        .injections
        .iter()
        .flat_map(|v| v.iter().map(|&(_, d)| d))
        .collect();
    dests.sort_unstable();
    dests.dedup();

    println!("\n ε     T      γ        H     thr-ratio  (target ≥1−ε)  cost-ratio  (bound ≤1+2/ε)");
    for eps in [0.5, 0.25, 0.1] {
        let mut cfg = BalancingConfig::from_theorem_3_1(
            schedule.opt_buffer,
            1,
            schedule.l_bar(),
            schedule.c_bar(),
            eps,
        );
        cfg.capacity = cfg.capacity.max(220);
        let mut router = BalancingRouter::new(sg.len(), &dests, cfg);
        let rep = run_balancing_on_schedule(&mut router, &schedule, 40);
        println!(
            " {:<5} {:<6.2} {:<8.2} {:<5} {:<9.3}  {:<14.2} {:<11.3} {:<8.2}",
            eps,
            cfg.threshold,
            cfg.gamma,
            cfg.capacity,
            rep.throughput_ratio(),
            1.0 - eps,
            rep.cost_ratio().unwrap_or(f64::NAN),
            1.0 + 2.0 / eps,
        );
    }

    // Greedy baseline under the same adversary.
    let mut greedy = GreedyRouter::new(&sg.hop_graph(), &dests, 220);
    let grep = run_greedy_on_schedule(&mut greedy, &schedule, 40);
    println!(
        "\n greedy shortest-path baseline: thr-ratio {:.3}, cost-ratio {:.3}",
        grep.throughput_ratio(),
        grep.cost_ratio().unwrap_or(f64::NAN)
    );
}
