//! Fixed-transmission-strength demo — the §3.4 honeycomb algorithm.
//!
//! A warehouse-style grid of unit-range radios (no power control at all)
//! moves inventory messages to four corner gateways. Shows the hexagon
//! tiling at work: per-hexagon contestants, `p_t = 1/6` selection,
//! collision rate ≤ 1/2 (Lemma 3.7), and sustained goodput (Theorem 3.8).
//!
//! ```text
//! cargo run --release --example fixed_range_honeycomb [side] [seed]
//! ```

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let side: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(10);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(5);

    println!("== honeycomb algorithm: {side}×{side} grid of unit-range radios ==\n");

    // Grid spacing 0.8: only 4-neighbors are within unit range.
    let mut positions = Vec::new();
    for i in 0..side {
        for j in 0..side {
            positions.push(Point::new(0.8 * i as f64, 0.8 * j as f64));
        }
    }
    let n = positions.len();
    let gateways = [
        0u32,
        (side - 1) as u32,
        ((side - 1) * side) as u32,
        (n - 1) as u32,
    ];
    println!("gateways at grid corners: {gateways:?}");

    let delta = 0.5;
    let grid = HexGrid::for_guard_zone(delta);
    let mut hexes: Vec<_> = positions.iter().map(|&p| grid.hex_of(p)).collect();
    hexes.sort_unstable();
    hexes.dedup();
    println!(
        "hexagon tiling (Fig. 5): side {} ⇒ the deployment spans {} hexagons",
        grid.side(),
        hexes.len()
    );

    let mut router = HoneycombRouter::new(
        &positions,
        &gateways,
        HoneycombConfig {
            threshold: 0.5,
            capacity: 12,
            delta,
            p_t: 1.0 / 6.0,
        },
    );
    println!("unit-range links: {}", router.num_links());

    let steps = 20_000usize;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut contested = 0usize;
    let mut selected = 0usize;
    let mut succeeded = 0usize;
    for s in 0..steps {
        // interior nodes generate messages round-robin to a rotating
        // gateway, at a rate the per-hexagon channel can carry
        if s % 8 == 0 {
            let src = (side + 1 + (s / 8 % (n - 2 * side))) as u32;
            let dst = gateways[s % 4];
            if src != dst {
                router.inject(src, dst);
            }
        }
        let out = router.step(&mut rng);
        contested += out.contestants;
        selected += out.selected;
        succeeded += out.succeeded;
    }

    let m = router.metrics();
    println!("\n-- after {steps} steps --");
    println!("contestant slots:     {contested}");
    println!(
        "selected → succeeded: {selected} → {succeeded} (collision rate {:.3}, Lemma 3.7 bound ≤ 0.5)",
        1.0 - succeeded as f64 / selected.max(1) as f64
    );
    println!(
        "delivered {} of {} injected ({} dropped at admission), goodput {:.3}/step",
        m.delivered,
        m.injected,
        m.dropped,
        m.throughput().unwrap_or(0.0)
    );
    println!(
        "avg hops per delivery: {:.2}",
        m.avg_path_length().unwrap_or(0.0)
    );
}
