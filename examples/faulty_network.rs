//! Faulty-network demo — topology control and routing over lossy radios.
//!
//! Builds an ad hoc network whose links drop 10% of all transmissions,
//! runs the hardened 3-round ΘALG actor protocol (retransmit + ack) to
//! construct `𝒩`, verifies the result against the direct construction,
//! then routes a uniform workload over the reconstructed topology with
//! distributed `(T,γ)`-balancing and gossiped buffer heights — first
//! fire-and-forget, then with packet traffic on the per-link
//! reliable-delivery sublayer — all bit-for-bit replayable from the seed.
//!
//! ```text
//! cargo run --release --example faulty_network [n] [seed] [loss] [threads]
//! ```
//!
//! `threads > 1` runs both protocols on the sharded parallel executor;
//! the replay digests are bit-identical to the sequential run — try it.

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let loss: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.10_f64)
        .clamp(0.0, 1.0);
    let threads: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(adhoc_net::runtime::shard_threads_from_env)
        .max(1);

    println!(
        "== ΘALG + (T,γ)-balancing over links with {:.0}% loss ({}) ==\n",
        loss * 100.0,
        if threads > 1 {
            format!("sharded, {threads} threads")
        } else {
            "sequential".to_string()
        }
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
    let faults = FaultConfig::lossy(loss);

    // -- Topology control under loss ------------------------------------
    let direct = alg.build(&points);
    let run = run_theta_protocol_sharded(
        &points,
        alg.sectors(),
        range,
        ThetaTiming::default(),
        faults,
        seed,
        threads,
    );
    let fidelity = edge_fidelity(&direct.spatial, &run.graph);
    println!("ΘALG protocol over {n} nodes:");
    println!("  messages sent       {:>8}", run.stats.sent);
    println!(
        "  dropped by links    {:>8}  ({:.1}%)",
        run.stats.dropped,
        run.stats.loss_rate() * 100.0
    );
    println!("  edges built         {:>8}", run.graph.graph.num_edges());
    println!("  fidelity vs direct  {:>8.3}", fidelity);
    println!(
        "  exact match         {:>8}",
        direct.spatial.graph == run.graph.graph
    );
    println!("  edge awareness      {:>8.3}", run.edge_awareness);
    println!("  replay digest       {:>#8x}\n", run.digest);

    // -- Routing over the reconstructed topology, same faulty links ------
    // Injections stop early so queues and retransmit windows can drain;
    // the delivered fraction then measures loss, not truncation.
    let dests = [0u32];
    let inject_steps = 1500;
    let steps = inject_steps + 500;
    let workload = uniform_workload(n, &dests, inject_steps, 2, seed ^ 0x9e37);
    let cfg = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        steps,
    );
    for (mode, cfg) in [
        ("fire-and-forget", cfg),
        (
            "reliable sublayer",
            cfg.with_reliability(ReliableConfig::default()),
        ),
    ] {
        let routed =
            run_gossip_balancing_sharded(&run.graph, &dests, cfg, &workload, faults, seed, threads);
        println!("(T,γ)-balancing with height gossip, {steps} steps, {mode}:");
        println!("  packets injected    {:>8}", routed.injected);
        println!(
            "  delivered           {:>8}  ({:.1}%)",
            routed.absorbed,
            routed.delivery_rate() * 100.0
        );
        println!("  lost on the wire    {:>8}", routed.link_lost);
        println!("  still buffered      {:>8}", routed.buffered);
        println!("  in transport custody{:>8}", routed.in_flight);
        println!("  retransmissions     {:>8}", routed.stats.retransmits);
        println!("  acks sent           {:>8}", routed.stats.acks);
        println!("  gossip messages     {:>8}", routed.gossips_sent);
        println!("  ledger conserved    {:>8}\n", routed.conserved());
        assert!(routed.conserved(), "conservation ledger must balance");
    }
}
