//! Render the paper's structures as SVG files.
//!
//! Produces, in `./renders/`:
//! * `gstar.svg` — the dense transmission graph `G*`;
//! * `theta.svg` — the ΘALG topology `𝒩`;
//! * `overlay.svg` — `𝒩` (red) over `G*` (grey): the visual version of
//!   the paper's sparsification claim;
//! * `honeycomb.svg` — the §3.4 hexagon tiling over the node set
//!   (paper Figure 5).
//!
//! ```text
//! cargo run --release --example render_topology [n] [seed]
//! ```

use adhoc_net::prelude::*;
use adhoc_net::sim::render::{render_hex_tiling_svg, render_overlay_svg, render_svg, RenderStyle};
use rand::rngs::StdRng;

fn main() -> std::io::Result<()> {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(250);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);

    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    let gstar = unit_disk_graph(&points, range);
    let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);

    std::fs::create_dir_all("renders")?;
    let style = RenderStyle::default();
    std::fs::write("renders/gstar.svg", render_svg(&gstar, &style))?;
    std::fs::write("renders/theta.svg", render_svg(&topo.spatial, &style))?;
    std::fs::write(
        "renders/overlay.svg",
        render_overlay_svg(&gstar, &topo.spatial, 800.0),
    )?;
    std::fs::write(
        "renders/honeycomb.svg",
        render_hex_tiling_svg(&points, HexGrid::for_guard_zone(0.5), 800.0),
    )?;

    println!(
        "rendered {} nodes: G* has {} edges, 𝒩 has {} edges (max degree {} ≤ {})",
        n,
        gstar.graph.num_edges(),
        topo.spatial.graph.num_edges(),
        topo.spatial.graph.max_degree(),
        topo.degree_bound(),
    );
    println!("wrote renders/gstar.svg, theta.svg, overlay.svg, honeycomb.svg");
    Ok(())
}
