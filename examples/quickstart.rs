//! Quickstart: build the ΘALG topology on random nodes and inspect the
//! paper's §2 guarantees.
//!
//! ```text
//! cargo run --release --example quickstart [n] [seed]
//! ```

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(400);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(42);

    println!("== adhoc-net quickstart: n = {n}, seed = {seed} ==\n");

    // 1. Drop n nodes uniformly in the unit square.
    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    println!("max transmission range D = {range:.4}");

    // 2. The transmission graph G* (everything in range).
    let gstar = unit_disk_graph(&points, range);
    println!(
        "G*: {} edges, max degree {}, connected: {}",
        gstar.graph.num_edges(),
        gstar.graph.max_degree(),
        is_connected(&gstar.graph)
    );

    // 3. ΘALG with θ = π/3 (the paper's canonical setting).
    let theta = std::f64::consts::FRAC_PI_3;
    let topo = ThetaAlg::new(theta, range).build(&points);
    let report = verify_lemma_2_1(&topo);
    println!(
        "𝒩:  {} edges, max degree {} (Lemma 2.1 bound {}), avg degree {:.2}, connected: {}",
        topo.spatial.graph.num_edges(),
        report.max_degree,
        report.bound,
        report.avg_degree,
        report.connected
    );
    assert!(report.holds(), "Lemma 2.1 must hold");

    // 4. Theorem 2.2: energy-stretch is a small constant.
    for kappa in [2.0, 4.0] {
        let st = energy_stretch(&topo.spatial, &gstar, kappa);
        println!(
            "energy-stretch (κ = {kappa}): max {:.3}, avg {:.3} over {} pairs",
            st.max, st.avg, st.pairs
        );
    }

    // 5. Distance-stretch for comparison (Theorem 2.7 regime).
    let ds = distance_stretch(&topo.spatial, &gstar);
    println!(
        "distance-stretch:        max {:.3}, avg {:.3}",
        ds.max, ds.avg
    );

    // 6. Interference number (Lemma 2.10: O(log n) for uniform nodes).
    let model = InterferenceModel::new(0.5);
    let i_n = interference_number(&topo.spatial, model);
    let i_g = interference_number(&gstar, model);
    println!(
        "interference number: I(𝒩) = {i_n}, I(G*) = {i_g}, log₂ n = {:.1}",
        (n as f64).log2()
    );

    // 7. θ-path replacement (Theorem 2.8 machinery).
    let some_edges: Vec<(u32, u32)> = gstar
        .graph
        .edges()
        .take(5)
        .map(|(u, v, _)| (u, v))
        .collect();
    for (u, v) in some_edges {
        let path = replace_edge(&topo, u, v).unwrap();
        println!(
            "G* edge ({u},{v}) |uv| = {:.3}  →  𝒩 path of {} hops",
            gstar.edge_len(u, v),
            path.len()
        );
    }

    println!("\nAll of the paper's §2 guarantees verified on this instance.");
}
