//! Sharded-executor scaling probe: wall-clock of one hardened ΘALG run
//! at each worker-thread count, with digest parity asserted against the
//! sequential run. Produces the numbers quoted in EXPERIMENTS.md (E20).
//!
//! ```text
//! cargo run --release --example shard_scaling [n] [seed] [loss]
//! ```
//!
//! On a single-core host every sharded arm measures coordination
//! overhead, not speedup — the digest-parity assertion is still
//! meaningful there, the timings are not.

use adhoc_net::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(1000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(7);
    let loss: f64 = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.10_f64)
        .clamp(0.0, 1.0);

    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
    let faults = FaultConfig::lossy(loss);

    println!(
        "== ΘALG sharded-executor scaling: n={n}, {:.0}% loss ==",
        loss * 100.0
    );
    println!(
        "{:>8}  {:>10}  {:>8}  digest",
        "threads", "wall [ms]", "speedup"
    );

    let mut baseline_ms = 0.0;
    let mut baseline_digest = 0;
    for threads in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let run = run_theta_protocol_sharded(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            faults,
            seed,
            threads,
        );
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if threads == 1 {
            baseline_ms = ms;
            baseline_digest = run.digest;
        } else {
            assert_eq!(
                run.digest, baseline_digest,
                "digest parity at {threads} threads"
            );
        }
        println!(
            "{threads:>8}  {ms:>10.1}  {:>7.2}x  {:#x}",
            baseline_ms / ms,
            run.digest
        );
    }
}
