//! Sensor-field scenario: a civilized (λ-precision) deployment — sensors
//! are never closer than a minimum separation — reporting readings to a
//! base station over the ΘALG topology with the `(T,γ,I)`-balancing
//! protocol, under realistic interference.
//!
//! Compares the energy per delivered reading against a shortest-path
//! greedy router on the full transmission graph (no topology control):
//! topology control + cost-aware balancing saves energy per delivery and
//! slashes the interference number.
//!
//! ```text
//! cargo run --release --example sensor_field [n] [seed]
//! ```

use adhoc_net::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(250);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    println!("== sensor field: {n} λ-separated sensors, one base station ==\n");

    let lambda = (0.5 / (n as f64).sqrt()).min(0.05);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = NodeDistribution::Civilized { lambda }
        .sample(n, &mut rng)
        .expect("deployment too dense");
    let range = default_max_range(n).max(4.0 * lambda);
    let gstar = unit_disk_graph(&points, range);
    assert!(
        is_connected(&gstar.graph),
        "deployment not connected; re-seed"
    );

    // Base station = node nearest the center of the field.
    let center = Point::new(0.5, 0.5);
    let base = (0..n as u32)
        .min_by(|&a, &b| {
            points[a as usize]
                .dist(center)
                .partial_cmp(&points[b as usize].dist(center))
                .unwrap()
        })
        .unwrap();
    println!("base station: node {base} at {:?}", points[base as usize]);

    // ΘALG topology.
    let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
    let model = InterferenceModel::new(0.5);
    println!(
        "𝒩: {} edges (G*: {}), I(𝒩) = {}, I(G*) = {}",
        topo.spatial.graph.num_edges(),
        gstar.graph.num_edges(),
        interference_number(&topo.spatial, model),
        interference_number(&gstar, model),
    );

    // (T,γ,I)-balancing over 𝒩 with the randomized MAC.
    let kappa = 2.0;
    let cfg = BalancingConfig {
        threshold: 0.5,
        gamma: 0.2,
        capacity: 50,
    };
    let mut router = InterferenceRouter::new(
        &topo.spatial,
        &[base],
        cfg,
        model,
        ActivationRule::Local,
        kappa,
    );

    // The same protocol run directly on G* — what happens WITHOUT
    // topology control: the interference number explodes, so the
    // randomized MAC almost never activates an edge.
    let mut router_gstar =
        InterferenceRouter::new(&gstar, &[base], cfg, model, ActivationRule::Local, kappa);

    // Interference-free greedy on G* as an unrealizable upper bound.
    let mut greedy = GreedyRouter::new(&gstar.energy_graph(kappa), &[base], cfg.capacity);
    let gstar_edges: Vec<ActiveEdge> = gstar
        .graph
        .edges()
        .map(|(u, v, w)| ActiveEdge::new(u, v, w.powf(kappa)))
        .collect();

    // Sensors report at a rate the shared medium can actually carry.
    let steps = 40_000usize;
    let mut proto_rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    for s in 0..steps {
        let reporter = (s % n) as u32;
        if reporter != base && s < 25_000 && proto_rng.gen_bool(0.2) {
            router.inject(reporter, base);
            router_gstar.inject(reporter, base);
            greedy.inject(reporter, base);
        }
        router.step(&mut proto_rng);
        router_gstar.step(&mut proto_rng);
        greedy.step(&gstar_edges);
    }

    let m = router.metrics();
    let mg = router_gstar.metrics();
    let g = greedy.metrics();
    println!("\n-- after {steps} steps --");
    println!(
        "(T,γ,I)-balancing on 𝒩:  delivered {:>4} / {} injected, energy/delivery {:.4}, collisions {}",
        m.delivered,
        m.injected,
        m.avg_cost_per_delivery().unwrap_or(0.0),
        m.failed_sends
    );
    println!(
        "(T,γ,I)-balancing on G*: delivered {:>4} / {} injected — no topology control: I(G*) ≫ I(𝒩) starves the MAC",
        mg.delivered, mg.injected
    );
    println!(
        "greedy on G*, interference IGNORED (unrealizable upper bound): delivered {:>4}, energy/delivery {:.4}",
        g.delivered,
        g.avg_cost_per_delivery().unwrap_or(0.0)
    );
    println!(
        "\ntopology control gain under real interference: {:.2}× more deliveries than routing on raw G*",
        m.delivered.max(1) as f64 / mg.delivered.max(1) as f64
    );
}
