//! Mobile ad hoc network demo — topology control under mobility.
//!
//! Nodes move by random waypoint; every `rebuild_every` steps the ΘALG
//! protocol re-runs its three local message rounds on the new positions
//! (the paper's motivation: "since the underlying topology may change
//! with time, we need routing algorithms that effectively react to
//! dynamically changing network conditions"). The `(T,γ)`-balancing
//! router keeps its buffers across rebuilds — its correctness never
//! depended on the topology being stable — and deliveries continue.
//!
//! ```text
//! cargo run --release --example mobile_network [n] [seed]
//! ```

use adhoc_net::prelude::*;
use adhoc_net::sim::mobility::RandomWaypoint;
use rand::rngs::StdRng;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(120);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(9);

    println!("== mobile network: {n} random-waypoint nodes, ΘALG rebuilt on the fly ==\n");

    let mut rng = StdRng::seed_from_u64(seed);
    let start = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let mut mobility = RandomWaypoint::new(start, 0.002, 0.01, &mut rng);
    let range = default_max_range(n) * 1.3; // margin for movement
    let theta = std::f64::consts::FRAC_PI_3;
    let sink = 0u32;

    let cfg = BalancingConfig {
        threshold: 2.0,
        gamma: 5.0,
        capacity: 40,
    };
    let mut router = BalancingRouter::new(n, &[sink], cfg);

    let steps = 4000usize;
    let rebuild_every = 25usize;
    let mut topo = ThetaAlg::new(theta, range).build(mobility.positions());
    let mut rebuilds = 0usize;
    let mut disconnected_epochs = 0usize;

    for s in 0..steps {
        if s % rebuild_every == 0 && s > 0 {
            topo = ThetaAlg::new(theta, range).build(mobility.positions());
            rebuilds += 1;
            if !is_connected(&topo.spatial.graph) {
                disconnected_epochs += 1;
            }
        }
        // Edge costs move with the nodes: recompute energy per use.
        let pts = mobility.positions();
        let active: Vec<ActiveEdge> = topo
            .spatial
            .graph
            .edges()
            .map(|(u, v, _)| {
                let c = pts[u as usize].energy_cost(pts[v as usize], 2.0);
                ActiveEdge::new(u, v, c)
            })
            .collect();
        let src = (1 + (s % (n - 1))) as u32;
        router.inject(src, sink);
        router.step(&active);
        mobility.step(&mut rng);
    }

    let m = router.metrics();
    println!("steps:              {steps} ({rebuilds} topology rebuilds, {disconnected_epochs} momentarily disconnected)");
    println!("injected/delivered: {} / {}", m.injected, m.delivered);
    println!("dropped (admission): {}", m.dropped);
    println!(
        "energy per delivery: {:.5}, avg hops {:.2}",
        m.avg_cost_per_delivery().unwrap_or(0.0),
        m.avg_path_length().unwrap_or(0.0)
    );
    println!(
        "final Lemma 2.1 check on the moving topology: {:?}",
        verify_lemma_2_1(&topo)
    );
    assert!(m.delivered > 0, "mobile network must keep delivering");
}
