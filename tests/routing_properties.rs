//! Property-based integration tests on the routing layer: conservation
//! and safety must survive *fully adversarial* edge activations, cost
//! changes, injections — and failure injection (edges vanishing
//! mid-flight). This is exactly the adversary class of paper §3.1.

use adhoc_net::prelude::*;
use proptest::prelude::*;

/// One adversarial step: (u, v, cost) activations and (src, dst)
/// injections.
type ScriptStep = (Vec<(u32, u32, f64)>, Vec<(u32, u32)>);

/// An arbitrary adversarial script: per step, a set of (u, v, cost)
/// activations and a set of injections.
#[derive(Debug, Clone)]
struct Script {
    n: usize,
    steps: Vec<ScriptStep>,
}

fn arb_script() -> impl Strategy<Value = Script> {
    (4usize..12).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f64..4.0)
            .prop_filter("no self loops", |(u, v, _)| u != v);
        let inj = (0..n as u32, 0..n as u32).prop_filter("no self pairs", |(s, d)| s != d);
        let step = (
            proptest::collection::vec(edge, 0..6),
            proptest::collection::vec(inj, 0..4),
        );
        proptest::collection::vec(step, 1..40).prop_map(move |steps| Script { n, steps })
    })
}

fn dests_of(script: &Script) -> Vec<u32> {
    let mut d: Vec<u32> = script
        .steps
        .iter()
        .flat_map(|(_, injs)| injs.iter().map(|&(_, d)| d))
        .collect();
    d.sort_unstable();
    d.dedup();
    if d.is_empty() {
        d.push(0);
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// No packet is ever created or destroyed except by inject / absorb /
    /// admission drop — under arbitrary adversarial scripts.
    #[test]
    fn balancing_conserves_under_any_adversary(
        script in arb_script(),
        threshold in 0.0f64..3.0,
        gamma in 0.0f64..2.0,
        capacity in 1u32..20
    ) {
        let dests = dests_of(&script);
        let mut router = BalancingRouter::new(
            script.n,
            &dests,
            BalancingConfig { threshold, gamma, capacity },
        );
        for (edges, injs) in &script.steps {
            for &(s, d) in injs {
                router.inject(s, d);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            router.step(&active);
        }
        prop_assert!(router.conserved());
        let m = router.metrics();
        prop_assert_eq!(m.steps, script.steps.len() as u64);
        prop_assert!(m.delivered <= m.injected);
    }

    /// Buffer heights never exceed capacity, whatever the adversary does.
    #[test]
    fn heights_bounded_by_capacity(
        script in arb_script(),
        capacity in 1u32..8
    ) {
        let dests = dests_of(&script);
        let mut router = BalancingRouter::new(
            script.n,
            &dests,
            BalancingConfig { threshold: 0.0, gamma: 0.0, capacity },
        );
        for (edges, injs) in &script.steps {
            for &(s, d) in injs {
                router.inject(s, d);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            router.step(&active);
            prop_assert!(router.bank().max_height() <= capacity);
        }
    }

    /// Greedy baseline holds the same safety invariants.
    #[test]
    fn greedy_conserves(script in arb_script(), capacity in 1u32..16) {
        let dests = dests_of(&script);
        // Build a static topology from all script edges for next hops.
        let mut b = GraphBuilder::new(script.n);
        for (edges, _) in &script.steps {
            for &(u, v, c) in edges {
                b.add_edge(u, v, c.max(1e-9));
            }
        }
        let g = b.build();
        let mut router = GreedyRouter::new(&g, &dests, capacity);
        for (edges, injs) in &script.steps {
            for &(s, d) in injs {
                router.inject(s, d);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            router.step(&active);
        }
        prop_assert!(router.conserved());
    }
}

/// Failure injection: the adversary activates a healthy path, then
/// permanently kills it and offers a detour; packets already in flight
/// must neither vanish nor crash the router, and delivery resumes over
/// the detour.
#[test]
fn edge_failure_mid_flight_recovers() {
    // 0 - 1 - 2 - 5(dest)  primary
    // 0 - 3 - 4 - 5        detour
    let cfg = BalancingConfig {
        threshold: 0.5,
        gamma: 0.0,
        capacity: 100,
    };
    let mut router = BalancingRouter::new(6, &[5], cfg);
    let primary = [
        ActiveEdge::new(0, 1, 0.1),
        ActiveEdge::new(1, 2, 0.1),
        ActiveEdge::new(2, 5, 0.1),
    ];
    let detour = [
        ActiveEdge::new(0, 3, 0.3),
        ActiveEdge::new(3, 4, 0.3),
        ActiveEdge::new(4, 5, 0.3),
    ];
    for _ in 0..50 {
        router.inject(0, 5);
        router.step(&primary);
    }
    let delivered_before = router.metrics().delivered;
    assert!(delivered_before > 0);
    // Primary path dies; packets stranded at nodes 1 and 2 can only move
    // if the adversary ever re-activates those edges — it won't. New
    // packets flow via the detour.
    for _ in 0..300 {
        router.inject(0, 5);
        router.step(&detour);
    }
    let m = router.metrics();
    assert!(
        m.delivered > delivered_before + 50,
        "delivery did not resume over the detour: {m:?}"
    );
    assert!(router.conserved());
}

/// A disconnected destination never receives packets but the router
/// stays safe.
#[test]
fn unreachable_destination_is_safe() {
    let cfg = BalancingConfig {
        threshold: 0.0,
        gamma: 0.0,
        capacity: 5,
    };
    let mut router = BalancingRouter::new(4, &[3], cfg);
    // Node 3 is never an endpoint of any active edge.
    let edges = [ActiveEdge::new(0, 1, 0.1), ActiveEdge::new(1, 2, 0.1)];
    for _ in 0..100 {
        router.inject(0, 3);
        router.step(&edges);
    }
    let m = router.metrics();
    assert_eq!(m.delivered, 0);
    assert!(router.conserved());
    assert!(m.dropped > 0, "admission control must kick in eventually");
}
