//! Golden transcript-digest regression suite.
//!
//! Every scenario in the quick E20 sweep (ΘALG protocol and
//! gossip-balancing in both delivery modes, across the loss-rate grid)
//! has its replay digest pinned in `tests/fixtures/e20_digests.txt`,
//! every E21 churn scenario (3 seeds × {no-churn, leave-heavy,
//! drift-heavy}) in `tests/fixtures/e21_digests.txt`, and every E22
//! adversary scenario (2 seeds × {blackhole, inflate, equivocate} ×
//! defense off/on) in `tests/fixtures/e22_digests.txt`. The runtime
//! promises bit-for-bit replay from a seed; this suite extends that
//! promise across *commits*: any change to event ordering, RNG
//! consumption, fault sampling, churn scheduling, or message contents
//! shows up here as a digest mismatch instead of a silent behavioural
//! drift. The CI thread matrix reruns both suites under
//! `ADHOC_SHARD_THREADS` 1 and 4 against the same fixtures, so they also
//! pin sequential/sharded executor equivalence.
//!
//! When a divergence is intentional (e.g. a new field in a message enum),
//! regenerate the fixtures and review them like any other diff:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_digests
//! ```

use std::fmt::Write as _;

const E20_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/e20_digests.txt"
);

const E21_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/e21_digests.txt"
);

const E22_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/e22_digests.txt"
);

fn render(title: &str, digests: &[(String, u64)]) -> String {
    let mut s = format!(
        "# {title} replay digests.\n\
         # Regenerate: UPDATE_GOLDEN=1 cargo test --test golden_digests\n",
    );
    for (name, digest) in digests {
        writeln!(s, "{name} {digest:#018x}").unwrap();
    }
    s
}

fn check(fixture: &str, actual: &str) {
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(fixture, actual).expect("writing fixture");
        return;
    }
    let expected = std::fs::read_to_string(fixture).expect(
        "missing fixture — create it with UPDATE_GOLDEN=1 cargo test --test golden_digests",
    );
    assert_eq!(
        actual, expected,
        "replay digests diverged from the golden fixture; if intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test golden_digests \
         and commit the new fixture"
    );
}

#[test]
fn e20_digests_match_golden_fixture() {
    let actual = render(
        "E20 quick-sweep",
        &adhoc_sim::experiments::e20_runtime_faults::golden_digests(),
    );
    check(E20_FIXTURE, &actual);
}

#[test]
fn e21_churn_digests_match_golden_fixture() {
    let actual = render(
        "E21 churn-scenario",
        &adhoc_sim::experiments::e21_churn::golden_digests(),
    );
    check(E21_FIXTURE, &actual);
}

#[test]
fn e22_adversary_digests_match_golden_fixture() {
    let actual = render(
        "E22 adversary-scenario",
        &adhoc_sim::experiments::e22_adversary::golden_digests(),
    );
    check(E22_FIXTURE, &actual);
}
