//! Golden transcript-digest regression suite.
//!
//! Every scenario in the quick E20 sweep (ΘALG protocol and
//! gossip-balancing in both delivery modes, across the loss-rate grid)
//! has its replay digest pinned in `tests/fixtures/e20_digests.txt`. The
//! runtime promises bit-for-bit replay from a seed; this suite extends
//! that promise across *commits*: any change to event ordering, RNG
//! consumption, fault sampling, or message contents shows up here as a
//! digest mismatch instead of a silent behavioural drift.
//!
//! When a divergence is intentional (e.g. a new field in a message enum),
//! regenerate the fixture and review it like any other diff:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_digests
//! ```

use std::fmt::Write as _;

const FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/e20_digests.txt"
);

fn render(digests: &[(String, u64)]) -> String {
    let mut s = String::from(
        "# E20 quick-sweep replay digests.\n\
         # Regenerate: UPDATE_GOLDEN=1 cargo test --test golden_digests\n",
    );
    for (name, digest) in digests {
        writeln!(s, "{name} {digest:#018x}").unwrap();
    }
    s
}

#[test]
fn e20_digests_match_golden_fixture() {
    let actual = render(&adhoc_sim::experiments::e20_runtime_faults::golden_digests());
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(FIXTURE, &actual).expect("writing fixture");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE).expect(
        "missing fixture — create it with UPDATE_GOLDEN=1 cargo test --test golden_digests",
    );
    assert_eq!(
        actual, expected,
        "replay digests diverged from the golden fixture; if intentional, \
         regenerate with UPDATE_GOLDEN=1 cargo test --test golden_digests \
         and commit the new fixture"
    );
}
