//! Property-based integration tests on the topology-control layer:
//! ΘALG's guarantees must hold for *arbitrary* point sets, exactly as
//! Theorem 2.2 claims.

use adhoc_net::prelude::*;
use proptest::prelude::*;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 2..max)
        .prop_map(|v| v.into_iter().map(|(x, y)| Point::new(x, y)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2.1 on arbitrary point sets (full range ⇒ G* complete).
    #[test]
    fn lemma_2_1_arbitrary_points(points in arb_points(60)) {
        let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, 10.0).build(&points);
        let report = verify_lemma_2_1(&topo);
        prop_assert!(report.holds(), "{report:?}");
    }

    /// The 3-round local protocol and the direct construction agree on
    /// arbitrary inputs and ranges.
    #[test]
    fn protocol_equals_direct(points in arb_points(40), range in 0.2f64..2.0) {
        let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
        let direct = alg.build(&points);
        let proto = adhoc_net::core::protocol::run_local_protocol(
            &points, alg.sectors(), range);
        prop_assert_eq!(&direct.spatial.graph, &proto.graph);
    }

    /// 𝒩 is always a subgraph of the Yao graph 𝒩₁ and stays within range.
    #[test]
    fn n_subset_of_yao(points in arb_points(50), range in 0.3f64..2.0) {
        let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
        let topo = alg.build(&points);
        let yao = yao_graph(&points, alg.sectors(), range);
        for (u, v, w) in topo.spatial.graph.edges() {
            prop_assert!(yao.graph.has_edge(u, v));
            prop_assert!(w <= range + 1e-12);
        }
    }

    /// Energy-stretch of 𝒩 w.r.t. G* is finite whenever G* is connected,
    /// and at least 1.
    #[test]
    fn stretch_bounds(points in arb_points(40), kappa in 2.0f64..4.0) {
        let range = 10.0;
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
        let st = energy_stretch(&topo.spatial, &gstar, kappa);
        prop_assert!(st.connectivity_preserved());
        if st.pairs > 0 {
            prop_assert!(st.max >= 1.0 - 1e-9);
            prop_assert!(st.max.is_finite());
        }
    }

    /// θ-path replacement succeeds for every G* edge and yields a valid
    /// walk of 𝒩 edges.
    #[test]
    fn replacement_total(points in arb_points(40)) {
        let range = 10.0;
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
        for (u, v, _) in gstar.graph.edges().take(100) {
            let path = replace_edge(&topo, u, v);
            prop_assert!(path.is_ok(), "edge ({u},{v}): {path:?}");
            let path = path.unwrap();
            prop_assert_eq!(path.first().map(|e| e.0), Some(u));
            prop_assert_eq!(path.last().map(|e| e.1), Some(v));
        }
    }

    /// Interference sets are symmetric and the interference number of 𝒩
    /// never exceeds that of G* (𝒩 ⊆ G*).
    #[test]
    fn interference_monotone(points in arb_points(40), delta in 0.1f64..2.0) {
        let range = 0.6;
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
        let model = InterferenceModel::new(delta);
        let i_n = interference_number(&topo.spatial, model);
        let i_g = interference_number(&gstar, model);
        prop_assert!(i_n <= i_g, "I(𝒩)={i_n} > I(G*)={i_g}");
    }
}
