//! End-to-end pipeline integration tests: geometry → topology control →
//! interference → routing, across crate boundaries.

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

fn uniform(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    NodeDistribution::unit_square().sample(n, &mut rng).unwrap()
}

#[test]
fn full_stack_delivers_packets() {
    // points → G* → 𝒩 → randomized MAC → (T,γ,I)-balancing → deliveries
    let n = 100;
    let points = uniform(n, 1);
    let range = default_max_range(n);
    let gstar = unit_disk_graph(&points, range);
    assert!(is_connected(&gstar.graph));

    let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
    assert!(verify_lemma_2_1(&topo).holds());

    let mut router = InterferenceRouter::new(
        &topo.spatial,
        &[0],
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 50,
        },
        InterferenceModel::new(0.5),
        ActivationRule::Local,
        2.0,
    );
    let mut rng = StdRng::seed_from_u64(2);
    for s in 0..4000u32 {
        router.inject(1 + (s % 99), 0);
        router.step(&mut rng);
    }
    let m = router.metrics();
    assert!(m.delivered > 0, "no deliveries end to end");
    assert!(router.conserved());
}

#[test]
fn opt_schedule_replay_reaches_theorem_3_1_shape() {
    use adhoc_net::sim::build_schedule_hops;
    let n = 50;
    let points = uniform(n, 3);
    let sg = unit_disk_graph(&points, 0.5);
    let mut rng = StdRng::seed_from_u64(4);
    let flows = Workload::RandomPairs.pairs(n, 5, &mut rng);
    let mut pairs = Vec::new();
    for _ in 0..150 {
        pairs.extend(flows.iter().copied());
    }
    let schedule = build_schedule_hops(&sg, &pairs);
    assert!(schedule.is_conflict_free());

    let mut dests: Vec<u32> = schedule
        .injections
        .iter()
        .flat_map(|v| v.iter().map(|&(_, d)| d))
        .collect();
    dests.sort_unstable();
    dests.dedup();

    let mut cfg = BalancingConfig::from_theorem_3_1(1, 1, schedule.l_bar(), schedule.c_bar(), 0.25);
    cfg.capacity = cfg.capacity.max(160);
    let mut router = BalancingRouter::new(n, &dests, cfg);
    let report = run_balancing_on_schedule(&mut router, &schedule, 30);
    assert!(
        report.throughput_ratio() > 0.7,
        "throughput ratio {}",
        report.throughput_ratio()
    );
    if let Some(c) = report.cost_ratio() {
        assert!(c < 9.0, "cost ratio {c} above the 1+2/ε bound");
    }
}

#[test]
fn theta_paths_compose_into_valid_routes() {
    // Theorem 2.8 machinery: any G*-path can be emulated hop by hop in 𝒩.
    let n = 80;
    let points = uniform(n, 5);
    let range = default_max_range(n);
    let gstar = unit_disk_graph(&points, range);
    let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);

    let sp = dijkstra(&gstar.graph, 0);
    for target in [10u32, 40, 79] {
        if let Some(gpath) = sp.path_to(target) {
            let mut full: Vec<(u32, u32)> = Vec::new();
            for w in gpath.windows(2) {
                full.extend(replace_edge(&topo, w[0], w[1]).unwrap());
            }
            // chains correctly
            assert_eq!(full.first().unwrap().0, 0);
            assert_eq!(full.last().unwrap().1, target);
            for w in full.windows(2) {
                assert_eq!(w[0].1, w[1].0);
            }
            for &(a, b) in &full {
                assert!(topo.spatial.graph.has_edge(a, b));
            }
        }
    }
}

#[test]
fn every_baseline_topology_has_stretch_at_least_one() {
    let n = 70;
    let points = uniform(n, 7);
    let range = 10.0;
    let gstar = unit_disk_graph(&points, range);
    let theta = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
    let sectors = SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
    let structures: Vec<(&str, SpatialGraph)> = vec![
        ("theta", theta.spatial.clone()),
        ("yao", yao_graph(&points, sectors, range)),
        ("gabriel", gabriel_graph(&points, range)),
        ("rng", relative_neighborhood_graph(&points, range)),
        ("mst", euclidean_mst(&points, range)),
    ];
    for (name, sg) in &structures {
        let st = energy_stretch(sg, &gstar, 2.0);
        assert!(st.connectivity_preserved(), "{name} lost connectivity");
        assert!(st.max >= 1.0 - 1e-9, "{name} stretch below 1");
    }
}

#[test]
fn scenario_config_reproduces_whole_pipeline() {
    let cfg = ScenarioConfig::uniform(60, 11);
    let run = |cfg: &ScenarioConfig| {
        let points = cfg.sample_points();
        let topo = ThetaAlg::new(cfg.theta, cfg.effective_range()).build(&points);
        let gstar = unit_disk_graph(&points, cfg.effective_range());
        let st = energy_stretch(&topo.spatial, &gstar, cfg.kappa);
        (topo.spatial.graph.num_edges(), st.max)
    };
    assert_eq!(run(&cfg), run(&cfg));
}
