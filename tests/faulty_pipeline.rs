//! Integration test: the full paper pipeline over unreliable radios —
//! sample points, build `𝒩` with the runtime's hardened ΘALG protocol,
//! then route packets over the reconstructed topology with distributed
//! `(T,γ)`-balancing and gossiped heights, and check delivery plus the
//! conservation ledger.

use adhoc_net::prelude::*;
use rand::rngs::StdRng;

#[test]
fn points_to_topology_to_routing_under_loss() {
    let n = 80;
    let mut rng = StdRng::seed_from_u64(2024);
    let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
    let range = default_max_range(n);
    let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
    let faults = FaultConfig::lossy(0.1);

    // Topology control over 10%-lossy links...
    let run = run_theta_protocol(
        &points,
        alg.sectors(),
        range,
        ThetaTiming::default(),
        faults,
        5,
    );
    // ...reconstructs the exact direct 𝒩 (retransmit budget ≫ loss)...
    let direct = alg.build(&points);
    assert_eq!(direct.spatial.graph, run.graph.graph);
    // ...which satisfies Lemma 2.1 on this connected instance.
    assert!(is_connected(&run.graph.graph));

    // Route a many-to-one workload over the same faulty links.
    let dests = [0u32];
    let steps = 1500;
    let workload = uniform_workload(n, &dests, steps, 1, 77);
    let cfg = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        steps,
    );
    let routed = run_gossip_balancing(&run.graph, &dests, cfg, &workload, faults, 5);
    assert!(routed.conserved(), "ledger must balance: {routed:?}");
    assert!(
        routed.absorbed > 50,
        "expected meaningful delivery, got {}",
        routed.absorbed
    );
    assert!(routed.link_lost > 0, "10% loss should cost some packets");

    // The whole pipeline is replayable: same seeds, same outcome.
    let run2 = run_theta_protocol(
        &points,
        alg.sectors(),
        range,
        ThetaTiming::default(),
        faults,
        5,
    );
    let routed2 = run_gossip_balancing(&run2.graph, &dests, cfg, &workload, faults, 5);
    assert_eq!(run.digest, run2.digest);
    assert_eq!(routed.digest, routed2.digest);
    assert_eq!(routed.absorbed, routed2.absorbed);
}
