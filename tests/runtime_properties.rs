//! Property-based tests on the adhoc-runtime subsystem: determinism
//! (identical seeds ⇒ identical replay transcripts) and exactness (the
//! hardened ΘALG protocol over lossy links reconstructs the direct
//! construction's `𝒩` whenever the loss rate is within the retransmit
//! budget).

use adhoc_net::prelude::*;
use proptest::prelude::*;

fn dedup_points(raw: &[(f64, f64)]) -> Vec<Point> {
    // Coincident points would make nearest-per-sector ties depend on ids
    // alone, which is fine, but keep the geometry in general position by
    // nudging exact duplicates apart deterministically.
    let mut pts: Vec<Point> = Vec::with_capacity(raw.len());
    for (i, &(x, y)) in raw.iter().enumerate() {
        let mut p = Point::new(x, y);
        if pts.iter().any(|q| q.x == p.x && q.y == p.y) {
            p = Point::new(x + (i as f64 + 1.0) * 1e-9, y);
        }
        pts.push(p);
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Same seed ⇒ bit-identical replay: equal transcript digests, equal
    /// stats, equal graphs — for both ported protocols.
    #[test]
    fn same_seed_same_transcript(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..30),
        loss in 0.0f64..0.4,
        seed in 0u64..1_000_000
    ) {
        let points = dedup_points(&raw);
        let range = default_max_range(points.len());
        let sectors = SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
        let faults = FaultConfig::lossy(loss);

        let a = run_theta_protocol(&points, sectors, range, ThetaTiming::default(), faults, seed);
        let b = run_theta_protocol(&points, sectors, range, ThetaTiming::default(), faults, seed);
        prop_assert_eq!(a.digest, b.digest);
        prop_assert_eq!(&a.stats, &b.stats);
        prop_assert_eq!(&a.graph.graph, &b.graph.graph);

        let dests = [0u32];
        let wl = uniform_workload(points.len(), &dests, 50, 1, seed);
        let cfg = GossipConfig::new(
            BalancingConfig { threshold: 0.5, gamma: 0.1, capacity: 20 },
            50,
        );
        let ga = run_gossip_balancing(&a.graph, &dests, cfg, &wl, faults, seed);
        let gb = run_gossip_balancing(&b.graph, &dests, cfg, &wl, faults, seed);
        prop_assert_eq!(ga.digest, gb.digest);
        prop_assert_eq!(ga.absorbed, gb.absorbed);
        prop_assert!(ga.conserved());
    }

    /// The sharded executor is a drop-in replacement: for random
    /// geometry, fault mix, and thread counts, sequential and sharded
    /// runs produce identical digests, stats, and protocol outcomes for
    /// both ΘALG and the gossip balancer.
    #[test]
    fn sharded_execution_is_digest_identical(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..30),
        drop_prob in 0.0f64..0.3,
        duplicate_prob in 0.0f64..0.2,
        threads in 2usize..9,
        seed in 0u64..1_000_000
    ) {
        let points = dedup_points(&raw);
        let range = default_max_range(points.len());
        let sectors = SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
        let faults = FaultConfig {
            drop_prob,
            duplicate_prob,
            delay: DelayDist::Uniform { min: 1, max: 6 },
        };

        let seq = run_theta_protocol(&points, sectors, range, ThetaTiming::default(), faults, seed);
        let par = run_theta_protocol_sharded(
            &points, sectors, range, ThetaTiming::default(), faults, seed, threads,
        );
        prop_assert_eq!(seq.digest, par.digest, "theta digest diverged at {} threads", threads);
        prop_assert_eq!(&seq.stats, &par.stats);
        prop_assert_eq!(&seq.graph.graph, &par.graph.graph);
        prop_assert_eq!(seq.finished_at, par.finished_at);
        prop_assert_eq!(seq.edge_awareness, par.edge_awareness);

        let dests = [0u32];
        let wl = uniform_workload(points.len(), &dests, 40, 1, seed ^ 1);
        let base = GossipConfig::new(
            BalancingConfig { threshold: 0.5, gamma: 0.1, capacity: 20 },
            60,
        );
        for cfg in [base, base.with_reliability(ReliableConfig::default())] {
            let gs = run_gossip_balancing(&seq.graph, &dests, cfg, &wl, faults, seed);
            let gp = run_gossip_balancing_sharded(&seq.graph, &dests, cfg, &wl, faults, seed, threads);
            prop_assert_eq!(
                gs.digest, gp.digest,
                "gossip digest diverged (reliable={}, threads={})",
                cfg.reliability.is_some(), threads
            );
            prop_assert_eq!(&gs.stats, &gp.stats);
            prop_assert_eq!(gs.absorbed, gp.absorbed);
            prop_assert_eq!(gs.buffered, gp.buffered);
            prop_assert_eq!(gs.in_flight, gp.in_flight);
            prop_assert_eq!(gs.gave_up, gp.gave_up);
            prop_assert!(gp.conserved());
        }
    }

    /// Churn is part of the determinism contract: for a random churn
    /// plan (joins, leaves, crashes, drift), random geometry, and random
    /// fault mix, the sequential executor and the sharded executor at 2
    /// and 4 threads produce bit-identical digests, stats, protocol
    /// outcomes, and conservation ledgers — for both ported protocols.
    #[test]
    fn churn_execution_is_digest_identical(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..30),
        drop_prob in 0.0f64..0.3,
        duplicate_prob in 0.0f64..0.2,
        events in 1usize..8,
        seed in 0u64..1_000_000
    ) {
        let points = dedup_points(&raw);
        let n = points.len();
        let range = default_max_range(n);
        let sectors = SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
        let faults = FaultConfig {
            drop_prob,
            duplicate_prob,
            delay: DelayDist::Uniform { min: 1, max: 6 },
        };
        let spares = n / 5;
        let plan = ChurnPlan::random(n - spares, spares, 1.0, 600, events, seed ^ 0xabcd);

        let seq = run_theta_churn(
            &points, sectors, range, ThetaTiming::default(), faults, seed, &plan, 1,
        );
        for threads in [2usize, 4] {
            let par = run_theta_churn(
                &points, sectors, range, ThetaTiming::default(), faults, seed, &plan, threads,
            );
            prop_assert_eq!(seq.digest, par.digest, "theta churn digest diverged at {} threads", threads);
            prop_assert_eq!(&seq.stats, &par.stats);
            prop_assert_eq!(&seq.graph.graph, &par.graph.graph);
            prop_assert_eq!(&seq.live, &par.live);
            prop_assert_eq!(seq.fidelity, par.fidelity);
            prop_assert_eq!(seq.repair_latency, par.repair_latency);
            prop_assert_eq!(seq.finished_at, par.finished_at);
        }

        let graph = unit_disk_graph(&points, range);
        let dests = [0u32];
        let wl = uniform_workload(n, &dests, 40, 1, seed ^ 1);
        let base = GossipConfig::new(
            BalancingConfig { threshold: 0.5, gamma: 0.1, capacity: 20 },
            60,
        );
        for cfg in [base, base.with_reliability(ReliableConfig::default())] {
            let gs = run_gossip_balancing_churn(&graph, &dests, cfg, &wl, faults, seed, &plan, 1);
            prop_assert!(
                gs.conserved(),
                "churn ledger out of balance (reliable={}): {:?}",
                cfg.reliability.is_some(),
                gs
            );
            for threads in [2usize, 4] {
                let gp = run_gossip_balancing_churn(
                    &graph, &dests, cfg, &wl, faults, seed, &plan, threads,
                );
                prop_assert_eq!(
                    &gs, &gp,
                    "gossip churn run diverged (reliable={}, threads={})",
                    cfg.reliability.is_some(), threads
                );
            }
        }
    }

    /// Lying nodes are part of the determinism contract too: for a random
    /// adversary plan (attack shape, compromised count, defense on/off),
    /// random geometry, and random fault mix, the sequential executor and
    /// the sharded executor at 2 and 4 threads produce bit-identical run
    /// records in both delivery modes — and the extended conservation
    /// ledger balances exactly even while packets are being stolen and
    /// blackholed.
    #[test]
    fn adversarial_execution_is_digest_identical_and_conserved(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..30),
        drop_prob in 0.0f64..0.3,
        duplicate_prob in 0.0f64..0.2,
        count in 1usize..5,
        attack_idx in 0usize..6,
        defended in any::<bool>(),
        seed in 0u64..1_000_000
    ) {
        let points = dedup_points(&raw);
        let n = points.len();
        let graph = unit_disk_graph(&points, default_max_range(n));
        let faults = FaultConfig {
            drop_prob,
            duplicate_prob,
            delay: DelayDist::Uniform { min: 1, max: 6 },
        };
        let attack = match attack_idx {
            0 => Attack::Deflate { blackhole: false },
            1 => Attack::Deflate { blackhole: true },
            2 => Attack::Inflate,
            3 => Attack::Replay,
            4 => Attack::SelectiveDrop {
                sources: (0..n as u32).step_by(2).collect(),
            },
            _ => Attack::Equivocate,
        };
        let count = count.min(n - 1);
        let adversary = AdversaryPlan::random(n, count, attack, 30, &[0], seed ^ 0x5a5a);

        let dests = [0u32];
        let wl = uniform_workload(n, &dests, 40, 1, seed ^ 1);
        let mut base = GossipConfig::new(
            BalancingConfig { threshold: 0.5, gamma: 0.1, capacity: 20 },
            60,
        );
        if defended {
            base = base.with_defense(DefenseConfig::default());
        }
        for cfg in [base, base.with_reliability(ReliableConfig::default())] {
            let gs = run_gossip_balancing_adversarial(
                &graph, &dests, cfg, &wl, faults, seed, &ChurnPlan::default(), &adversary, 1,
            );
            prop_assert!(
                gs.conserved(),
                "adversarial ledger out of balance (reliable={}, defended={}): {:?}",
                cfg.reliability.is_some(),
                defended,
                gs
            );
            for threads in [2usize, 4] {
                let gp = run_gossip_balancing_adversarial(
                    &graph, &dests, cfg, &wl, faults, seed, &ChurnPlan::default(), &adversary,
                    threads,
                );
                prop_assert_eq!(
                    &gs, &gp,
                    "adversarial run diverged (reliable={}, defended={}, threads={})",
                    cfg.reliability.is_some(), defended, threads
                );
            }
        }
    }

    /// Whenever loss stays within the retransmit budget (16 tries per
    /// message at the default timing), the protocol's `𝒩` equals the
    /// direct `ThetaAlg::build` graph *exactly* — the paper's 3-round
    /// locality claim survives unreliable radios.
    #[test]
    fn lossy_theta_equals_direct_construction(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 8..28),
        loss in 0.0f64..0.25,
        seed in 0u64..1_000_000
    ) {
        let points = dedup_points(&raw);
        let range = default_max_range(points.len());
        let alg = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range);
        let direct = alg.build(&points);
        let run = run_theta_protocol(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            FaultConfig::lossy(loss),
            seed,
        );
        prop_assert_eq!(
            &direct.spatial.graph,
            &run.graph.graph,
            "loss {} within budget must reconstruct exactly",
            loss
        );
        prop_assert_eq!(edge_fidelity(&direct.spatial, &run.graph), 1.0);
    }

    /// Chaos mode: reordering-heavy delays (max delay > step length) plus
    /// drops plus duplication. In both delivery modes the extended
    /// conservation ledger must balance exactly, and the same seed must
    /// replay to the same transcript digest.
    #[test]
    fn ledger_balances_and_replays_under_chaos_in_both_modes(
        raw in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 10..24),
        drop_prob in 0.0f64..0.45,
        duplicate_prob in 0.0f64..0.3,
        seed in 0u64..1_000_000
    ) {
        let points = dedup_points(&raw);
        let graph = unit_disk_graph(&points, default_max_range(points.len()));
        let faults = FaultConfig {
            drop_prob,
            duplicate_prob,
            // Step length defaults to 8 ticks, so delays up to 12 make
            // consecutive sends overtake each other across step
            // boundaries.
            delay: DelayDist::Uniform { min: 1, max: 12 },
        };
        let dests = [0u32];
        let inject_steps = 40;
        let wl = uniform_workload(points.len(), &dests, inject_steps, 1, seed ^ 1);
        let base = GossipConfig::new(
            BalancingConfig { threshold: 0.5, gamma: 0.1, capacity: 20 },
            inject_steps + 40,
        );
        for cfg in [base, base.with_reliability(ReliableConfig::default())] {
            let a = run_gossip_balancing(&graph, &dests, cfg, &wl, faults, seed);
            let b = run_gossip_balancing(&graph, &dests, cfg, &wl, faults, seed);
            prop_assert!(
                a.conserved(),
                "ledger out of balance (reliable={}): {:?}",
                cfg.reliability.is_some(),
                a
            );
            prop_assert_eq!(a.digest, b.digest);
            prop_assert_eq!(a.absorbed, b.absorbed);
            prop_assert_eq!(a.stats.retransmits, b.stats.retransmits);
            prop_assert_eq!(a.stats.acks, b.stats.acks);
        }
    }
}
