//! Regression: broadcast fan-out must not deep-clone the payload per
//! neighbor.
//!
//! `Runtime::flush` used to clone the broadcast message once for every
//! radio neighbor before the fault layer even decided the copy's fate —
//! at n ≥ 10⁴ those clones dominated the E20 profile. The fix wraps the
//! payload in one `Arc` (`Payload::Shared`) shared by all per-neighbor
//! copies: dropped copies never clone at all, and only a delivered copy
//! that still shares the allocation pays for a clone at delivery time.
//! This test pins the property with a counting global allocator: a hub
//! broadcasting `B` heap-carrying messages to `N` neighbors over fully
//! lossy links costs O(B) allocations post-fix, versus ≥ B·N clones
//! pre-fix.

use adhoc_runtime::{Actor, Ctx, FaultConfig, Message, Runtime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// A heap-carrying payload: cloning it allocates, so a per-neighbor
/// deep clone in the fan-out path shows up directly in the counter.
#[derive(Debug, Clone)]
struct Blob(#[allow(dead_code)] Vec<u64>);

impl Message for Blob {
    fn kind(&self) -> &'static str {
        "blob"
    }
}

/// Node 0 broadcasts one `Blob` per tick; everyone else is silent.
#[derive(Debug, Clone)]
struct Hub {
    id: u32,
    rounds_left: u32,
}

impl Actor for Hub {
    type Msg = Blob;

    fn on_start(&mut self, ctx: &mut Ctx<Blob>) {
        if self.id == 0 {
            ctx.set_timer(1, 0);
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<Blob>, _from: u32, _msg: Blob) {}

    fn on_timer(&mut self, ctx: &mut Ctx<Blob>, _timer: u32) {
        ctx.broadcast(Blob(vec![self.id as u64; 32]));
        self.rounds_left -= 1;
        if self.rounds_left > 0 {
            ctx.set_timer(1, 0);
        }
    }
}

#[test]
fn broadcast_fanout_does_not_clone_per_neighbor() {
    const NEIGHBORS: u32 = 50;
    const ROUNDS: u32 = 500;

    let nodes: Vec<Hub> = (0..=NEIGHBORS)
        .map(|id| Hub {
            id,
            rounds_left: ROUNDS,
        })
        .collect();
    // A tight cluster: every node is within radio range of every other,
    // so each broadcast fans out to all `NEIGHBORS` links.
    let positions: Vec<adhoc_geom::Point> = (0..=NEIGHBORS)
        .map(|i| {
            let a = f64::from(i) / f64::from(NEIGHBORS + 1) * std::f64::consts::TAU;
            adhoc_geom::Point::new(0.01 * a.cos(), 0.01 * a.sin())
        })
        .collect();
    // Fully lossy links: every per-neighbor copy is dropped at the fault
    // layer, which is exactly the case where the old code had already
    // paid for the clone and the new code pays nothing.
    let mut rt = Runtime::new(nodes, &positions, 1.0, FaultConfig::lossy(1.0), 11);
    rt.start();

    let before = ALLOCS.load(Ordering::Relaxed);
    rt.run();
    let during = ALLOCS.load(Ordering::Relaxed) - before;

    let fanout = u64::from(NEIGHBORS) * u64::from(ROUNDS);
    assert_eq!(rt.stats().dropped, fanout, "expected full lossy fan-out");
    // Each round allocates the actor's own `Blob` plus one shared `Arc`;
    // everything else is amortized. Pre-fix the fan-out added ≥ one
    // clone (one `Vec` allocation) per neighbor per round — 25 000 here.
    assert!(
        during < 5 * u64::from(ROUNDS),
        "{during} allocations for {ROUNDS} broadcasts × {NEIGHBORS} neighbors — \
         the fan-out path is deep-cloning again (pre-fix cost ≥ {fanout})"
    );
    // Sanity: the transcript still witnessed every drop.
    assert_ne!(rt.transcript().digest(), 0);
}
