//! Property-based tests on the router variants: the traced router must be
//! observationally equivalent to the fungible one, the stale router at
//! period 1 must match exactly, and the anycast router must conserve
//! packets under arbitrary adversarial scripts.

use adhoc_net::prelude::*;
use proptest::prelude::*;

/// One adversarial step: the active edge set and the injection sources.
type ScriptStep = (Vec<(u32, u32, f64)>, Vec<u32>);

/// An adversarial script over a small node set.
#[derive(Debug, Clone)]
struct Script {
    n: usize,
    steps: Vec<ScriptStep>,
}

fn arb_script() -> impl Strategy<Value = Script> {
    (4usize..10).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32, 0.0f64..2.0)
            .prop_filter("no self loops", |(u, v, _)| u != v);
        let step = (
            proptest::collection::vec(edge, 0..5),
            proptest::collection::vec(1..n as u32, 0..3),
        );
        proptest::collection::vec(step, 1..30).prop_map(move |steps| Script { n, steps })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// TracedRouter makes the exact same send decisions as BalancingRouter
    /// under any adversarial script (single destination 0).
    #[test]
    fn traced_equals_fungible(
        script in arb_script(),
        threshold in 0.0f64..2.0,
        gamma in 0.0f64..1.0,
        capacity in 1u32..10
    ) {
        let cfg = BalancingConfig { threshold, gamma, capacity };
        let mut traced = TracedRouter::new(script.n, &[0], cfg);
        let mut fungible = BalancingRouter::new(script.n, &[0], cfg);
        for (edges, injs) in &script.steps {
            for &s in injs {
                traced.inject(s, 0);
                fungible.inject(s, 0);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            let st = traced.step(&active);
            let sf = fungible.step(&active);
            prop_assert_eq!(st, sf);
        }
        prop_assert_eq!(
            traced.latency_stats().delivered,
            fungible.metrics().delivered
        );
        prop_assert!(traced.conserved());
    }

    /// StaleBalancingRouter with refresh period 1 is the balancing
    /// algorithm, decision for decision.
    #[test]
    fn stale_period_one_equals_fresh(
        script in arb_script(),
        threshold in 0.0f64..2.0,
        capacity in 1u32..10
    ) {
        let cfg = BalancingConfig { threshold, gamma: 0.1, capacity };
        let mut stale = StaleBalancingRouter::new(script.n, &[0], cfg, 1);
        let mut fresh = BalancingRouter::new(script.n, &[0], cfg);
        for (edges, injs) in &script.steps {
            for &s in injs {
                stale.inject(s, 0);
                fresh.inject(s, 0);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            let ss = stale.step(&active);
            let sf = fresh.step(&active);
            prop_assert_eq!(ss, sf);
        }
        prop_assert!(stale.conserved());
    }

    /// Stale routers conserve packets at every refresh period.
    #[test]
    fn stale_conserves_at_any_period(
        script in arb_script(),
        period in 1u64..20
    ) {
        let cfg = BalancingConfig { threshold: 0.5, gamma: 0.0, capacity: 8 };
        let mut router = StaleBalancingRouter::new(script.n, &[0], cfg, period);
        for (edges, injs) in &script.steps {
            for &s in injs {
                router.inject(s, 0);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            router.step(&active);
        }
        prop_assert!(router.conserved());
        // Stale decisions must never fabricate sends from empty buffers:
        prop_assert!(router.metrics().sends + router.inner().bank().total_buffered()
            >= router.inner().bank().total_absorbed());
    }

    /// Anycast conservation + absorption under arbitrary scripts, with a
    /// random group.
    #[test]
    fn anycast_conserves(
        script in arb_script(),
        group_size in 1usize..3
    ) {
        let members: Vec<u32> = (0..group_size as u32).collect();
        let mut router =
            AnycastRouter::new(script.n, std::slice::from_ref(&members), 0.5, 0.1, 8);
        for (edges, injs) in &script.steps {
            for &s in injs {
                router.inject(s, 0);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            router.step(&active);
        }
        prop_assert!(router.conserved());
        // Member buffers are always empty (absorb immediately).
        for &m in &members {
            prop_assert_eq!(router.height(m, 0), 0);
        }
    }

    /// A single anycast group behaves exactly like unicast when the group
    /// has one member.
    #[test]
    fn singleton_anycast_equals_unicast(script in arb_script()) {
        let cfg = BalancingConfig { threshold: 0.5, gamma: 0.1, capacity: 8 };
        let mut any = AnycastRouter::new(script.n, &[vec![0]], cfg.threshold, cfg.gamma, cfg.capacity);
        let mut uni = BalancingRouter::new(script.n, &[0], cfg);
        for (edges, injs) in &script.steps {
            for &s in injs {
                any.inject(s, 0);
                uni.inject(s, 0);
            }
            let active: Vec<ActiveEdge> =
                edges.iter().map(|&(u, v, c)| ActiveEdge::new(u, v, c)).collect();
            any.step(&active);
            uni.step(&active);
        }
        prop_assert_eq!(any.metrics().delivered, uni.metrics().delivered);
        prop_assert_eq!(any.metrics().sends, uni.metrics().sends);
    }
}
