//! Regression: the runtime's replay digest must not allocate per event.
//!
//! The digest is always maintained, even with tracing off — so building a
//! `String` per deliver/drop/timer record put one heap allocation on the
//! hottest path in the runtime. The fix streams each record into the
//! FNV-1a state through a `fmt::Write` sink (and reuses one effect buffer
//! across callbacks), so a steady-state run performs no per-event
//! allocations at all. This test pins that property with a counting
//! global allocator: pre-fix, a run of `E` events costs ≥ `E`
//! allocations; post-fix it costs O(log E) (event-queue growth only).

use adhoc_runtime::{Actor, Ctx, FaultConfig, Message, Runtime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates directly to the system allocator; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Two nodes ping-pong a `Copy` token a fixed number of hops: every hop
/// is one deliver event, the message itself never touches the heap, and
/// the queue depth stays at 1 — any allocation growth proportional to the
/// hop count can only come from the runtime's own event handling.
#[derive(Debug, Clone)]
struct PingPong {
    id: u32,
    hops_left: u32,
}

#[derive(Debug, Clone, Copy)]
struct Token;

impl Message for Token {
    fn kind(&self) -> &'static str {
        "token"
    }
}

impl Actor for PingPong {
    type Msg = Token;

    fn on_start(&mut self, ctx: &mut Ctx<Token>) {
        if self.id == 0 {
            ctx.send(1, Token);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<Token>, from: u32, _msg: Token) {
        if self.hops_left > 0 {
            self.hops_left -= 1;
            ctx.send(from, Token);
        }
    }
}

#[test]
fn digesting_does_not_allocate_per_event() {
    const HOPS: u32 = 20_000;
    let nodes = vec![
        PingPong {
            id: 0,
            hops_left: HOPS,
        },
        PingPong {
            id: 1,
            hops_left: HOPS,
        },
    ];
    let positions = [
        adhoc_geom::Point::new(0.0, 0.0),
        adhoc_geom::Point::new(1.0, 0.0),
    ];
    let mut rt = Runtime::new(nodes, &positions, 1.5, FaultConfig::ideal(), 1);
    rt.start();

    let before = ALLOCS.load(Ordering::Relaxed);
    rt.run();
    let during = ALLOCS.load(Ordering::Relaxed) - before;

    let events = rt.stats().delivered + rt.stats().timers_fired + rt.stats().dropped;
    assert!(events > u64::from(HOPS), "run too short: {events} events");
    // The digest is maintained throughout (always on), yet the whole run
    // stays within a small constant allocation budget. Pre-fix this was
    // one `String` per event (> 20k allocations here).
    assert!(
        during < 1_000,
        "{during} allocations over {events} events — the digest/event hot \
         path is allocating again"
    );
    // Sanity: the digest really was maintained.
    assert_ne!(rt.transcript().digest(), 0);
}
