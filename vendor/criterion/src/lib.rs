//! Offline vendored shim of `criterion`. Implements the harness API the
//! workspace's benches use (`criterion_group!`/`criterion_main!`,
//! benchmark groups with `measurement_time`/`warm_up_time`/
//! `sample_size`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`) with straightforward wall-clock measurement: warm up,
//! then run batches until the measurement budget is spent, and print
//! mean / min / max per-iteration time. No plots, no statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export for benches importing it from criterion.
pub use std::hint::black_box;

/// The benchmark harness handle.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Upstream disables gnuplot/plotters output; a no-op here.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Default measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Default warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Default sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.into_benchmark_id().render();
        run_benchmark(
            &full,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget for benchmarks in this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Number of timed samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_benchmark(
            &full,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }

    /// Benchmark a closure given a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().render());
        run_benchmark(
            &full,
            self.warm_up_time,
            self.measurement_time,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finish the group (prints nothing extra in the shim).
    pub fn finish(self) {}
}

/// A function+parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Identify a benchmark by function name and parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Identify a benchmark by parameter only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

/// Things accepted as benchmark identifiers.
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Passed to benchmark closures; times the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Warm-up & calibration: run single iterations until the warm-up
    // budget is spent to estimate per-iteration cost.
    let warm_start = Instant::now();
    let mut calib_iters: u64 = 0;
    let mut calib_time = Duration::ZERO;
    while warm_start.elapsed() < warm_up || calib_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        calib_time += b.elapsed;
        calib_iters += 1;
        if calib_iters >= 1000 {
            break;
        }
    }
    let per_iter = calib_time
        .checked_div(calib_iters as u32)
        .unwrap_or_default();

    // Choose iterations per sample so that all samples fit the budget.
    let samples = sample_size.max(2) as u64;
    let budget_per_sample = measurement.checked_div(samples as u32).unwrap_or_default();
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut times: Vec<f64> = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let mean = times.iter().sum::<f64>() / times.len() as f64;
    let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = times.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples x {} iters)",
        format_time(min),
        format_time(mean),
        format_time(max),
        samples,
        iters
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Group benchmark functions into a single runner, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function(BenchmarkId::new("noop", 1), |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        g.finish();
        assert!(ran);
    }
}
