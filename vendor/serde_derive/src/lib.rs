//! Offline vendored shim of `serde_derive`.
//!
//! Because the build container has no access to crates.io, neither
//! `syn` nor `quote` is available; this macro parses the derive input
//! token stream by hand. It supports exactly the type shapes used in
//! the adhoc-net workspace:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit, named-field, or tuple variants.
//!
//! The generated impls target the `serde` shim's concrete
//! `Value`-based `Serialize`/`Deserialize` traits and use serde's
//! externally-tagged enum representation (`"Variant"` for unit
//! variants, `{"Variant": {...}}`/`{"Variant": [...]}` otherwise), so
//! JSON artifacts stay compatible with upstream serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum VariantShape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` (shim).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_serialize(name, fields),
        Input::Enum { name, variants } => gen_enum_serialize(name, variants),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derive `serde::Deserialize` (shim).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let code = match &parsed {
        Input::Struct { name, fields } => gen_struct_deserialize(name, fields),
        Input::Enum { name, variants } => gen_enum_deserialize(name, variants),
    };
    code.parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---- parsing -----------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported (type `{name}`)");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1, // e.g. `where` clauses are not expected, but skip defensively
            None => panic!(
                "serde_derive shim: `{name}` has no braced body (tuple/unit structs unsupported)"
            ),
        }
    };
    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => break,
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        fields.push(field.to_string());
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde_derive shim: expected `:` after field `{}`",
            fields.last().unwrap()
        );
        // Skip the type: consume until a top-level comma. Groups are
        // single token trees, so nested commas are already hidden.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(arity)
            }
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to the comma separating variants (covers `= discr` too).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
            count += 1;
            trailing_comma = true;
        } else {
            trailing_comma = false;
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

// ---- codegen -----------------------------------------------------------

fn gen_struct_serialize(name: &str, fields: &[String]) -> String {
    let pushes: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{pushes}])\n\
             }}\n\
         }}"
    )
}

fn gen_struct_deserialize(name: &str, fields: &[String]) -> String {
    let builds: String = fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::deserialize_value(v.get(\"{f}\")\
                     .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if v.as_object().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::type_mismatch(\"object\", v));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {builds} }})\n\
             }}\n\
         }}"
    )
}

fn gen_enum_serialize(name: &str, variants: &[Variant]) -> String {
    let arms: String = variants
        .iter()
        .map(|v| {
            let vn = &v.name;
            match &v.shape {
                VariantShape::Unit => format!(
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                ),
                VariantShape::Named(fields) => {
                    let binds = fields.join(", ");
                    let pairs: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize_value({f})),"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), ::serde::Value::Object(::std::vec![{pairs}]))]),"
                    )
                }
                VariantShape::Tuple(1) => format!(
                    "{name}::{vn}(x0) => ::serde::Value::Object(::std::vec![\
                         (::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize_value(x0))]),"
                ),
                VariantShape::Tuple(k) => {
                    let binds: Vec<String> = (0..*k).map(|j| format!("x{j}")).collect();
                    let items: String = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::serialize_value({b}),"))
                        .collect();
                    format!(
                        "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{vn}\"), ::serde::Value::Array(::std::vec![{items}]))]),",
                        binds.join(", ")
                    )
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| {
            let vn = &v.name;
            format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
        })
        .collect();
    let tagged_arms: String = variants
        .iter()
        .filter_map(|v| {
            let vn = &v.name;
            match &v.shape {
                VariantShape::Unit => None,
                VariantShape::Named(fields) => {
                    let builds: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize_value(inner.get(\"{f}\")\
                                     .ok_or_else(|| ::serde::Error::missing_field(\"{f}\"))?)?,"
                            )
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => {{\n\
                             if inner.as_object().is_none() {{\n\
                                 return ::std::result::Result::Err(::serde::Error::type_mismatch(\"object\", inner));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {builds} }})\n\
                         }}"
                    ))
                }
                VariantShape::Tuple(1) => Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::deserialize_value(inner)?)),"
                )),
                VariantShape::Tuple(k) => {
                    let builds: String = (0..*k)
                        .map(|j| {
                            format!("::serde::Deserialize::deserialize_value(&items[{j}])?,")
                        })
                        .collect();
                    Some(format!(
                        "\"{vn}\" => match inner {{\n\
                             ::serde::Value::Array(items) if items.len() == {k} =>\n\
                                 ::std::result::Result::Ok({name}::{vn}({builds})),\n\
                             other => ::std::result::Result::Err(::serde::Error::type_mismatch(\"{k}-element array\", other)),\n\
                         }},"
                    ))
                }
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {tagged_arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error::type_mismatch(\"{name} variant\", other)),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
