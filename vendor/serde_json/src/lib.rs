//! Offline vendored shim of `serde_json`: renders and parses standard
//! JSON against the `serde` shim's [`Value`] data model. Numbers print
//! with Rust's shortest-round-trip float formatting, so
//! serialize→parse round trips are exact for every finite `f64`.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize to pretty JSON (2-space indent, like upstream).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse a value of type `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::deserialize_value(&value)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---- emitter -----------------------------------------------------------

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => write_f64(*x, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = x.to_string();
        out.push_str(&s);
        // Keep a float marker so the value parses back as F64.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; upstream serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(pairs));
                    }
                    _ => return Err(Error(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(Error(format!("unexpected byte {c:#x} at {pos}"))),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error(format!("bad escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so valid).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).unwrap());
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if !is_float {
        if text.starts_with('-') {
            if let Ok(x) = text.parse::<i64>() {
                return Ok(Value::I64(x));
            }
        } else if let Ok(x) = text.parse::<u64>() {
            return Ok(Value::U64(x));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::F64(0.1)),
            (
                "c".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("s".into(), Value::Str("x \"quoted\"\n".into())),
            ("neg".into(), Value::I64(-3)),
        ]);
        let text = {
            let mut out = String::new();
            super::write_value(&v, Some(2), 0, &mut out);
            out
        };
        assert_eq!(parse_value_complete(&text).unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1.0 / 3.0, std::f64::consts::FRAC_PI_3, 1e-300, -2.5] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn integral_floats_keep_marker() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        let v = parse_value_complete("2.0").unwrap();
        assert_eq!(v, Value::F64(2.0));
    }

    #[test]
    fn big_u64_exact() {
        let x = u64::MAX - 3;
        let text = to_string(&x).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true false").is_err());
    }
}
