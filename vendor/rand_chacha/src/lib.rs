//! Offline vendored shim of `rand_chacha`, implementing a real ChaCha
//! keystream generator (D. J. Bernstein's ChaCha with the RFC 8439
//! state layout) behind the `rand` shim's `RngCore`/`SeedableRng`
//! traits.
//!
//! The workspace only relies on ChaCha streams being deterministic,
//! seed-sensitive, and statistically uniform — not on matching the
//! upstream crate word-for-word (upstream additionally implements the
//! `word_pos` API and uses a slightly different counter layout).

use rand::{RngCore, SeedableRng};

/// One ChaCha block: 16 words of output from 16 words of state.
#[inline]
fn chacha_block(key: &[u32; 8], counter: u64, stream: u64, rounds: u32, out: &mut [u32; 16]) {
    const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut x = [0u32; 16];
    x[..4].copy_from_slice(&SIGMA);
    x[4..12].copy_from_slice(key);
    x[12] = counter as u32;
    x[13] = (counter >> 32) as u32;
    x[14] = stream as u32;
    x[15] = (stream >> 32) as u32;
    let initial = x;

    #[inline]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    for _ in 0..rounds / 2 {
        // column round
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // diagonal round
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for i in 0..16 {
        out[i] = x[i].wrapping_add(initial[i]);
    }
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            stream: u64,
            buf: [u32; 16],
            /// Next unread word in `buf`; 16 means "refill".
            idx: usize,
        }

        impl $name {
            /// Select one of 2⁶⁴ independent streams for the same seed.
            pub fn set_stream(&mut self, stream: u64) {
                self.stream = stream;
                self.counter = 0;
                self.idx = 16;
            }

            /// The current stream id.
            pub fn get_stream(&self) -> u64 {
                self.stream
            }

            #[inline]
            fn refill(&mut self) {
                chacha_block(&self.key, self.counter, self.stream, $rounds, &mut self.buf);
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, w) in key.iter_mut().enumerate() {
                    let mut bytes = [0u8; 4];
                    bytes.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
                    *w = u32::from_le_bytes(bytes);
                }
                $name {
                    key,
                    counter: 0,
                    stream: 0,
                    buf: [0; 16],
                    idx: 16,
                }
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }
        }
    };
}

chacha_rng!(
    ChaCha8Rng,
    8,
    "ChaCha with 8 rounds (the workspace's default seeded RNG)."
);
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn rfc8439_chacha20_block_one() {
        // RFC 8439 §2.3.2 test vector: key 00 01 .. 1f, counter 1,
        // nonce interpreted as our 64-bit stream word (we zero it and
        // only check the keyed, zero-nonce variant is stable).
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            let b = [
                4 * i as u8,
                4 * i as u8 + 1,
                4 * i as u8 + 2,
                4 * i as u8 + 3,
            ];
            *w = u32::from_le_bytes(b);
        }
        let mut out = [0u32; 16];
        chacha_block(&key, 1, 0, 20, &mut out);
        let mut again = [0u32; 16];
        chacha_block(&key, 1, 0, 20, &mut again);
        assert_eq!(out, again);
        // Changing the counter must change the whole block.
        let mut next = [0u32; 16];
        chacha_block(&key, 2, 0, 20, &mut next);
        assert_ne!(out, next);
    }

    #[test]
    fn streams_are_independent() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        b.set_stream(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_interval_sampling() {
        let mut r = ChaCha8Rng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
