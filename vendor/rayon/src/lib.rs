//! Offline vendored shim of the `rayon` parallel-iterator API used in
//! this workspace. The container building this repo has no network
//! access, so this crate stands in for rayon with **sequential**
//! execution behind the identical call-site syntax
//! (`par_iter().map(..).reduce(id, op)` etc.).
//!
//! Every adapter is a thin wrapper over the corresponding
//! `std::iter` adapter; results are bit-identical to rayon's because
//! all combining operations used in the workspace are associative.

/// A "parallel" iterator — sequential in this shim.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// Map each element.
    pub fn map<F, T>(self, f: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> T,
    {
        ParIter(self.0.map(f))
    }

    /// Keep elements satisfying `f`.
    pub fn filter<F>(self, f: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter(self.0.filter(f))
    }

    /// Map then flatten.
    pub fn flat_map<F, U>(self, f: F) -> ParIter<std::iter::FlatMap<I, U, F>>
    where
        F: FnMut(I::Item) -> U,
        U: IntoIterator,
    {
        ParIter(self.0.flat_map(f))
    }

    /// Rayon-style reduce: fold from `identity()` with an associative
    /// operator. (Note the signature differs from `Iterator::reduce`.)
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// Run `f` on every element.
    pub fn for_each<F>(self, f: F)
    where
        F: FnMut(I::Item),
    {
        self.0.for_each(f)
    }

    /// Collect into any `FromIterator` collection.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }

    /// Sum of all elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.0.sum()
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.0.count()
    }

    /// Maximum element.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    /// Minimum element.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    /// Rayon tuning hint; a no-op here.
    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }
}

/// Conversion of owned collections into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// rayon's `into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<C: IntoIterator> IntoParallelIterator for C {
    type Item = C::Item;
    type Iter = C::IntoIter;

    fn into_par_iter(self) -> ParIter<C::IntoIter> {
        ParIter(self.into_iter())
    }
}

/// Conversion of `&collection` into a parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item;
    /// Underlying sequential iterator.
    type Iter: Iterator<Item = Self::Item>;

    /// rayon's `par_iter`.
    fn par_iter(&'data self) -> ParIter<Self::Iter>;
}

impl<'data, C: ?Sized> IntoParallelRefIterator<'data> for C
where
    &'data C: IntoIterator,
    C: 'data,
{
    type Item = <&'data C as IntoIterator>::Item;
    type Iter = <&'data C as IntoIterator>::IntoIter;

    fn par_iter(&'data self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

/// The usual glob import.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParIter};
}

/// rayon's fork-join primitive; runs sequentially here.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// A scope for spawning worker tasks, mirroring `rayon::scope`. Unlike
/// the iterator adapters above, this primitive is backed by **real OS
/// threads** (`std::thread::scope`): the sharded runtime executor needs
/// genuinely concurrent workers that block on command channels, which a
/// sequential shim cannot provide without deadlocking.
pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn one task; it may borrow from the environment (`'scope`) and
    /// runs to completion before `scope` returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.0.spawn(f);
    }
}

/// Run `f` with a [`Scope`]; returns once every spawned task finished.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope(s)))
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_reduce_matches_sequential() {
        let total = (0u64..100)
            .into_par_iter()
            .map(|x| x * x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, (0u64..100).map(|x| x * x).sum::<u64>());
    }

    #[test]
    fn par_iter_over_vec_refs() {
        let v = vec![1u32, 2, 3];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
        // v untouched
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn join_runs_both() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
    }

    #[test]
    fn scope_runs_spawned_tasks_on_real_threads() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let sum = AtomicU32::new(0);
        let main_thread = std::thread::current().id();
        let mut saw_other_thread = false;
        super::scope(|s| {
            let saw = &mut saw_other_thread;
            let sum = &sum;
            s.spawn(move || {
                *saw = std::thread::current().id() != main_thread;
                sum.fetch_add(1, Ordering::SeqCst);
            });
            for _ in 0..3 {
                s.spawn(|| {
                    sum.fetch_add(10, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 31);
        assert!(saw_other_thread, "spawn must use a worker thread");
    }
}
