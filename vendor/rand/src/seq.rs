//! Sequence helpers: shuffling and random choice (subset of
//! `rand::seq`).

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_none() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: Vec<u32> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        assert!([7u32].choose(&mut rng).is_some());
    }
}
