//! Named generators: [`StdRng`] (xoshiro256++ under the hood in this
//! offline shim) and [`SmallRng`] (same engine).

use crate::{RngCore, SeedableRng};

/// The standard deterministic generator of the shim: xoshiro256++.
///
/// The real `rand::rngs::StdRng` is ChaCha12; this shim only promises a
/// deterministic, statistically solid stream, which xoshiro256++
/// provides at a fraction of the code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    #[inline]
    fn rotl(x: u64, k: u32) -> u64 {
        x.rotate_left(k)
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *w = u64::from_le_bytes(bytes);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = Self::rotl(s[3], 45);
        result
    }
}

/// Small-footprint generator; identical engine in this shim.
pub type SmallRng = StdRng;
