//! Offline vendored shim of the parts of the `rand` crate API that
//! adhoc-net uses. The container that builds this repository has no
//! network access to crates.io, so the workspace pins `rand` to this
//! path crate instead (see the root `Cargo.toml` `[workspace.dependencies]`).
//!
//! The shim keeps the *API* of rand 0.8 (`Rng`, `RngCore`,
//! `SeedableRng`, `rngs::StdRng`, `seq::SliceRandom`, `prelude`) but the
//! generated streams are only guaranteed to be deterministic and
//! well-distributed, not bit-identical to the upstream crate. Nothing in
//! the workspace asserts on absolute stream values, only on
//! reproducibility, which this shim provides.

pub mod rngs;
pub mod seq;

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait StandardSample {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (matches rand's
    /// `Standard` for `f64`).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as StandardSample>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing generator methods, blanket-implemented for every
/// [`RngCore`] (mirrors rand 0.8).
pub trait Rng: RngCore {
    /// Sample from the standard distribution (`f64` in `[0,1)`, full
    /// range for integers).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool: p must be in [0,1], got {p}"
        );
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators (mirrors rand 0.8).
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` by expanding it with SplitMix64, as the
    /// real crate does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Offline shim: there is no OS entropy hookup; uses a fixed seed so
    /// behaviour stays reproducible.
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x853c_49e6_748f_ea9b)
    }
}

/// SplitMix64, used to expand `u64` seeds into full seed arrays.
pub(crate) struct SplitMix64(pub u64);

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The usual glob import: traits plus the standard generator.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&f));
            let i = r.gen_range(2..=5usize);
            assert!((2..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_ref() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(5);
        let x = draw(&mut r);
        assert!((0.0..1.0).contains(&x));
    }
}
