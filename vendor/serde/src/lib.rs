//! Offline vendored shim of `serde`. The container building this repo
//! cannot reach crates.io, so the workspace pins `serde` to this path
//! crate.
//!
//! Instead of upstream serde's visitor architecture, this shim uses a
//! concrete JSON-like [`Value`] data model: `Serialize` renders a value
//! tree, `Deserialize` reads one back. The `#[derive(Serialize,
//! Deserialize)]` macros (re-exported from the sibling `serde_derive`
//! shim) generate those impls for structs with named fields and for
//! enums with unit / named-field / tuple variants — exactly the shapes
//! this workspace uses. The companion `serde_json` shim renders and
//! parses `Value` as standard JSON, so on-disk artifacts remain
//! interchangeable with upstream-serde builds.

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the shim's entire data model.
///
/// Objects preserve insertion order (a `Vec` of pairs rather than a
/// map) so serialized output is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON booleans.
    Bool(bool),
    /// Negative integers (and any integer written through `i64`).
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, order-preserving.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(x) => Some(x),
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// Integer view as `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// Integer view as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(x) => Some(x),
            Value::I64(x) => u64::try_from(x).ok(),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error: a message string, as in `serde::de::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Construct from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }

    /// "expected X, found Y" helper.
    pub fn type_mismatch(expected: &str, found: &Value) -> Self {
        Error(format!("expected {expected}, found {}", found.kind()))
    }

    /// Missing object field helper.
    pub fn missing_field(name: &str) -> Self {
        Error(format!("missing field `{name}`"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    /// Build the value tree for `self`.
    fn serialize_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parse the value tree.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ---------------------------------------------------

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::type_mismatch("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::type_mismatch("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 { Value::U64(x as u64) } else { Value::I64(x) }
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::type_mismatch("integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(format!(
                    "integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::type_mismatch("number", v))
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::type_mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.serialize_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::deserialize_value).collect(),
            other => Err(Error::type_mismatch("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
            )),
            other => Err(Error::type_mismatch("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 3 => Ok((
                A::deserialize_value(&items[0])?,
                B::deserialize_value(&items[1])?,
                C::deserialize_value(&items[2])?,
            )),
            other => Err(Error::type_mismatch("3-element array", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let v: Option<f64> = None;
        assert_eq!(v.serialize_value(), Value::Null);
        assert_eq!(
            Option::<f64>::deserialize_value(&Value::Null).unwrap(),
            None
        );
        assert_eq!(
            Option::<f64>::deserialize_value(&Value::F64(2.5)).unwrap(),
            Some(2.5)
        );
    }

    #[test]
    fn int_range_checks() {
        assert!(u8::deserialize_value(&Value::U64(300)).is_err());
        assert_eq!(u8::deserialize_value(&Value::U64(255)).unwrap(), 255);
        assert_eq!(i32::deserialize_value(&Value::I64(-5)).unwrap(), -5);
    }

    #[test]
    fn vec_roundtrip() {
        let v = vec![1u32, 2, 3];
        let val = v.serialize_value();
        assert_eq!(Vec::<u32>::deserialize_value(&val).unwrap(), v);
    }

    #[test]
    fn object_get() {
        let obj = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(obj.get("a"), Some(&Value::U64(1)));
        assert_eq!(obj.get("b"), None);
    }
}
