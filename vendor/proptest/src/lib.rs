//! Offline vendored shim of `proptest`. The build container cannot
//! reach crates.io, so this crate implements the subset of proptest the
//! workspace uses:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter`, implemented for ranges and tuples;
//! * [`collection::vec`];
//! * [`arbitrary::any`] for common scalar types;
//! * the [`proptest!`]/[`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from upstream: cases are generated from a seed derived
//! deterministically from the test name (fully reproducible runs), and
//! failing cases are reported without shrinking.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The usual glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use test_runner::ProptestConfig;

/// Define property tests. Mirrors proptest's macro syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(x in 0..10usize, v in collection::vec(0.0f64..1.0, 1..50)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&$strat, &mut rng);)*
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fallible assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)*)),
            );
        }
    };
}

/// Fallible equality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fallible inequality assertion inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3..10u32, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn tuples_and_vecs(
            (a, b) in (0..5u32, 0..5u32),
            v in crate::collection::vec(0.0f64..1.0, 1..20)
        ) {
            prop_assert!(a < 5 && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn combinators(
            n in (2usize..6).prop_flat_map(|n| {
                crate::collection::vec(0..n as u32, 1..10)
                    .prop_map(move |v| (n, v))
            }),
            odd in (0..100u32).prop_filter("odd", |x| x % 2 == 1)
        ) {
            let (bound, v) = n;
            prop_assert!(v.iter().all(|&x| (x as usize) < bound));
            prop_assert_eq!(odd % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_test("fixed");
        let mut b = TestRng::for_test("fixed");
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0.0f64..1.0, 1..50);
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
