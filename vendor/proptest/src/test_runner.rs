//! Test configuration, RNG, and failure type.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Per-test configuration (subset of upstream's).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// The RNG driving strategy generation.
///
/// Seeded from a hash of the test name: every run of the suite
/// generates the same cases (upstream proptest is randomized; the shim
/// trades exploration for reproducibility, which suits CI).
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }

    /// Explicitly seeded RNG.
    pub fn from_seed_u64(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a test case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failed assertion/property.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
