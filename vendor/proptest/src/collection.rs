//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

/// `proptest::collection::vec(element, len_range)`.
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty length range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
