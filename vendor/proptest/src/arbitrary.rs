//! `any::<T>()` for common scalar types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary_with(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` — `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_with(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    /// Finite f64 across a wide dynamic range (no NaN/Inf, which most
    /// numeric properties exclude anyway).
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exp: i32 = rng.gen_range(-60..60);
        mantissa * (2f64).powi(exp)
    }
}

impl Arbitrary for f32 {
    fn arbitrary_with(rng: &mut TestRng) -> Self {
        f64::arbitrary_with(rng) as f32
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_with(rng: &mut TestRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
