//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of type `Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic sampler over the test RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it selects.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Retain only values passing `pred` (rejection sampling).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Box the strategy (API-compatibility helper).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 10000 consecutive candidates",
            self.whence
        );
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
