//! Uniform-grid spatial index.
//!
//! The reproduction repeatedly needs "all nodes within distance `r` of `p`"
//! (building the transmission graph `G*`, interference sets, honeycomb
//! candidate pairs). A uniform grid with cell size equal to the query radius
//! answers such queries in expected `O(1 + k)` for bounded-density inputs,
//! which keeps every experiment near-linear instead of `O(n²)`.

use crate::point::Point;

/// A uniform-grid index over a fixed point set.
///
/// The grid is built once for a query radius `cell`; range queries with
/// radius `≤ cell` examine only the 3×3 neighborhood of the query cell.
/// Larger radii are still correct (the neighborhood widens accordingly).
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    cell: f64,
    min_x: f64,
    min_y: f64,
    cols: usize,
    rows: usize,
    /// CSR layout: `cell_start[c]..cell_start[c+1]` indexes into `order`.
    cell_start: Vec<u32>,
    order: Vec<u32>,
}

impl GridIndex {
    /// Build an index over `points` with grid cell size `cell` (> 0).
    ///
    /// # Panics
    /// Panics if `cell` is not strictly positive and finite.
    pub fn build(points: &[Point], cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell size must be positive and finite, got {cell}"
        );
        if points.is_empty() {
            return GridIndex {
                points: Vec::new(),
                cell,
                min_x: 0.0,
                min_y: 0.0,
                cols: 1,
                rows: 1,
                cell_start: vec![0, 0],
                order: Vec::new(),
            };
        }
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let cols = (((max_x - min_x) / cell).floor() as usize + 1).max(1);
        let rows = (((max_y - min_y) / cell).floor() as usize + 1).max(1);

        // Counting sort into cells (CSR build, no per-cell Vec allocations).
        let ncells = cols * rows;
        let mut counts = vec![0u32; ncells + 1];
        let cell_of = |p: &Point| -> usize {
            let cx = (((p.x - min_x) / cell) as usize).min(cols - 1);
            let cy = (((p.y - min_y) / cell) as usize).min(rows - 1);
            cy * cols + cx
        };
        for p in points {
            counts[cell_of(p) + 1] += 1;
        }
        for i in 0..ncells {
            counts[i + 1] += counts[i];
        }
        let cell_start = counts.clone();
        let mut cursor = counts;
        let mut order = vec![0u32; points.len()];
        for (i, p) in points.iter().enumerate() {
            let c = cell_of(p);
            order[cursor[c] as usize] = i as u32;
            cursor[c] += 1;
        }

        GridIndex {
            points: points.to_vec(),
            cell,
            min_x,
            min_y,
            cols,
            rows,
            cell_start,
            order,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True iff the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The indexed points, in original order.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Visit the indices of all points within distance `r` of `q`
    /// (inclusive), excluding none. Indices refer to the original slice.
    pub fn for_each_within<F: FnMut(u32)>(&self, q: Point, r: f64, mut f: F) {
        if self.points.is_empty() {
            return;
        }
        let r2 = r * r;
        let reach = (r / self.cell).ceil() as isize;
        let qcx = ((q.x - self.min_x) / self.cell).floor() as isize;
        let qcy = ((q.y - self.min_y) / self.cell).floor() as isize;
        for cy in (qcy - reach).max(0)..=(qcy + reach).min(self.rows as isize - 1) {
            for cx in (qcx - reach).max(0)..=(qcx + reach).min(self.cols as isize - 1) {
                let c = cy as usize * self.cols + cx as usize;
                let lo = self.cell_start[c] as usize;
                let hi = self.cell_start[c + 1] as usize;
                for &i in &self.order[lo..hi] {
                    if self.points[i as usize].dist_sq(q) <= r2 {
                        f(i);
                    }
                }
            }
        }
    }

    /// All indices within distance `r` of `q` (inclusive), as a Vec.
    pub fn within(&self, q: Point, r: f64) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_within(q, r, |i| out.push(i));
        out
    }

    /// Indices of all *other* points within distance `r` of point `i`.
    pub fn neighbors_of(&self, i: u32, r: f64) -> Vec<u32> {
        let q = self.points[i as usize];
        let mut out = Vec::new();
        self.for_each_within(q, r, |j| {
            if j != i {
                out.push(j);
            }
        });
        out
    }

    /// Nearest indexed point to `q` other than `exclude` (pass `u32::MAX`
    /// to exclude none). Returns `None` if the index is empty or holds only
    /// the excluded point. Falls back to widening ring search.
    pub fn nearest(&self, q: Point, exclude: u32) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let mut radius = self.cell;
        let diag = {
            let w = self.cols as f64 * self.cell;
            let h = self.rows as f64 * self.cell;
            (w * w + h * h).sqrt() + self.cell
        };
        loop {
            let mut best: Option<(f64, u32)> = None;
            self.for_each_within(q, radius, |i| {
                if i == exclude {
                    return;
                }
                let d2 = self.points[i as usize].dist_sq(q);
                if best.is_none_or(|(bd, _)| d2 < bd) {
                    best = Some((d2, i));
                }
            });
            if let Some((d2, i)) = best {
                // The ring search may have missed a closer point just outside
                // `radius` cells but within true distance; re-verify.
                if d2.sqrt() <= radius || radius > diag {
                    return Some(i);
                }
            }
            if radius > diag {
                return best.map(|(_, i)| i);
            }
            radius *= 2.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_points(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn brute_within(points: &[Point], q: Point, r: f64) -> Vec<u32> {
        let mut v: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| points[i as usize].dist(q) <= r)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn empty_index() {
        let g = GridIndex::build(&[], 0.1);
        assert!(g.is_empty());
        assert_eq!(g.within(Point::ORIGIN, 10.0), Vec::<u32>::new());
        assert_eq!(g.nearest(Point::ORIGIN, u32::MAX), None);
    }

    #[test]
    #[should_panic]
    fn zero_cell_panics() {
        GridIndex::build(&[Point::ORIGIN], 0.0);
    }

    #[test]
    fn within_matches_brute_force() {
        let pts = random_points(300, 42);
        let g = GridIndex::build(&pts, 0.1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let q = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            let r = rng.gen_range(0.01..0.4);
            let mut got = g.within(q, r);
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, q, r));
        }
    }

    #[test]
    fn within_radius_larger_than_cell() {
        let pts = random_points(200, 3);
        let g = GridIndex::build(&pts, 0.05);
        let q = Point::new(0.5, 0.5);
        let mut got = g.within(q, 0.6);
        got.sort_unstable();
        assert_eq!(got, brute_within(&pts, q, 0.6));
    }

    #[test]
    fn neighbors_excludes_self() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.05, 0.0),
            Point::new(1.0, 1.0),
        ];
        let g = GridIndex::build(&pts, 0.1);
        let nb = g.neighbors_of(0, 0.1);
        assert_eq!(nb, vec![1]);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = random_points(150, 11);
        let g = GridIndex::build(&pts, 0.08);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..40 {
            let q = Point::new(rng.gen_range(-0.2..1.2), rng.gen_range(-0.2..1.2));
            let got = g.nearest(q, u32::MAX).unwrap();
            let best = (0..pts.len() as u32)
                .min_by(|&a, &b| {
                    pts[a as usize]
                        .dist_sq(q)
                        .partial_cmp(&pts[b as usize].dist_sq(q))
                        .unwrap()
                })
                .unwrap();
            assert!(
                (pts[got as usize].dist(q) - pts[best as usize].dist(q)).abs() < 1e-12,
                "nearest mismatch"
            );
        }
    }

    #[test]
    fn nearest_respects_exclusion() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let g = GridIndex::build(&pts, 0.5);
        assert_eq!(g.nearest(Point::new(0.1, 0.0), 0), Some(1));
    }

    #[test]
    fn degenerate_all_same_point() {
        let pts = vec![Point::new(0.5, 0.5); 10];
        let g = GridIndex::build(&pts, 0.1);
        assert_eq!(g.within(Point::new(0.5, 0.5), 0.0).len(), 10);
        assert_eq!(g.neighbors_of(3, 1.0).len(), 9);
    }

    #[test]
    fn points_on_cell_boundaries() {
        // Points exactly on grid lines must not be lost to rounding.
        let pts: Vec<Point> = (0..11)
            .flat_map(|i| (0..11).map(move |j| Point::new(i as f64 * 0.1, j as f64 * 0.1)))
            .collect();
        let g = GridIndex::build(&pts, 0.1);
        let all = g.within(Point::new(0.5, 0.5), 2.0);
        assert_eq!(all.len(), pts.len());
    }
}
