//! # adhoc-geom
//!
//! 2-D geometry substrate for the SPAA'03 reproduction *"On Local Algorithms
//! for Topology Control and Routing in Ad Hoc Networks"* (Jia, Rajaraman,
//! Scheideler).
//!
//! This crate provides everything below the graph layer:
//!
//! * [`Point`] / [`Vec2`] — plane geometry with robust helper predicates.
//! * [`sector`] — the cone/sector arithmetic that drives the ΘALG topology
//!   control algorithm (each node partitions the plane around itself into
//!   sectors of angle `θ ≤ π/3`).
//! * [`grid`] — a uniform-grid spatial index used to build unit-disk graphs
//!   and interference sets in near-linear expected time.
//! * [`hex`] — the honeycomb tiling of the plane with hexagons of side
//!   `3 + 2Δ` used by the fixed-transmission-strength algorithm of §3.4
//!   (paper Figure 5).
//! * [`distributions`] — seeded synthetic node distributions (uniform,
//!   clustered, grid-jitter, λ-precision/civilized, adversarial chains).
//! * [`lemmas`] — numeric checkers for the paper's geometric Lemmas 2.3–2.6,
//!   exercised by property-based tests (experiment E10).

pub mod angle;
pub mod distributions;
pub mod grid;
pub mod hex;
pub mod lemmas;
pub mod point;
pub mod sector;

pub use angle::{angle_between, normalize_angle, TAU};
pub use grid::GridIndex;
pub use hex::{HexCoord, HexGrid};
pub use point::{Point, Vec2};
pub use sector::SectorPartition;

/// Default maximum transmission range `D` used throughout the experiments
/// when nodes live in the unit square. Chosen so that a uniform random set
/// of ≥ 100 nodes is connected with overwhelming probability
/// (`D ≳ sqrt(2 ln n / n)` is the connectivity threshold).
pub fn default_max_range(n: usize) -> f64 {
    let n = n.max(2) as f64;
    (2.5 * n.ln() / n).sqrt().min(1.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_range_monotone_decreasing_in_n() {
        let r100 = default_max_range(100);
        let r1000 = default_max_range(1000);
        let r10000 = default_max_range(10_000);
        assert!(r100 > r1000 && r1000 > r10000);
    }

    #[test]
    fn default_range_capped() {
        assert!(default_max_range(2) <= 1.5);
        assert!(default_max_range(0) <= 1.5);
    }

    #[test]
    fn default_range_connectivity_margin() {
        // For n = 1000 the threshold is sqrt(ln n / n) ≈ 0.0831; ours must
        // exceed it (we use 2.5 ln n / n under the sqrt).
        let n = 1000usize;
        let threshold = ((n as f64).ln() / n as f64).sqrt();
        assert!(default_max_range(n) > threshold);
    }
}
