//! Numeric checkers for the paper's geometric lemmas (Lemmas 2.3–2.6).
//!
//! The energy-stretch proof of Theorem 2.2 rests on four elementary-geometry
//! lemmas. The paper presents them without proof (deferring to the full
//! version), so the reproduction *verifies them numerically*: each checker
//! evaluates both sides of the claimed inequality for a concrete
//! configuration, and the property-test suite (experiment E10) hammers them
//! with random configurations satisfying the preconditions.
//!
//! Each checker returns [`LemmaCheck`] with the evaluated left/right sides;
//! `holds()` allows a small relative tolerance for floating-point noise.

use crate::point::{interior_angle, Point};

/// Result of evaluating one side of a lemma inequality `lhs ≤ rhs`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LemmaCheck {
    pub lhs: f64,
    pub rhs: f64,
}

impl LemmaCheck {
    /// `lhs ≤ rhs` up to a relative tolerance.
    pub fn holds(&self) -> bool {
        self.lhs <= self.rhs * (1.0 + 1e-9) + 1e-12
    }
}

/// **Lemma 2.3.** For any `△ABC` with `|AC| ≤ |BC|` and `∠ACB ≤ π/3`:
/// `c·|AB|² + |AC|² ≤ c·|BC|²` for every `c ≥ 1 / (2 cos(∠ACB) − 1)`.
///
/// Returns `None` when the precondition fails.
pub fn lemma_2_3(a: Point, b: Point, c_pt: Point, c: f64) -> Option<LemmaCheck> {
    let ac = a.dist(c_pt);
    let bc = b.dist(c_pt);
    let ab = a.dist(b);
    let gamma = interior_angle(a, c_pt, b); // ∠ACB
    if ac > bc || gamma > std::f64::consts::FRAC_PI_3 {
        return None;
    }
    let c_min = 1.0 / (2.0 * gamma.cos() - 1.0);
    if c < c_min {
        return None;
    }
    Some(LemmaCheck {
        lhs: c * ab * ab + ac * ac,
        rhs: c * bc * bc,
    })
}

/// The minimum admissible constant `c` of Lemma 2.3 for angle `gamma`.
pub fn lemma_2_3_c_min(gamma: f64) -> f64 {
    1.0 / (2.0 * gamma.cos() - 1.0)
}

/// **Lemma 2.4.** For any `△ABC` with `|BC| ≤ |AC| ≤ |AB|` and
/// `∠BAC ≤ π/6`: `|BC| ≤ |AB| / (2 cos ∠BAC)`.
pub fn lemma_2_4(a: Point, b: Point, c: Point) -> Option<LemmaCheck> {
    let bc = b.dist(c);
    let ac = a.dist(c);
    let ab = a.dist(b);
    let alpha = interior_angle(b, a, c); // ∠BAC
    if !(bc <= ac && ac <= ab) || alpha > std::f64::consts::FRAC_PI_6 {
        return None;
    }
    Some(LemmaCheck {
        lhs: bc,
        rhs: ab / (2.0 * alpha.cos()),
    })
}

/// **Lemma 2.5.** Let `A, A₁, …, A_k` be points with `|A Aᵢ| ≥ |A Aᵢ₊₁|`
/// and `0 ≤ ∠Aᵢ A Aᵢ₊₁ ≤ θ`. If `∠A₁ A A_k = α` then
/// `Σ |Aᵢ Aᵢ₊₁|² ≤ (|A A₁| − |A A_k|)² + 2 |A A₁|² (α/θ)(1 − cos θ)`.
///
/// `chain` is `[A₁, …, A_k]`; `a` is the apex `A`. Returns `None` when the
/// monotone-distance or per-step-angle precondition fails, when the sweep
/// is not monotone in one rotational direction, or when the total swept
/// angle exceeds `π` (the paper's usage has `α ≲ π/6`, so `∠A₁ A A_k`
/// equals the swept angle only in this regime).
pub fn lemma_2_5(a: Point, chain: &[Point], theta: f64) -> Option<LemmaCheck> {
    use crate::point::orient2d;
    if chain.len() < 2 || theta <= 0.0 {
        return None;
    }
    let mut sweep = 0.0;
    let mut sweep_sign = 0.0f64;
    for w in chain.windows(2) {
        if a.dist(w[0]) + 1e-12 < a.dist(w[1]) {
            return None; // distances must be non-increasing
        }
        let step = interior_angle(w[0], a, w[1]);
        if step > theta + 1e-12 {
            return None; // per-step angle exceeds θ
        }
        let s = orient2d(a, w[0], w[1]).signum();
        if s != 0.0 {
            if sweep_sign == 0.0 {
                sweep_sign = s;
            } else if s != sweep_sign {
                return None; // sweep must be monotone in one direction
            }
        }
        sweep += step;
    }
    if sweep > std::f64::consts::PI {
        return None; // ∠A₁AA_k no longer measures the total sweep
    }
    let alpha = interior_angle(chain[0], a, *chain.last().unwrap());
    let d1 = a.dist(chain[0]);
    let dk = a.dist(*chain.last().unwrap());
    let sum_sq: f64 = chain.windows(2).map(|w| w[0].dist_sq(w[1])).sum();
    Some(LemmaCheck {
        lhs: sum_sq,
        rhs: (d1 - dk) * (d1 - dk) + 2.0 * d1 * d1 * (alpha / theta) * (1.0 - theta.cos()),
    })
}

/// **Lemma 2.6.** Let `A, B` be points, `O` the midpoint of `AB`. Let `D`
/// satisfy `|BD| = |AB|` and `∠DBA = π/6`. Let `C` be outside the circle
/// `C(O, |OA|)` with `|AC| ≤ |AB|`, `∠CAB < π/12`, and `C, D` on the same
/// side of `AB`. Let `E` be the intersection of segment `CD` with the
/// circle. Then `∠EAB ≤ 2·∠CAB`.
///
/// `D` is constructed on the same side of `AB` as `C` (the lemma requires
/// `C, D` on the same side). Returns `None` if the preconditions fail or
/// the segment `CD` misses the circle.
pub fn lemma_2_6(a: Point, b: Point, c: Point) -> Option<LemmaCheck> {
    use crate::point::orient2d;
    let o = a.midpoint(b);
    let r = o.dist(a);
    // Preconditions on C.
    if c.dist(o) <= r {
        return None; // must be outside the circle
    }
    if a.dist(c) > a.dist(b) {
        return None;
    }
    let cab = interior_angle(c, a, b);
    if cab >= std::f64::consts::PI / 12.0 {
        return None;
    }
    let sc = orient2d(a, b, c);
    if sc == 0.0 {
        return None; // C on line AB: no well-defined side
    }
    // D: rotate A around B by ±π/6 — that gives |BD| = |BA| = |AB| and
    // ∠DBA = π/6 — picking the rotation that lands D on C's side of AB.
    let d_ccw = a.rotate_around(b, std::f64::consts::FRAC_PI_6);
    let d = if orient2d(a, b, d_ccw) * sc > 0.0 {
        d_ccw
    } else {
        a.rotate_around(b, -std::f64::consts::FRAC_PI_6)
    };
    let e = segment_circle_intersection(c, d, o, r)?;
    Some(LemmaCheck {
        lhs: interior_angle(e, a, b),
        rhs: 2.0 * cab,
    })
}

/// First intersection of segment `p`→`q` with circle `C(center, r)`,
/// walking from `p` toward `q`. `None` if the segment misses the circle.
pub fn segment_circle_intersection(p: Point, q: Point, center: Point, r: f64) -> Option<Point> {
    let d = p.to(q);
    let f = center.to(p);
    let a = d.norm_sq();
    if a < 1e-300 {
        return None;
    }
    let b = 2.0 * f.dot(d);
    let c = f.norm_sq() - r * r;
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    for t in [(-b - sq) / (2.0 * a), (-b + sq) / (2.0 * a)] {
        if (0.0..=1.0).contains(&t) {
            return Some(p.lerp(q, t));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_3, FRAC_PI_6, PI};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn lemma_2_3_holds_on_sample_triangle() {
        // C at origin; A close, B farther, angle at C = 30° ≤ 60°.
        let cpt = p(0.0, 0.0);
        let a = p(1.0, 0.0);
        let b = p(2.0 * (PI / 6.0).cos(), 2.0 * (PI / 6.0).sin());
        let gamma = interior_angle(a, cpt, b);
        let c = lemma_2_3_c_min(gamma) * 1.01;
        let chk = lemma_2_3(a, b, cpt, c).expect("preconditions hold");
        assert!(chk.holds(), "lhs={} rhs={}", chk.lhs, chk.rhs);
    }

    #[test]
    fn lemma_2_3_rejects_large_angle() {
        let cpt = p(0.0, 0.0);
        let a = p(1.0, 0.0);
        let b = p(-1.0, 2.0); // angle at C well over 60°
        assert!(lemma_2_3(a, b, cpt, 100.0).is_none());
    }

    #[test]
    fn lemma_2_3_rejects_small_c() {
        let cpt = p(0.0, 0.0);
        let a = p(1.0, 0.0);
        let b = p(2.0 * (PI / 6.0).cos(), 2.0 * (PI / 6.0).sin());
        assert!(lemma_2_3(a, b, cpt, 0.5).is_none()); // c < c_min(30°) ≈ 1.366
    }

    #[test]
    fn c_min_at_zero_angle_is_one() {
        assert!((lemma_2_3_c_min(0.0) - 1.0).abs() < 1e-12);
        assert!(lemma_2_3_c_min(FRAC_PI_3 - 0.01) > 10.0);
    }

    #[test]
    fn lemma_2_4_holds_on_sample() {
        // A at origin, B far on x-axis, C making a small angle at A with
        // |BC| ≤ |AC| ≤ |AB|.
        let a = p(0.0, 0.0);
        let b = p(2.0, 0.0);
        let c = p(1.8 * (0.2f64).cos(), 1.8 * (0.2f64).sin());
        if let Some(chk) = lemma_2_4(a, b, c) {
            assert!(chk.holds(), "lhs={} rhs={}", chk.lhs, chk.rhs);
        } else {
            panic!("preconditions should hold for this configuration");
        }
    }

    #[test]
    fn lemma_2_4_rejects_wrong_order() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        let c = p(5.0, 0.1); // |AC| > |AB|
        assert!(lemma_2_4(a, b, c).is_none());
    }

    #[test]
    fn lemma_2_4_rejects_large_apex_angle() {
        let a = p(0.0, 0.0);
        let b = p(2.0, 0.0);
        let c = p(1.0, 1.5); // ∠BAC ≈ 56° > 30°
        assert!(lemma_2_4(a, b, c).is_none());
    }

    #[test]
    fn lemma_2_5_holds_on_shrinking_spiral() {
        let a = p(0.0, 0.0);
        let theta = FRAC_PI_6;
        // Points at decreasing radius, consecutive angular gap θ/2.
        let chain: Vec<Point> = (0..6)
            .map(|i| {
                let r = 1.0 - 0.1 * i as f64;
                let ang = i as f64 * theta / 2.0;
                p(r * ang.cos(), r * ang.sin())
            })
            .collect();
        let chk = lemma_2_5(a, &chain, theta).expect("preconditions hold");
        assert!(chk.holds(), "lhs={} rhs={}", chk.lhs, chk.rhs);
    }

    #[test]
    fn lemma_2_5_rejects_growing_distance() {
        let a = p(0.0, 0.0);
        let chain = vec![p(1.0, 0.0), p(2.0, 0.1)];
        assert!(lemma_2_5(a, &chain, FRAC_PI_6).is_none());
    }

    #[test]
    fn lemma_2_5_rejects_big_step_angle() {
        let a = p(0.0, 0.0);
        let chain = vec![p(1.0, 0.0), p(0.0, 0.9)]; // 90° step > θ
        assert!(lemma_2_5(a, &chain, FRAC_PI_6).is_none());
    }

    #[test]
    fn lemma_2_5_two_point_chain_degenerate() {
        // k = 2, zero angular gap: inequality reduces to
        // |A1A2|² ≤ (|AA1|−|AA2|)² for collinear points — equality.
        let a = p(0.0, 0.0);
        let chain = vec![p(2.0, 0.0), p(1.0, 0.0)];
        let chk = lemma_2_5(a, &chain, FRAC_PI_6).unwrap();
        assert!(chk.holds());
        assert!((chk.lhs - 1.0).abs() < 1e-12);
    }

    #[test]
    fn segment_circle_intersection_basic() {
        let e = segment_circle_intersection(p(-2.0, 0.0), p(2.0, 0.0), p(0.0, 0.0), 1.0).unwrap();
        assert!((e.x + 1.0).abs() < 1e-12 && e.y.abs() < 1e-12);
        // Miss
        assert!(segment_circle_intersection(p(-2.0, 5.0), p(2.0, 5.0), p(0.0, 0.0), 1.0).is_none());
        // Degenerate zero-length segment
        assert!(segment_circle_intersection(p(0.0, 5.0), p(0.0, 5.0), p(0.0, 0.0), 1.0).is_none());
    }

    #[test]
    fn lemma_2_6_holds_on_sample() {
        let a = p(0.0, 0.0);
        let b = p(2.0, 0.0);
        // C outside circle C(O,1), |AC| ≤ |AB|, small angle, upper side.
        let ang: f64 = 0.15; // < π/12 ≈ 0.2618
        let c = p(1.99 * ang.cos(), 1.99 * ang.sin());
        let chk = lemma_2_6(a, b, c).expect("preconditions + intersection");
        assert!(chk.holds(), "lhs={} rhs={}", chk.lhs, chk.rhs);
    }

    #[test]
    fn lemma_2_6_rejects_inside_circle() {
        let a = p(0.0, 0.0);
        let b = p(2.0, 0.0);
        let c = p(1.0, 0.1); // inside C(O,1)
        assert!(lemma_2_6(a, b, c).is_none());
    }

    #[test]
    fn lemma_2_6_rejects_wide_angle() {
        let a = p(0.0, 0.0);
        let b = p(2.0, 0.0);
        let ang: f64 = 0.5; // > π/12
        let c = p(1.99 * ang.cos(), 1.99 * ang.sin());
        assert!(lemma_2_6(a, b, c).is_none());
    }
}
