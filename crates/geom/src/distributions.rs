//! Seeded synthetic node distributions.
//!
//! The paper's guarantees are distribution-free (Theorem 2.2 holds "for any
//! distribution of nodes in the 2-dimensional Euclidean plane"), so the
//! experiment suite exercises ΘALG across qualitatively different point
//! processes:
//!
//! * [`NodeDistribution::UniformSquare`] — the model of Lemma 2.10 /
//!   Corollary 3.5 (uniform random in a unit square).
//! * [`NodeDistribution::Clustered`] — Gaussian blobs; stresses the
//!   non-civilized regime (huge ratio of max/min edge length).
//! * [`NodeDistribution::GridJitter`] — perturbed lattice, a standard
//!   sensor-deployment model.
//! * [`NodeDistribution::Civilized`] — λ-precision point sets (minimum
//!   pairwise separation), the model of Theorem 2.7.
//! * [`NodeDistribution::ExponentialChain`] — adversarial 1-D chain with
//!   exponentially growing gaps: the classic worst case for proximity
//!   graphs and for naive k-nearest-neighbor topologies.
//! * [`NodeDistribution::Ring`] — nodes on a circle, maximizing Yao
//!   in-degree asymmetries.
//!
//! Every sampler takes an explicit RNG so experiments are reproducible from
//! a recorded seed.

use crate::point::Point;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A synthetic node distribution over (a region of) the plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum NodeDistribution {
    /// `n` i.i.d. uniform points in the `side × side` square.
    UniformSquare { side: f64 },
    /// `k` Gaussian clusters with standard deviation `sigma`, cluster
    /// centers uniform in the unit square; points assigned round-robin.
    Clustered { clusters: usize, sigma: f64 },
    /// `⌈√n⌉ × ⌈√n⌉` lattice over the unit square, each point jittered
    /// uniformly by up to `jitter` of the lattice spacing.
    GridJitter { jitter: f64 },
    /// λ-precision set in the unit square: minimum pairwise distance
    /// `lambda`. Sampled by dart throwing with a conflict grid, so the
    /// requested `n` must satisfy `n · λ² ≲ 1` or sampling fails.
    Civilized { lambda: f64 },
    /// Points on a line with gaps growing by factor `growth ≥ 1`
    /// starting from `base`.
    ExponentialChain { base: f64, growth: f64 },
    /// `n` points evenly spaced on a circle of radius `radius`, plus the
    /// center point.
    Ring { radius: f64 },
}

/// Errors from sampling a distribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleError {
    /// A Civilized sample could not place `n` points at separation λ.
    PackingTooDense,
}

impl std::fmt::Display for SampleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleError::PackingTooDense => {
                write!(
                    f,
                    "cannot place that many λ-separated points in the unit square"
                )
            }
        }
    }
}

impl std::error::Error for SampleError {}

impl NodeDistribution {
    /// Sample `n` points. Deterministic given the RNG state.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
    ) -> Result<Vec<Point>, SampleError> {
        match *self {
            NodeDistribution::UniformSquare { side } => Ok((0..n)
                .map(|_| Point::new(rng.gen::<f64>() * side, rng.gen::<f64>() * side))
                .collect()),
            NodeDistribution::Clustered { clusters, sigma } => {
                let k = clusters.max(1);
                let centers: Vec<Point> = (0..k)
                    .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
                    .collect();
                Ok((0..n)
                    .map(|i| {
                        let c = centers[i % k];
                        Point::new(c.x + gaussian(rng) * sigma, c.y + gaussian(rng) * sigma)
                    })
                    .collect())
            }
            NodeDistribution::GridJitter { jitter } => {
                let cols = (n as f64).sqrt().ceil() as usize;
                let spacing = 1.0 / cols as f64;
                let j = jitter.clamp(0.0, 0.499) * spacing;
                Ok((0..n)
                    .map(|i| {
                        let cx = (i % cols) as f64 * spacing + 0.5 * spacing;
                        let cy = (i / cols) as f64 * spacing + 0.5 * spacing;
                        Point::new(
                            cx + rng.gen_range(-1.0..1.0) * j,
                            cy + rng.gen_range(-1.0..1.0) * j,
                        )
                    })
                    .collect())
            }
            NodeDistribution::Civilized { lambda } => sample_civilized(n, lambda, rng),
            NodeDistribution::ExponentialChain { base, growth } => {
                let mut x = 0.0;
                let mut gap = base.max(1e-9);
                let g = growth.max(1.0);
                Ok((0..n)
                    .map(|_| {
                        let p = Point::new(x, 0.0);
                        x += gap;
                        gap *= g;
                        p
                    })
                    .collect())
            }
            NodeDistribution::Ring { radius } => {
                if n == 0 {
                    return Ok(Vec::new());
                }
                let mut pts = Vec::with_capacity(n);
                pts.push(Point::new(0.5, 0.5));
                let m = n - 1;
                for i in 0..m {
                    let a = i as f64 / m.max(1) as f64 * std::f64::consts::TAU;
                    pts.push(Point::new(0.5 + radius * a.cos(), 0.5 + radius * a.sin()));
                }
                Ok(pts)
            }
        }
    }

    /// Convenience: the canonical unit-square uniform distribution.
    pub fn unit_square() -> Self {
        NodeDistribution::UniformSquare { side: 1.0 }
    }

    /// A short machine-friendly label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            NodeDistribution::UniformSquare { .. } => "uniform",
            NodeDistribution::Clustered { .. } => "clustered",
            NodeDistribution::GridJitter { .. } => "grid-jitter",
            NodeDistribution::Civilized { .. } => "civilized",
            NodeDistribution::ExponentialChain { .. } => "exp-chain",
            NodeDistribution::Ring { .. } => "ring",
        }
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Dart-throwing sampler for λ-precision sets with a conflict grid.
fn sample_civilized<R: Rng + ?Sized>(
    n: usize,
    lambda: f64,
    rng: &mut R,
) -> Result<Vec<Point>, SampleError> {
    assert!(lambda > 0.0, "λ must be positive");
    // Area argument: n disjoint disks of radius λ/2 need area ~ n·π·λ²/4.
    if n as f64 * lambda * lambda > 2.0 {
        return Err(SampleError::PackingTooDense);
    }
    let cols = (1.0 / lambda).ceil() as usize + 1;
    let mut grid: Vec<Vec<Point>> = vec![Vec::new(); cols * cols];
    let cell_of = |p: Point| -> (usize, usize) {
        (
            ((p.x / lambda) as usize).min(cols - 1),
            ((p.y / lambda) as usize).min(cols - 1),
        )
    };
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let max_attempts = 200 * n.max(32);
    let mut attempts = 0usize;
    while pts.len() < n {
        attempts += 1;
        if attempts > max_attempts {
            return Err(SampleError::PackingTooDense);
        }
        let cand = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
        let (cx, cy) = cell_of(cand);
        let mut ok = true;
        'scan: for gy in cy.saturating_sub(1)..=(cy + 1).min(cols - 1) {
            for gx in cx.saturating_sub(1)..=(cx + 1).min(cols - 1) {
                for &p in &grid[gy * cols + gx] {
                    if p.dist_sq(cand) < lambda * lambda {
                        ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if ok {
            grid[cy * cols + cx].push(cand);
            pts.push(cand);
        }
    }
    Ok(pts)
}

/// Verify that a point set is λ-precision (minimum pairwise distance ≥ λ).
pub fn is_lambda_precision(points: &[Point], lambda: f64) -> bool {
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            if points[i].dist_sq(points[j]) < lambda * lambda {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn uniform_in_bounds_and_deterministic() {
        let d = NodeDistribution::UniformSquare { side: 2.0 };
        let a = d.sample(100, &mut rng(1)).unwrap();
        let b = d.sample(100, &mut rng(1)).unwrap();
        assert_eq!(a, b);
        assert!(a
            .iter()
            .all(|p| (0.0..=2.0).contains(&p.x) && (0.0..=2.0).contains(&p.y)));
    }

    #[test]
    fn different_seeds_differ() {
        let d = NodeDistribution::unit_square();
        let a = d.sample(50, &mut rng(1)).unwrap();
        let b = d.sample(50, &mut rng(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn clustered_centers_count() {
        let d = NodeDistribution::Clustered {
            clusters: 4,
            sigma: 0.01,
        };
        let pts = d.sample(200, &mut rng(3)).unwrap();
        assert_eq!(pts.len(), 200);
        // With tiny sigma, points form 4 tight groups: check pairwise
        // distances within a residue class mod 4 are small.
        for i in (0..200).step_by(4) {
            assert!(pts[i].dist(pts[(i + 4) % 200]) < 0.2);
        }
    }

    #[test]
    fn grid_jitter_stays_in_unit_square_margin() {
        let d = NodeDistribution::GridJitter { jitter: 0.4 };
        let pts = d.sample(100, &mut rng(4)).unwrap();
        assert_eq!(pts.len(), 100);
        assert!(pts
            .iter()
            .all(|p| (-0.05..=1.05).contains(&p.x) && (-0.05..=1.05).contains(&p.y)));
    }

    #[test]
    fn civilized_respects_lambda() {
        let lambda = 0.04;
        let d = NodeDistribution::Civilized { lambda };
        let pts = d.sample(200, &mut rng(5)).unwrap();
        assert_eq!(pts.len(), 200);
        assert!(is_lambda_precision(&pts, lambda));
    }

    #[test]
    fn civilized_too_dense_fails() {
        let d = NodeDistribution::Civilized { lambda: 0.5 };
        assert_eq!(
            d.sample(1000, &mut rng(6)).unwrap_err(),
            SampleError::PackingTooDense
        );
    }

    #[test]
    fn exponential_chain_gaps_grow() {
        let d = NodeDistribution::ExponentialChain {
            base: 1.0,
            growth: 2.0,
        };
        let pts = d.sample(5, &mut rng(7)).unwrap();
        let gaps: Vec<f64> = pts.windows(2).map(|w| w[1].x - w[0].x).collect();
        assert_eq!(gaps, vec![1.0, 2.0, 4.0, 8.0]);
        assert!(pts.iter().all(|p| p.y == 0.0));
    }

    #[test]
    fn ring_has_center_and_circle() {
        let d = NodeDistribution::Ring { radius: 0.4 };
        let pts = d.sample(33, &mut rng(8)).unwrap();
        assert_eq!(pts.len(), 33);
        let center = pts[0];
        for p in &pts[1..] {
            assert!((p.dist(center) - 0.4).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_zero_and_one() {
        let d = NodeDistribution::Ring { radius: 0.4 };
        assert!(d.sample(0, &mut rng(9)).unwrap().is_empty());
        assert_eq!(d.sample(1, &mut rng(9)).unwrap().len(), 1);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(NodeDistribution::unit_square().label(), "uniform");
        assert_eq!(
            NodeDistribution::Civilized { lambda: 0.1 }.label(),
            "civilized"
        );
    }

    // serde round-trip of NodeDistribution is exercised end-to-end in the
    // sim crate's ScenarioConfig tests (serde_json lives there).

    #[test]
    fn gaussian_moments_sane() {
        let mut r = rng(10);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
