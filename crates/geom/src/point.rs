//! Points and vectors in the Euclidean plane.
//!
//! All node positions in the reproduction are [`Point`]s. Energy costs use
//! `|uv|^κ` (see the paper's §2.2 power-attenuation model), so the distance
//! helpers here are the innermost kernel of every experiment.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the 2-D Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// A displacement vector in the plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Point {
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance `|self other|`.
    #[inline]
    pub fn dist(&self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance; prefer this in comparisons (no sqrt).
    #[inline]
    pub fn dist_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Transmission energy cost `|uv|^κ` of the paper's attenuation model.
    ///
    /// `κ = 2` and `κ = 4` use exact multiplications; other exponents fall
    /// back to `powf`.
    #[inline]
    pub fn energy_cost(&self, other: Point, kappa: f64) -> f64 {
        let d2 = self.dist_sq(other);
        if kappa == 2.0 {
            d2
        } else if kappa == 4.0 {
            d2 * d2
        } else if kappa == 3.0 {
            d2 * d2.sqrt()
        } else {
            d2.powf(kappa / 2.0)
        }
    }

    /// The vector from `self` to `other`.
    #[inline]
    pub fn to(&self, other: Point) -> Vec2 {
        Vec2 {
            x: other.x - self.x,
            y: other.y - self.y,
        }
    }

    /// Midpoint of the segment `self`–`other` (used by the Gabriel-graph
    /// predicate and by Lemma 2.6's circle construction).
    #[inline]
    pub fn midpoint(&self, other: Point) -> Point {
        Point {
            x: 0.5 * (self.x + other.x),
            y: 0.5 * (self.y + other.y),
        }
    }

    /// Linear interpolation: `t = 0` gives `self`, `t = 1` gives `other`.
    #[inline]
    pub fn lerp(&self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + t * (other.x - self.x),
            y: self.y + t * (other.y - self.y),
        }
    }

    /// Angle of the direction from `self` to `other`, in `[0, 2π)`.
    #[inline]
    pub fn direction_to(&self, other: Point) -> f64 {
        crate::angle::normalize_angle((other.y - self.y).atan2(other.x - self.x))
    }

    /// Rotate `self` around `pivot` by `angle` radians (counterclockwise).
    pub fn rotate_around(&self, pivot: Point, angle: f64) -> Point {
        let (s, c) = angle.sin_cos();
        let dx = self.x - pivot.x;
        let dy = self.y - pivot.y;
        Point {
            x: pivot.x + c * dx - s * dy,
            y: pivot.y + s * dx + c * dy,
        }
    }

    /// True iff the point lies strictly inside the open disk `C(center, r)`.
    #[inline]
    pub fn in_open_disk(&self, center: Point, r: f64) -> bool {
        self.dist_sq(center) < r * r
    }
}

impl Vec2 {
    #[inline]
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    #[inline]
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    #[inline]
    pub fn norm_sq(&self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    #[inline]
    pub fn dot(&self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (z-component); sign gives orientation.
    #[inline]
    pub fn cross(&self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Unit vector in the same direction. Returns `None` for (near-)zero
    /// vectors rather than producing NaNs.
    pub fn normalized(&self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(Vec2 {
                x: self.x / n,
                y: self.y / n,
            })
        }
    }

    /// Angle of this vector in `[0, 2π)`.
    #[inline]
    pub fn angle(&self) -> f64 {
        crate::angle::normalize_angle(self.y.atan2(self.x))
    }

    /// Unit vector at the given angle.
    #[inline]
    pub fn from_angle(angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 { x: c, y: s }
    }
}

/// Orientation of the ordered triple `(a, b, c)`.
///
/// Positive ⇒ counterclockwise, negative ⇒ clockwise, ~0 ⇒ collinear.
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// The (unsigned, interior) angle `∠abc` at vertex `b`, in `[0, π]`.
pub fn interior_angle(a: Point, b: Point, c: Point) -> f64 {
    let u = b.to(a);
    let v = b.to(c);
    let denom = u.norm() * v.norm();
    if denom < 1e-300 {
        return 0.0;
    }
    (u.dot(v) / denom).clamp(-1.0, 1.0).acos()
}

impl Add<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn add(self, v: Vec2) -> Point {
        Point {
            x: self.x + v.x,
            y: self.y + v.y,
        }
    }
}

impl AddAssign<Vec2> for Point {
    #[inline]
    fn add_assign(&mut self, v: Vec2) {
        self.x += v.x;
        self.y += v.y;
    }
}

impl Sub<Vec2> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, v: Vec2) -> Point {
        Point {
            x: self.x - v.x,
            y: self.y - v.y,
        }
    }
}

impl Sub<Point> for Point {
    type Output = Vec2;
    #[inline]
    fn sub(self, p: Point) -> Vec2 {
        Vec2 {
            x: self.x - p.x,
            y: self.y - p.y,
        }
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2 {
            x: self.x + o.x,
            y: self.y + o.y,
        }
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2 {
            x: self.x - o.x,
            y: self.y - o.y,
        }
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, o: Vec2) {
        self.x -= o.x;
        self.y -= o.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2 {
            x: self.x * s,
            y: self.y * s,
        }
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, s: f64) -> Vec2 {
        Vec2 {
            x: self.x / s,
            y: self.y / s,
        }
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2 {
            x: -self.x,
            y: -self.y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn dist_345() {
        assert_eq!(p(0.0, 0.0).dist(p(3.0, 4.0)), 5.0);
        assert_eq!(p(0.0, 0.0).dist_sq(p(3.0, 4.0)), 25.0);
    }

    #[test]
    fn energy_cost_kappa_exact_forms() {
        let a = p(0.0, 0.0);
        let b = p(0.0, 2.0);
        assert_eq!(a.energy_cost(b, 2.0), 4.0);
        assert_eq!(a.energy_cost(b, 4.0), 16.0);
        assert!((a.energy_cost(b, 3.0) - 8.0).abs() < 1e-12);
        assert!((a.energy_cost(b, 2.5) - 2.0f64.powf(2.5)).abs() < 1e-12);
    }

    #[test]
    fn energy_cost_is_monotone_in_distance() {
        let a = p(0.0, 0.0);
        for kappa in [2.0, 3.0, 4.0] {
            let near = a.energy_cost(p(0.5, 0.0), kappa);
            let far = a.energy_cost(p(0.9, 0.0), kappa);
            assert!(near < far, "kappa={kappa}");
        }
    }

    #[test]
    fn direction_to_quadrants() {
        let o = Point::ORIGIN;
        assert!((o.direction_to(p(1.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!((o.direction_to(p(0.0, 1.0)) - FRAC_PI_2).abs() < 1e-12);
        assert!((o.direction_to(p(-1.0, 0.0)) - PI).abs() < 1e-12);
        assert!((o.direction_to(p(0.0, -1.0)) - 3.0 * FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn rotate_around_quarter_turn() {
        let q = p(1.0, 0.0).rotate_around(Point::ORIGIN, FRAC_PI_2);
        assert!((q.x - 0.0).abs() < 1e-12);
        assert!((q.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_preserves_distance_to_pivot() {
        let pivot = p(0.3, -0.7);
        let q = p(2.0, 5.0);
        for k in 0..8 {
            let r = q.rotate_around(pivot, k as f64 * 0.77);
            assert!((r.dist(pivot) - q.dist(pivot)).abs() < 1e-9);
        }
    }

    #[test]
    fn orientation_signs() {
        assert!(orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)) > 0.0);
        assert!(orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)) < 0.0);
        assert_eq!(orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)), 0.0);
    }

    #[test]
    fn interior_angle_right_triangle() {
        let ang = interior_angle(p(1.0, 0.0), Point::ORIGIN, p(0.0, 1.0));
        assert!((ang - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn interior_angle_degenerate_is_zero() {
        assert_eq!(interior_angle(p(0.0, 0.0), p(0.0, 0.0), p(1.0, 0.0)), 0.0);
    }

    #[test]
    fn midpoint_and_lerp_agree() {
        let a = p(1.0, 2.0);
        let b = p(3.0, -4.0);
        let m = a.midpoint(b);
        let l = a.lerp(b, 0.5);
        assert!((m.x - l.x).abs() < 1e-15 && (m.y - l.y).abs() < 1e-15);
    }

    #[test]
    fn vector_algebra() {
        let v = Vec2::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(Vec2::new(1.0, 0.0)), 3.0);
        assert_eq!(v.cross(Vec2::new(1.0, 0.0)), -4.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-12);
        assert!(Vec2::new(0.0, 0.0).normalized().is_none());
    }

    #[test]
    fn from_angle_roundtrip() {
        for k in 0..16 {
            let a = k as f64 * (TAU_LOCAL / 16.0);
            let v = Vec2::from_angle(a);
            assert!(
                (crate::angle::normalize_angle(v.angle() - a)).abs() < 1e-9
                    || (crate::angle::normalize_angle(v.angle() - a) - TAU_LOCAL).abs() < 1e-9
            );
        }
    }

    const TAU_LOCAL: f64 = 2.0 * PI;

    #[test]
    fn open_disk_membership() {
        let c = p(0.0, 0.0);
        assert!(p(0.5, 0.0).in_open_disk(c, 1.0));
        assert!(!p(1.0, 0.0).in_open_disk(c, 1.0)); // boundary excluded
        assert!(!p(1.1, 0.0).in_open_disk(c, 1.0));
    }

    #[test]
    fn point_vector_ops() {
        let a = p(1.0, 1.0);
        let v = Vec2::new(2.0, -1.0);
        assert_eq!(a + v, p(3.0, 0.0));
        assert_eq!(a - v, p(-1.0, 2.0));
        assert_eq!((p(3.0, 0.0) - a), v);
        let mut b = a;
        b += v;
        assert_eq!(b, p(3.0, 0.0));
    }
}
