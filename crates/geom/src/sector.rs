//! Sector (cone) partition used by ΘALG.
//!
//! Each node `u` divides the `360°` space around itself into `k = ⌈2π/θ⌉`
//! sectors of equal angle (the paper takes `2π/θ` integral; we round the
//! count up and use the exact per-sector width `2π/k ≤ θ` so the degree and
//! stretch guarantees are preserved). `S(u, v)` — "the sector of `u`
//! containing `v`" — is [`SectorPartition::sector_of`].
//!
//! Sectors are anchored at a *global* orientation (angle 0 = +x axis) for
//! every node, matching the standard Yao-graph construction; the analysis
//! does not depend on the anchor.

use crate::angle::{normalize_angle, TAU};
use crate::point::Point;
use serde::{Deserialize, Serialize};

/// A partition of the directions around a node into `count` equal cones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorPartition {
    /// Number of sectors `k`.
    count: u32,
    /// Exact width of each sector, `2π / k`.
    width: f64,
}

impl SectorPartition {
    /// Partition with sectors of angle at most `theta`.
    ///
    /// # Panics
    /// Panics if `theta` is not in `(0, 2π]`.
    pub fn with_max_angle(theta: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= TAU,
            "sector angle must be in (0, 2π], got {theta}"
        );
        let count = (TAU / theta).ceil() as u32;
        SectorPartition {
            count,
            width: TAU / count as f64,
        }
    }

    /// Partition into exactly `count` sectors.
    ///
    /// # Panics
    /// Panics if `count == 0`.
    pub fn with_count(count: u32) -> Self {
        assert!(count > 0, "sector count must be positive");
        SectorPartition {
            count,
            width: TAU / count as f64,
        }
    }

    /// Number of sectors `k`.
    #[inline]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Exact angular width of each sector (`≤` the requested θ).
    #[inline]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Index of the sector containing direction `angle` (radians).
    #[inline]
    pub fn sector_of_angle(&self, angle: f64) -> u32 {
        let a = normalize_angle(angle);
        let idx = (a / self.width) as u32;
        // Guard the a == TAU-ε rounding edge.
        idx.min(self.count - 1)
    }

    /// `S(u, v)`: index of `u`'s sector containing node `v`.
    ///
    /// `u` and `v` must be distinct points; coincident points get sector 0.
    #[inline]
    pub fn sector_of(&self, u: Point, v: Point) -> u32 {
        self.sector_of_angle(u.direction_to(v))
    }

    /// Lower boundary angle of sector `i`.
    #[inline]
    pub fn sector_start(&self, i: u32) -> f64 {
        debug_assert!(i < self.count);
        i as f64 * self.width
    }

    /// Bisector (central) angle of sector `i`.
    #[inline]
    pub fn sector_mid(&self, i: u32) -> f64 {
        self.sector_start(i) + 0.5 * self.width
    }

    /// Angular difference between two directions measured as the number of
    /// whole sectors separating them (used in the Case-2 analysis walk of
    /// Theorem 2.2's proof).
    pub fn sectors_between(&self, a: f64, b: f64) -> u32 {
        let d = crate::angle::angle_between(a, b);
        (d / self.width).floor() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_3, PI};

    #[test]
    fn with_max_angle_rounds_count_up() {
        let p = SectorPartition::with_max_angle(FRAC_PI_3);
        assert_eq!(p.count(), 6);
        assert!((p.width() - FRAC_PI_3).abs() < 1e-15);

        // θ slightly below π/3 forces 7 sectors with width < θ.
        let p2 = SectorPartition::with_max_angle(FRAC_PI_3 - 1e-6);
        assert_eq!(p2.count(), 7);
        assert!(p2.width() <= FRAC_PI_3 - 1e-6 + 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_angle_panics() {
        SectorPartition::with_max_angle(0.0);
    }

    #[test]
    #[should_panic]
    fn zero_count_panics() {
        SectorPartition::with_count(0);
    }

    #[test]
    fn sector_of_angle_covers_circle() {
        let p = SectorPartition::with_count(9);
        let mut seen = [false; 9];
        for k in 0..9000 {
            let a = k as f64 * (TAU / 9000.0);
            let s = p.sector_of_angle(a);
            assert!(s < 9);
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn sector_boundaries_half_open() {
        let p = SectorPartition::with_count(6);
        assert_eq!(p.sector_of_angle(0.0), 0);
        assert_eq!(p.sector_of_angle(FRAC_PI_3 - 1e-12), 0);
        assert_eq!(p.sector_of_angle(FRAC_PI_3 + 1e-12), 1);
        // 2π maps back to sector 0
        assert_eq!(p.sector_of_angle(TAU), 0);
        // just below 2π is the last sector
        assert_eq!(p.sector_of_angle(TAU - 1e-9), 5);
    }

    #[test]
    fn sector_of_points() {
        let p = SectorPartition::with_count(4);
        let u = Point::ORIGIN;
        assert_eq!(p.sector_of(u, Point::new(1.0, 0.5)), 0);
        assert_eq!(p.sector_of(u, Point::new(-0.5, 1.0)), 1);
        assert_eq!(p.sector_of(u, Point::new(-1.0, -0.5)), 2);
        assert_eq!(p.sector_of(u, Point::new(0.5, -1.0)), 3);
    }

    #[test]
    fn sector_start_and_mid() {
        let p = SectorPartition::with_count(4);
        assert_eq!(p.sector_start(0), 0.0);
        assert!((p.sector_start(2) - PI).abs() < 1e-15);
        assert!((p.sector_mid(0) - PI / 4.0).abs() < 1e-15);
    }

    #[test]
    fn sectors_between_counts_whole_sectors() {
        let p = SectorPartition::with_count(12); // width = 30°
        assert_eq!(p.sectors_between(0.0, 0.1), 0);
        assert_eq!(p.sectors_between(0.0, PI / 6.0 + 0.01), 1);
        assert_eq!(p.sectors_between(0.0, PI), 6);
    }

    #[test]
    fn coincident_points_sector_zero() {
        let p = SectorPartition::with_count(8);
        let u = Point::new(0.3, 0.3);
        // direction_to of coincident points is atan2(0,0)=0 → sector 0.
        assert_eq!(p.sector_of(u, u), 0);
    }
}
