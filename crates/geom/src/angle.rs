//! Angle arithmetic on the circle `[0, 2π)`.
//!
//! ΘALG partitions the plane around each node into sectors of a fixed angle
//! `θ`; all of that arithmetic bottoms out in the helpers here.

/// `2π`.
pub const TAU: f64 = std::f64::consts::TAU;

/// Normalize an angle into `[0, 2π)`.
#[inline]
pub fn normalize_angle(a: f64) -> f64 {
    let mut r = a % TAU;
    if r < 0.0 {
        r += TAU;
    }
    // `-1e-18 % TAU` can round to TAU itself; clamp back into range.
    if r >= TAU {
        r -= TAU;
    }
    r
}

/// Smallest absolute angular difference between two angles, in `[0, π]`.
#[inline]
pub fn angle_between(a: f64, b: f64) -> f64 {
    let d = normalize_angle(a - b);
    d.min(TAU - d)
}

/// Counterclockwise angular distance from `from` to `to`, in `[0, 2π)`.
#[inline]
pub fn ccw_distance(from: f64, to: f64) -> f64 {
    normalize_angle(to - from)
}

/// True iff angle `a` lies in the counterclockwise interval `[lo, lo + width)`.
#[inline]
pub fn in_ccw_interval(a: f64, lo: f64, width: f64) -> bool {
    ccw_distance(lo, a) < width
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn normalize_basics() {
        assert_eq!(normalize_angle(0.0), 0.0);
        assert!((normalize_angle(TAU) - 0.0).abs() < 1e-15);
        assert!((normalize_angle(-PI / 2.0) - 1.5 * PI).abs() < 1e-12);
        assert!((normalize_angle(5.0 * TAU + 1.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn normalize_never_returns_tau() {
        for a in [-1e-18, -1e-12, TAU - 1e-18, -TAU, 7.0 * TAU] {
            let r = normalize_angle(a);
            assert!((0.0..TAU).contains(&r), "a={a} -> {r}");
        }
    }

    #[test]
    fn angle_between_symmetry_and_range() {
        for (a, b) in [(0.0, PI), (0.1, TAU - 0.1), (3.0, 3.0), (1.0, 2.5)] {
            let d1 = angle_between(a, b);
            let d2 = angle_between(b, a);
            assert!((d1 - d2).abs() < 1e-12);
            assert!((0.0..=PI).contains(&d1));
        }
        assert!((angle_between(0.1, TAU - 0.1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ccw_distance_wraps() {
        assert!((ccw_distance(1.5 * PI, 0.5 * PI) - PI).abs() < 1e-12);
        assert!((ccw_distance(0.1, TAU - 0.1) - (TAU - 0.2)).abs() < 1e-12);
    }

    #[test]
    fn interval_membership() {
        assert!(in_ccw_interval(0.1, 0.0, 0.2));
        assert!(!in_ccw_interval(0.3, 0.0, 0.2));
        // interval straddling 0
        assert!(in_ccw_interval(0.05, TAU - 0.1, 0.2));
        assert!(in_ccw_interval(TAU - 0.05, TAU - 0.1, 0.2));
        // half-open: lower bound in, upper bound out
        assert!(in_ccw_interval(0.0, 0.0, 0.2));
        assert!(!in_ccw_interval(0.2, 0.0, 0.2));
    }
}
