//! Honeycomb (hexagonal) tiling of the plane — paper Figure 5.
//!
//! The fixed-transmission-strength algorithm of §3.4 partitions the plane
//! into hexagons of **side length `3 + 2Δ`** (hence corner-to-corner
//! diameter `2(3 + 2Δ)`). Each sender–receiver pair `(s, t)` is assigned to
//! the hexagon containing `s`; within each hexagon only the max-benefit
//! pair may contest the channel, which is how the honeycomb algorithm
//! bounds interference (Lemmas 3.6 and 3.7).
//!
//! We use pointy-top hexagons in axial coordinates with the standard
//! cube-rounding point assignment, which makes the tiling an exact
//! partition (every point maps to exactly one hexagon).

use crate::point::Point;
use serde::{Deserialize, Serialize};

/// Axial coordinate of a hexagon in the tiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HexCoord {
    pub q: i32,
    pub r: i32,
}

impl HexCoord {
    pub const fn new(q: i32, r: i32) -> Self {
        HexCoord { q, r }
    }

    /// The six axial neighbor offsets.
    pub const DIRECTIONS: [HexCoord; 6] = [
        HexCoord::new(1, 0),
        HexCoord::new(1, -1),
        HexCoord::new(0, -1),
        HexCoord::new(-1, 0),
        HexCoord::new(-1, 1),
        HexCoord::new(0, 1),
    ];

    /// The six adjacent hexagons.
    pub fn neighbors(&self) -> [HexCoord; 6] {
        let mut out = [*self; 6];
        for (o, d) in out.iter_mut().zip(Self::DIRECTIONS.iter()) {
            o.q += d.q;
            o.r += d.r;
        }
        out
    }

    /// Hex-grid (cube) distance between two cells.
    pub fn hex_distance(&self, other: HexCoord) -> u32 {
        let dq = (self.q - other.q) as i64;
        let dr = (self.r - other.r) as i64;
        let ds = -(dq + dr);
        (dq.abs().max(dr.abs()).max(ds.abs())) as u32
    }
}

/// The honeycomb tiling with a given hexagon side length.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HexGrid {
    /// Hexagon side length (= circumradius). The paper uses `3 + 2Δ`.
    side: f64,
}

impl HexGrid {
    /// Tiling with hexagons of the given side length.
    ///
    /// # Panics
    /// Panics unless `side` is positive and finite.
    pub fn new(side: f64) -> Self {
        assert!(
            side.is_finite() && side > 0.0,
            "hexagon side must be positive, got {side}"
        );
        HexGrid { side }
    }

    /// The tiling prescribed by the paper for guard-zone parameter `Δ`:
    /// hexagons of side `3 + 2Δ`.
    pub fn for_guard_zone(delta: f64) -> Self {
        assert!(delta >= 0.0, "guard zone Δ must be non-negative");
        HexGrid::new(3.0 + 2.0 * delta)
    }

    /// Hexagon side length.
    #[inline]
    pub fn side(&self) -> f64 {
        self.side
    }

    /// Corner-to-corner diameter `2 · side`.
    #[inline]
    pub fn diameter(&self) -> f64 {
        2.0 * self.side
    }

    /// The hexagon containing point `p`. Exact partition: boundary points
    /// are assigned deterministically via cube rounding.
    pub fn hex_of(&self, p: Point) -> HexCoord {
        let s = self.side;
        let qf = (3f64.sqrt() / 3.0 * p.x - 1.0 / 3.0 * p.y) / s;
        let rf = (2.0 / 3.0 * p.y) / s;
        cube_round(qf, rf)
    }

    /// Center point of hexagon `h`.
    pub fn center(&self, h: HexCoord) -> Point {
        let s = self.side;
        Point::new(
            s * (3f64.sqrt() * h.q as f64 + 3f64.sqrt() / 2.0 * h.r as f64),
            s * (1.5 * h.r as f64),
        )
    }

    /// Minimum possible Euclidean distance between a point in hexagon `a`
    /// and a point in hexagon `b` is positive whenever the cells are not
    /// adjacent; this helper gives the center distance, used for the
    /// independence argument of Lemma 3.7.
    pub fn center_distance(&self, a: HexCoord, b: HexCoord) -> f64 {
        self.center(a).dist(self.center(b))
    }
}

/// Standard cube rounding of fractional axial coordinates.
fn cube_round(qf: f64, rf: f64) -> HexCoord {
    let sf = -qf - rf;
    let mut q = qf.round();
    let mut r = rf.round();
    let s = sf.round();
    let dq = (q - qf).abs();
    let dr = (r - rf).abs();
    let ds = (s - sf).abs();
    if dq > dr && dq > ds {
        q = -r - s;
    } else if dr > ds {
        r = -q - s;
    }
    HexCoord::new(q as i32, r as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_dimensions() {
        let g = HexGrid::for_guard_zone(0.5);
        assert_eq!(g.side(), 4.0);
        assert_eq!(g.diameter(), 8.0);
    }

    #[test]
    #[should_panic]
    fn nonpositive_side_panics() {
        HexGrid::new(-1.0);
    }

    #[test]
    fn center_roundtrip() {
        let g = HexGrid::new(2.5);
        for q in -5..=5 {
            for r in -5..=5 {
                let h = HexCoord::new(q, r);
                assert_eq!(g.hex_of(g.center(h)), h, "roundtrip failed for {h:?}");
            }
        }
    }

    #[test]
    fn every_point_has_exactly_one_hex() {
        // Partition property: assignment is a total function (trivially) and
        // points near the center of a cell map to that cell.
        let g = HexGrid::new(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..500 {
            let h = HexCoord::new(rng.gen_range(-10..10), rng.gen_range(-10..10));
            let c = g.center(h);
            // Random point well inside the hexagon (inradius = √3/2 · side).
            let inr = 0.8 * 3f64.sqrt() / 2.0;
            let ang: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let rad: f64 = rng.gen_range(0.0..inr);
            let p = Point::new(c.x + rad * ang.cos(), c.y + rad * ang.sin());
            assert_eq!(g.hex_of(p), h);
        }
    }

    #[test]
    fn points_in_same_cell_are_close() {
        // Any two points assigned to the same hexagon are within the
        // corner-to-corner diameter of each other.
        let g = HexGrid::new(3.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let pts: Vec<Point> = (0..400)
            .map(|_| Point::new(rng.gen_range(-20.0..20.0), rng.gen_range(-20.0..20.0)))
            .collect();
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                if g.hex_of(pts[i]) == g.hex_of(pts[j]) {
                    assert!(pts[i].dist(pts[j]) <= g.diameter() + 1e-9);
                }
            }
        }
    }

    #[test]
    fn distinct_nonadjacent_cells_are_far() {
        // Centers of cells at hex distance ≥ 2 are ≥ 3·side apart
        // (two inradius-steps = 2·(√3·side) ≥ 3·side); this is what makes
        // per-hexagon winners at distance ≥ 2 automatically independent.
        let g = HexGrid::new(1.0);
        for q in -3..=3i32 {
            for r in -3..=3i32 {
                let h = HexCoord::new(q, r);
                let d = h.hex_distance(HexCoord::new(0, 0));
                if d >= 2 {
                    assert!(
                        g.center_distance(h, HexCoord::new(0, 0)) >= 3.0 - 1e-9,
                        "cell {h:?} at hex distance {d} too close"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbors_are_at_hex_distance_one() {
        let h = HexCoord::new(2, -1);
        for nb in h.neighbors() {
            assert_eq!(h.hex_distance(nb), 1);
        }
        assert_eq!(h.hex_distance(h), 0);
    }

    #[test]
    fn hex_distance_symmetric_and_triangle() {
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        for _ in 0..200 {
            let a = HexCoord::new(rng.gen_range(-20..20), rng.gen_range(-20..20));
            let b = HexCoord::new(rng.gen_range(-20..20), rng.gen_range(-20..20));
            let c = HexCoord::new(rng.gen_range(-20..20), rng.gen_range(-20..20));
            assert_eq!(a.hex_distance(b), b.hex_distance(a));
            assert!(a.hex_distance(c) <= a.hex_distance(b) + b.hex_distance(c));
        }
    }

    #[test]
    fn neighbor_centers_at_sqrt3_side() {
        let g = HexGrid::new(2.0);
        let h = HexCoord::new(0, 0);
        for nb in h.neighbors() {
            let d = g.center_distance(h, nb);
            assert!((d - 3f64.sqrt() * 2.0).abs() < 1e-9);
        }
    }
}
