//! Property-based tests for the geometry substrate, including the numeric
//! verification of the paper's Lemmas 2.3–2.6 (experiment E10).

use adhoc_geom::angle::{angle_between, normalize_angle, TAU};
use adhoc_geom::lemmas::*;
use adhoc_geom::point::{interior_angle, Point};
use adhoc_geom::{GridIndex, HexGrid, SectorPartition};
use proptest::prelude::*;

fn arb_point(range: f64) -> impl Strategy<Value = Point> {
    (-range..range, -range..range).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    #[test]
    fn normalize_angle_in_range(a in -100.0f64..100.0) {
        let r = normalize_angle(a);
        prop_assert!((0.0..TAU).contains(&r));
        // normalizing twice is idempotent
        prop_assert!((normalize_angle(r) - r).abs() < 1e-12);
    }

    #[test]
    fn angle_between_triangle_inequality(a in 0.0f64..TAU, b in 0.0f64..TAU, c in 0.0f64..TAU) {
        prop_assert!(angle_between(a, c) <= angle_between(a, b) + angle_between(b, c) + 1e-9);
    }

    #[test]
    fn distance_symmetric_nonnegative(p in arb_point(10.0), q in arb_point(10.0)) {
        prop_assert!((p.dist(q) - q.dist(p)).abs() < 1e-12);
        prop_assert!(p.dist(q) >= 0.0);
    }

    #[test]
    fn distance_triangle_inequality(
        p in arb_point(10.0), q in arb_point(10.0), r in arb_point(10.0)
    ) {
        prop_assert!(p.dist(r) <= p.dist(q) + q.dist(r) + 1e-9);
    }

    #[test]
    fn energy_cost_superadditive_on_segment(
        p in arb_point(5.0), q in arb_point(5.0), t in 0.01f64..0.99,
        kappa in 2.0f64..4.0
    ) {
        // Relaying through a midpoint never costs more than the direct
        // transmission: |uv|^κ ≥ |uw|^κ + |wv|^κ for w on the segment.
        // This is the reason multi-hop saves energy (paper §2.2).
        let w = p.lerp(q, t);
        let direct = p.energy_cost(q, kappa);
        let relayed = p.energy_cost(w, kappa) + w.energy_cost(q, kappa);
        prop_assert!(relayed <= direct * (1.0 + 1e-9) + 1e-12);
    }

    #[test]
    fn sector_of_is_total_and_bounded(
        count in 1u32..64,
        u in arb_point(10.0),
        v in arb_point(10.0)
    ) {
        let part = SectorPartition::with_count(count);
        prop_assert!(part.sector_of(u, v) < count);
    }

    #[test]
    fn sector_width_times_count_is_tau(theta in 0.01f64..TAU) {
        let part = SectorPartition::with_max_angle(theta);
        prop_assert!((part.width() * part.count() as f64 - TAU).abs() < 1e-9);
        prop_assert!(part.width() <= theta + 1e-12);
    }

    #[test]
    fn hex_assignment_roundtrip(side in 0.1f64..10.0, q in -50i32..50, r in -50i32..50) {
        let grid = HexGrid::new(side);
        let h = adhoc_geom::HexCoord::new(q, r);
        prop_assert_eq!(grid.hex_of(grid.center(h)), h);
    }

    #[test]
    fn hex_same_cell_within_diameter(
        side in 0.5f64..5.0,
        p in arb_point(20.0),
        q in arb_point(20.0)
    ) {
        let grid = HexGrid::new(side);
        if grid.hex_of(p) == grid.hex_of(q) {
            prop_assert!(p.dist(q) <= grid.diameter() + 1e-9);
        }
    }

    // ---- E10: the paper's geometric lemmas hold numerically ----

    #[test]
    fn paper_lemma_2_3(
        gamma in 0.001f64..(std::f64::consts::FRAC_PI_3 - 0.001),
        la in 0.1f64..10.0,
        scale in 1.0f64..10.0,
        slack in 1.0f64..5.0
    ) {
        // Construct a triangle with apex angle exactly gamma at C and
        // |AC| = la ≤ |BC| = la * scale.
        let c_pt = Point::new(0.0, 0.0);
        let a = Point::new(la, 0.0);
        let lb = la * scale;
        let b = Point::new(lb * gamma.cos(), lb * gamma.sin());
        let cc = lemma_2_3_c_min(gamma) * slack;
        if let Some(chk) = lemma_2_3(a, b, c_pt, cc) {
            prop_assert!(chk.holds(), "lhs={} rhs={} gamma={}", chk.lhs, chk.rhs, gamma);
        }
    }

    #[test]
    fn paper_lemma_2_4(
        alpha in 0.001f64..(std::f64::consts::FRAC_PI_6 - 0.001),
        ab in 0.5f64..10.0,
        frac in 0.01f64..1.0
    ) {
        // A at origin, B on x-axis at distance ab, C at angle alpha with
        // |AC| = frac·|AB| ≤ |AB|; only test when |BC| ≤ |AC| holds.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(ab, 0.0);
        let ac = ab * frac;
        let c = Point::new(ac * alpha.cos(), ac * alpha.sin());
        if let Some(chk) = lemma_2_4(a, b, c) {
            prop_assert!(chk.holds(), "lhs={} rhs={}", chk.lhs, chk.rhs);
        }
    }

    #[test]
    fn paper_lemma_2_5(
        theta in 0.05f64..std::f64::consts::FRAC_PI_3,
        steps in 2usize..12,
        shrink in 0.5f64..1.0,
        gapfrac in 0.0f64..1.0
    ) {
        // Chain with radii shrinking geometrically and angular steps of
        // gapfrac·θ each.
        let a = Point::new(0.0, 0.0);
        let chain: Vec<Point> = (0..steps)
            .map(|i| {
                let r = shrink.powi(i as i32);
                let ang = i as f64 * gapfrac * theta;
                Point::new(r * ang.cos(), r * ang.sin())
            })
            .collect();
        if let Some(chk) = lemma_2_5(a, &chain, theta) {
            prop_assert!(chk.holds(), "lhs={} rhs={}", chk.lhs, chk.rhs);
        }
    }

    #[test]
    fn paper_lemma_2_6(
        ang in 0.001f64..(std::f64::consts::PI / 12.0 - 0.001),
        ab in 1.0f64..5.0,
        cfrac in 0.9f64..1.0
    ) {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(ab, 0.0);
        let ac = ab * cfrac;
        let c = Point::new(ac * ang.cos(), ac * ang.sin());
        if let Some(chk) = lemma_2_6(a, b, c) {
            prop_assert!(chk.holds(), "lhs={} rhs={} ang={}", chk.lhs, chk.rhs, ang);
        }
    }

    #[test]
    fn interior_angle_in_range(
        a in arb_point(5.0), b in arb_point(5.0), c in arb_point(5.0)
    ) {
        let ang = interior_angle(a, b, c);
        prop_assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&ang));
    }

    #[test]
    fn grid_index_within_complete(
        pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..80),
        qx in 0.0f64..1.0, qy in 0.0f64..1.0, r in 0.01f64..0.5
    ) {
        let points: Vec<Point> = pts.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let g = GridIndex::build(&points, 0.1);
        let q = Point::new(qx, qy);
        let mut got = g.within(q, r);
        got.sort_unstable();
        let mut want: Vec<u32> = (0..points.len() as u32)
            .filter(|&i| points[i as usize].dist(q) <= r)
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
