//! The runtime driver: owns the nodes, the event queue, the fault model,
//! and per-link RNG streams — so every run is bit-for-bit replayable from
//! `(nodes, positions, faults, seed)` on any execution layout.
//!
//! # Determinism under sharding
//!
//! Three mechanisms make the sequential executor and the sharded executor
//! ([`Runtime::run_sharded`]) produce identical replay digests:
//!
//! 1. **Per-directed-link RNG streams.** Every link `u → v` owns a
//!    `ChaCha8Rng` seeded from `splitmix64(seed, u, v)`; a transmission's
//!    fate (drop/delay/duplicate) depends only on the sender's
//!    deterministic emission order on that link, never on global
//!    scheduling history or thread interleaving.
//! 2. **Canonical event order.** Events tie-break by [`EventKey`]
//!    `(node, class, src, link/arm seq)` instead of global insertion
//!    order, so per-node event streams are layout-invariant (see
//!    [`crate::event`]).
//! 3. **Windowed digest folds.** Event records accumulate in per-node
//!    sub-digests and fold into the global digest in node-id order at
//!    each lookahead-window boundary ([`crate::stats::WindowNotes`]).

use crate::event::{EventKey, EventKind, EventQueue};
use crate::fault::{FaultConfig, TransmitOutcome};
use crate::node::{Actor, Ctx, Message};
use crate::stats::{NetStats, Transcript, WindowNotes};
use adhoc_geom::{GridIndex, Point};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation used to
/// derive independent per-link seeds from `(run seed, from, to)`.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Key of the directed link `from → to` in the link-state map.
pub(crate) fn link_key(from: u32, to: u32) -> u64 {
    ((from as u64) << 32) | to as u64
}

/// Per-directed-link transmission state: the link's private RNG stream
/// and its copy counter (feeds [`EventKey::deliver`] sequence numbers;
/// fault-layer duplicates take consecutive values).
#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    pub(crate) rng: ChaCha8Rng,
    pub(crate) copies: u64,
}

impl LinkState {
    pub(crate) fn new(seed: u64, from: u32, to: u32) -> Self {
        LinkState {
            rng: ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(link_key(from, to)))),
            copies: 0,
        }
    }
}

/// Thread count requested via the `ADHOC_SHARD_THREADS` environment
/// variable (default 1 = sequential).
pub fn shard_threads_from_env() -> usize {
    std::env::var("ADHOC_SHARD_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t: &usize| t >= 1)
        .unwrap_or(1)
}

/// Deterministic discrete-event runtime over a set of node actors placed
/// in the plane. Radio broadcasts reach every node within `range`
/// (the paper's `G*` neighborhood); each link-level copy independently
/// passes through the [`FaultConfig`] on its own RNG stream.
#[derive(Debug)]
pub struct Runtime<A: Actor> {
    pub(crate) nodes: Vec<A>,
    /// Radio neighbors (indices within `range`), per node.
    pub(crate) neighbors: Vec<Vec<u32>>,
    /// Node positions (kept for spatial shard partitioning).
    pub(crate) positions: Vec<Point>,
    /// Radio range (spatial shard cell side).
    pub(crate) range: f64,
    pub(crate) queue: EventQueue<A::Msg>,
    pub(crate) faults: FaultConfig,
    pub(crate) seed: u64,
    /// Per-directed-link RNG streams and copy counters, created lazily.
    pub(crate) links: HashMap<u64, LinkState>,
    /// Per-node timer arm counters (feed [`EventKey::timer`] seqs).
    pub(crate) arm_seq: Vec<u64>,
    pub(crate) now: u64,
    /// Index of the lookahead window currently being processed.
    cur_window: u64,
    pub(crate) stats: NetStats,
    pub(crate) trace: Transcript,
    /// Per-node sub-digests for the current window.
    pub(crate) notes: WindowNotes,
    /// Reused effect buffer: one `Ctx` serves every callback so the
    /// per-event hot path performs no allocations (the vectors keep their
    /// capacity across events).
    scratch: Ctx<A::Msg>,
}

impl<A: Actor> Runtime<A> {
    /// Build a runtime over `nodes` at the given positions; node `i` sits
    /// at `positions[i]` and its broadcasts reach every node within
    /// `range`.
    pub fn new(
        nodes: Vec<A>,
        positions: &[Point],
        range: f64,
        faults: FaultConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(nodes.len(), positions.len(), "one position per node");
        assert!(range.is_finite() && range > 0.0, "range must be positive");
        faults.validate();
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        if n > 0 {
            let grid = GridIndex::build(positions, range);
            for u in 0..n as u32 {
                grid.for_each_within(positions[u as usize], range, |v| {
                    if v != u {
                        neighbors[u as usize].push(v);
                    }
                });
                // for_each_within order is grid-cell dependent; sort for a
                // stable broadcast fan-out order.
                neighbors[u as usize].sort_unstable();
            }
        }
        Runtime {
            nodes,
            neighbors,
            positions: positions.to_vec(),
            range,
            queue: EventQueue::new(),
            faults,
            seed,
            links: HashMap::new(),
            arm_seq: vec![0; n],
            now: 0,
            cur_window: 0,
            stats: NetStats::default(),
            trace: Transcript::new(false),
            notes: WindowNotes::new(n, false),
            scratch: Ctx::default(),
        }
    }

    /// Keep the full human-readable event log (off by default; the digest
    /// is always maintained). Entries appear grouped by node within each
    /// lookahead window — the canonical fold order.
    pub fn record_trace(&mut self, record: bool) {
        self.trace = Transcript::new(record);
        self.notes = WindowNotes::new(self.nodes.len(), record);
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The replay transcript.
    pub fn transcript(&self) -> &Transcript {
        &self.trace
    }

    /// Immutable view of a node's actor state.
    pub fn node(&self, id: u32) -> &A {
        &self.nodes[id as usize]
    }

    /// All node actors, in id order.
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// The radio neighbors of `id` (sorted).
    pub fn radio_neighbors(&self, id: u32) -> &[u32] {
        &self.neighbors[id as usize]
    }

    /// The conservative lookahead: no transmission can arrive sooner than
    /// this many ticks after it was sent, so shards advanced in windows
    /// of this width only exchange messages at window boundaries.
    pub(crate) fn lookahead(&self) -> u64 {
        self.faults.min_delay()
    }

    /// End the current digest window: sample the pending-event count and
    /// fold per-node sub-digests into the transcript in node-id order.
    fn fold_window(&mut self) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.notes.fold_into(&mut self.trace);
    }

    /// Deliver `on_start` to every node (in id order) at time 0, then
    /// fold any records it produced (drops of time-0 sends) as a
    /// pseudo-window of their own.
    pub fn start(&mut self) {
        for id in 0..self.nodes.len() as u32 {
            let mut ctx = std::mem::take(&mut self.scratch);
            ctx.reset(id, self.now);
            self.nodes[id as usize].on_start(&mut ctx);
            self.flush(&mut ctx);
            self.scratch = ctx;
        }
        self.fold_window();
    }

    /// Process events until the queue is empty or `max_events` have been
    /// handled; returns true iff the run went quiescent. Protocols are
    /// responsible for termination (bounded timer schedules); the cap is a
    /// backstop against runaway retransmit loops.
    ///
    /// Capped runs stay on the sequential executor and fold whatever
    /// partial window is open when the cap strikes, so a capped digest
    /// only matches another identically-capped run.
    pub fn run_with_limit(&mut self, max_events: u64) -> bool {
        let lookahead = self.lookahead();
        for _ in 0..max_events {
            let Some(t) = self.queue.peek_time() else {
                self.fold_window();
                return true;
            };
            let window = t / lookahead;
            if window > self.cur_window {
                self.fold_window();
                self.cur_window = window;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.now, "time must be monotone");
            self.now = ev.time;
            let node = ev.key.node;
            match ev.kind {
                EventKind::Deliver { msg } => {
                    let from = ev.key.src;
                    self.stats.delivered += 1;
                    self.stats.kind(msg.kind()).delivered += 1;
                    self.notes.note(
                        node,
                        format_args!("D t={} {}->{} {:?}", self.now, from, node, msg),
                    );
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, self.now);
                    self.nodes[node as usize].on_message(&mut ctx, from, msg);
                    self.flush(&mut ctx);
                    self.scratch = ctx;
                }
                EventKind::Timer { timer } => {
                    self.stats.timers_fired += 1;
                    self.notes.note(
                        node,
                        format_args!("T t={} n={} id={}", self.now, node, timer),
                    );
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, self.now);
                    self.nodes[node as usize].on_timer(&mut ctx, timer);
                    self.flush(&mut ctx);
                    self.scratch = ctx;
                }
            }
        }
        self.fold_window();
        self.queue.is_empty()
    }

    /// Run to quiescence on the sequential executor (see
    /// [`Self::run_with_limit`]).
    pub fn run(&mut self) -> u64 {
        self.run_with_limit(u64::MAX);
        self.now
    }

    /// Drain one callback's effect buffer, applying link faults to every
    /// outgoing copy in emission order. The buffer is drained in place so
    /// its capacity is reused by the next callback.
    fn flush(&mut self, ctx: &mut Ctx<A::Msg>) {
        let node = ctx.node;
        for (to, msg) in ctx.sends.drain(..) {
            self.transmit(node, to, msg);
        }
        for msg in ctx.broadcasts.drain(..) {
            self.stats.broadcasts += 1;
            // Clone per receiver; fan-out order is the sorted neighbor list.
            // Targets come straight from that list, so the per-unicast
            // locality check in `transmit` is skipped here.
            let nbrs = std::mem::take(&mut self.neighbors[node as usize]);
            for &to in &nbrs {
                self.transmit_link(node, to, msg.clone());
            }
            self.neighbors[node as usize] = nbrs;
        }
        for (at, timer) in ctx.timers.drain(..) {
            self.stats.timers_set += 1;
            let seq = self.arm_seq[node as usize];
            self.arm_seq[node as usize] += 1;
            self.queue
                .push(at, EventKey::timer(node, seq), EventKind::Timer { timer });
        }
    }

    /// Validate a unicast against the `G*` locality discipline, then hand
    /// it to the link layer. A nonexistent target is a programming error
    /// (panic with a clear message); an in-plane but out-of-range target
    /// is physically unreachable — the copy is discarded and counted in
    /// [`NetStats::non_neighbor_sends`].
    fn transmit(&mut self, from: u32, to: u32, msg: A::Msg) {
        let n = self.nodes.len() as u32;
        assert!(
            to < n,
            "node {from} sent {:?} to nonexistent node {to} (only {n} nodes exist)",
            msg
        );
        if from == to || self.neighbors[from as usize].binary_search(&to).is_err() {
            self.stats.non_neighbor_sends += 1;
            self.notes.note(
                from,
                format_args!("L t={} {}->{} {:?}", self.now, from, to, msg),
            );
            return;
        }
        self.transmit_link(from, to, msg);
    }

    /// Push one copy across a radio link, applying the fault model on the
    /// link's private RNG stream.
    fn transmit_link(&mut self, from: u32, to: u32, msg: A::Msg) {
        self.stats.sent += 1;
        self.stats.kind(msg.kind()).sent += 1;
        let seed = self.seed;
        let link = self
            .links
            .entry(link_key(from, to))
            .or_insert_with(|| LinkState::new(seed, from, to));
        match self.faults.transmit(&mut link.rng) {
            TransmitOutcome::Dropped => {
                self.stats.dropped += 1;
                self.stats.kind(msg.kind()).dropped += 1;
                self.notes.note(
                    from,
                    format_args!("X t={} {}->{} {:?}", self.now, from, to, msg),
                );
            }
            TransmitOutcome::Delivered(d) => {
                let seq = link.copies;
                link.copies += 1;
                self.queue.push(
                    self.now + d,
                    EventKey::deliver(from, to, seq),
                    EventKind::Deliver { msg },
                );
            }
            TransmitOutcome::Duplicated(d1, d2) => {
                self.stats.duplicated += 1;
                let seq = link.copies;
                link.copies += 2;
                self.queue.push(
                    self.now + d1,
                    EventKey::deliver(from, to, seq),
                    EventKind::Deliver { msg: msg.clone() },
                );
                self.queue.push(
                    self.now + d2,
                    EventKey::deliver(from, to, seq + 1),
                    EventKind::Deliver { msg },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;

    /// A toy flood protocol: node 0 starts a token; every node forwards
    /// the first copy it sees to all radio neighbors.
    #[derive(Debug, Clone)]
    struct Flood {
        id: u32,
        seen: bool,
    }

    #[derive(Debug, Clone)]
    struct Token;

    impl Message for Token {
        fn kind(&self) -> &'static str {
            "token"
        }
    }

    impl Actor for Flood {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                self.seen = true;
                ctx.broadcast(Token);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast(Token);
            }
        }
    }

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    fn flood(n: usize, faults: FaultConfig, seed: u64) -> Runtime<Flood> {
        let nodes = (0..n as u32).map(|id| Flood { id, seen: false }).collect();
        Runtime::new(nodes, &line(n), 1.5, faults, seed)
    }

    #[test]
    fn flood_reaches_everyone_on_ideal_links() {
        let mut rt = flood(10, FaultConfig::ideal(), 1);
        rt.start();
        rt.run();
        assert!(rt.nodes().iter().all(|f| f.seen));
        // Each node broadcasts exactly once.
        assert_eq!(rt.stats().broadcasts, 10);
        assert_eq!(rt.stats().per_kind["token"].dropped, 0);
    }

    #[test]
    fn same_seed_identical_transcripts() {
        let faults = FaultConfig {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 5 },
        };
        let run = |seed| {
            let mut rt = flood(12, faults, seed);
            rt.record_trace(true);
            rt.start();
            rt.run();
            (
                rt.transcript().digest(),
                rt.transcript().entries().unwrap().to_vec(),
            )
        };
        let (d1, t1) = run(7);
        let (d2, t2) = run(7);
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
        let (d3, _) = run(8);
        assert_ne!(d1, d3, "different seeds should diverge");
    }

    /// Link streams are independent: the fate of traffic on one link must
    /// not depend on how much traffic other links carried first.
    #[test]
    fn link_rng_streams_are_independent_of_other_links() {
        let f = FaultConfig {
            drop_prob: 0.5,
            duplicate_prob: 0.2,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let fates = |prior_traffic: u64| {
            let mut link = LinkState::new(99, 3, 4);
            let mut other = LinkState::new(99, 1, 2);
            for _ in 0..prior_traffic {
                f.transmit(&mut other.rng);
            }
            (0..50)
                .map(|_| f.transmit(&mut link.rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(0), fates(1000));
        // Directions are distinct streams.
        use rand::RngCore;
        let mut a = LinkState::new(99, 3, 4);
        let mut b = LinkState::new(99, 4, 3);
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn total_loss_stops_the_flood() {
        let mut rt = flood(5, FaultConfig::lossy(1.0), 3);
        rt.start();
        rt.run();
        assert!(rt.node(0).seen);
        assert!(!rt.nodes()[1..].iter().any(|f| f.seen));
        assert_eq!(rt.stats().delivered, 0);
        assert_eq!(rt.stats().sent, rt.stats().dropped);
    }

    #[test]
    fn run_with_limit_caps_events() {
        let mut rt = flood(30, FaultConfig::ideal(), 4);
        rt.start();
        let quiescent = rt.run_with_limit(3);
        assert!(!quiescent);
    }

    #[test]
    fn radio_neighbors_respect_range() {
        let rt = flood(4, FaultConfig::ideal(), 5);
        assert_eq!(rt.radio_neighbors(0), &[1]);
        assert_eq!(rt.radio_neighbors(1), &[0, 2]);
    }

    /// An actor that unicasts once to an arbitrary (possibly bogus)
    /// target, for exercising the locality validation in `transmit`.
    #[derive(Debug, Clone)]
    struct SendTo {
        id: u32,
        target: Option<u32>,
    }

    impl Actor for SendTo {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                if let Some(to) = self.target {
                    ctx.send(to, Token);
                }
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {}
    }

    fn send_to(n: usize, target: Option<u32>) -> Runtime<SendTo> {
        let nodes = (0..n as u32).map(|id| SendTo { id, target }).collect();
        Runtime::new(nodes, &line(n), 1.5, FaultConfig::ideal(), 9)
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn unicast_to_nonexistent_node_panics_clearly() {
        let mut rt = send_to(3, Some(99));
        rt.start();
        rt.run();
    }

    #[test]
    fn out_of_range_unicast_is_dropped_and_counted() {
        // Node 3 is 3 units from node 0 — in the plane, out of radio
        // range (1.5). The copy must never be delivered, and it must not
        // perturb the link-level sent/dropped ledger.
        let mut rt = send_to(4, Some(3));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 1);
        assert_eq!(rt.stats().sent, 0);
        assert_eq!(rt.stats().delivered, 0);
        assert_eq!(rt.stats().dropped, 0);
    }

    #[test]
    fn self_send_is_a_non_neighbor_send() {
        let mut rt = send_to(2, Some(0));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 1);
        assert_eq!(rt.stats().delivered, 0);
    }

    #[test]
    fn in_range_unicast_still_delivers() {
        let mut rt = send_to(2, Some(1));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 0);
        assert_eq!(rt.stats().delivered, 1);
    }
}
