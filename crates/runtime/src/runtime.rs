//! The runtime driver: owns the nodes, the event queue, the fault model,
//! and one seeded RNG — the single source of randomness, so every run is
//! bit-for-bit replayable from `(nodes, positions, faults, seed)`.

use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultConfig, TransmitOutcome};
use crate::node::{Actor, Ctx, Message};
use crate::stats::{NetStats, Transcript};
use adhoc_geom::{GridIndex, Point};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic discrete-event runtime over a set of node actors placed
/// in the plane. Radio broadcasts reach every node within `range`
/// (the paper's `G*` neighborhood); each link-level copy independently
/// passes through the [`FaultConfig`].
#[derive(Debug)]
pub struct Runtime<A: Actor> {
    nodes: Vec<A>,
    /// Radio neighbors (indices within `range`), per node.
    neighbors: Vec<Vec<u32>>,
    queue: EventQueue<A::Msg>,
    faults: FaultConfig,
    rng: ChaCha8Rng,
    now: u64,
    stats: NetStats,
    trace: Transcript,
    /// Reused effect buffer: one `Ctx` serves every callback so the
    /// per-event hot path performs no allocations (the vectors keep their
    /// capacity across events).
    scratch: Ctx<A::Msg>,
}

impl<A: Actor> Runtime<A> {
    /// Build a runtime over `nodes` at the given positions; node `i` sits
    /// at `positions[i]` and its broadcasts reach every node within
    /// `range`.
    pub fn new(
        nodes: Vec<A>,
        positions: &[Point],
        range: f64,
        faults: FaultConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(nodes.len(), positions.len(), "one position per node");
        assert!(range.is_finite() && range > 0.0, "range must be positive");
        faults.validate();
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        if n > 0 {
            let grid = GridIndex::build(positions, range);
            for u in 0..n as u32 {
                grid.for_each_within(positions[u as usize], range, |v| {
                    if v != u {
                        neighbors[u as usize].push(v);
                    }
                });
                // for_each_within order is grid-cell dependent; sort for a
                // stable broadcast fan-out order.
                neighbors[u as usize].sort_unstable();
            }
        }
        Runtime {
            nodes,
            neighbors,
            queue: EventQueue::new(),
            faults,
            rng: ChaCha8Rng::seed_from_u64(seed),
            now: 0,
            stats: NetStats::default(),
            trace: Transcript::new(false),
            scratch: Ctx::default(),
        }
    }

    /// Keep the full human-readable event log (off by default; the digest
    /// is always maintained).
    pub fn record_trace(&mut self, record: bool) {
        self.trace = Transcript::new(record);
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The replay transcript.
    pub fn transcript(&self) -> &Transcript {
        &self.trace
    }

    /// Immutable view of a node's actor state.
    pub fn node(&self, id: u32) -> &A {
        &self.nodes[id as usize]
    }

    /// All node actors, in id order.
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// The radio neighbors of `id` (sorted).
    pub fn radio_neighbors(&self, id: u32) -> &[u32] {
        &self.neighbors[id as usize]
    }

    /// Deliver `on_start` to every node (in id order) at time 0.
    pub fn start(&mut self) {
        for id in 0..self.nodes.len() as u32 {
            let mut ctx = std::mem::take(&mut self.scratch);
            ctx.reset(id, self.now);
            self.nodes[id as usize].on_start(&mut ctx);
            self.flush(&mut ctx);
            self.scratch = ctx;
        }
    }

    /// Process events until the queue is empty or `max_events` have been
    /// handled; returns true iff the run went quiescent. Protocols are
    /// responsible for termination (bounded timer schedules); the cap is a
    /// backstop against runaway retransmit loops.
    pub fn run_with_limit(&mut self, max_events: u64) -> bool {
        for _ in 0..max_events {
            let Some(ev) = self.queue.pop() else {
                return true;
            };
            debug_assert!(ev.time >= self.now, "time must be monotone");
            self.now = ev.time;
            match ev.kind {
                EventKind::Deliver { from, to, msg } => {
                    self.stats.delivered += 1;
                    self.stats.kind(msg.kind()).delivered += 1;
                    self.trace
                        .note(format_args!("D t={} {}->{} {:?}", self.now, from, to, msg));
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(to, self.now);
                    self.nodes[to as usize].on_message(&mut ctx, from, msg);
                    self.flush(&mut ctx);
                    self.scratch = ctx;
                }
                EventKind::Timer { node, timer } => {
                    self.stats.timers_fired += 1;
                    self.trace
                        .note(format_args!("T t={} n={} id={}", self.now, node, timer));
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, self.now);
                    self.nodes[node as usize].on_timer(&mut ctx, timer);
                    self.flush(&mut ctx);
                    self.scratch = ctx;
                }
            }
        }
        self.queue.is_empty()
    }

    /// Run to quiescence (unbounded; see [`Self::run_with_limit`]).
    pub fn run(&mut self) -> u64 {
        self.run_with_limit(u64::MAX);
        self.now
    }

    /// Drain one callback's effect buffer, applying link faults to every
    /// outgoing copy in emission order. The buffer is drained in place so
    /// its capacity is reused by the next callback.
    fn flush(&mut self, ctx: &mut Ctx<A::Msg>) {
        let node = ctx.node;
        for (to, msg) in ctx.sends.drain(..) {
            self.transmit(node, to, msg);
        }
        for msg in ctx.broadcasts.drain(..) {
            self.stats.broadcasts += 1;
            // Clone per receiver; fan-out order is the sorted neighbor list.
            // Targets come straight from that list, so the per-unicast
            // locality check in `transmit` is skipped here.
            let nbrs = std::mem::take(&mut self.neighbors[node as usize]);
            for &to in &nbrs {
                self.transmit_link(node, to, msg.clone());
            }
            self.neighbors[node as usize] = nbrs;
        }
        for (at, timer) in ctx.timers.drain(..) {
            self.stats.timers_set += 1;
            self.queue.push(at, EventKind::Timer { node, timer });
        }
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.high_water());
    }

    /// Validate a unicast against the `G*` locality discipline, then hand
    /// it to the link layer. A nonexistent target is a programming error
    /// (panic with a clear message); an in-plane but out-of-range target
    /// is physically unreachable — the copy is discarded and counted in
    /// [`NetStats::non_neighbor_sends`].
    fn transmit(&mut self, from: u32, to: u32, msg: A::Msg) {
        let n = self.nodes.len() as u32;
        assert!(
            to < n,
            "node {from} sent {:?} to nonexistent node {to} (only {n} nodes exist)",
            msg
        );
        if from == to || self.neighbors[from as usize].binary_search(&to).is_err() {
            self.stats.non_neighbor_sends += 1;
            self.trace
                .note(format_args!("L t={} {}->{} {:?}", self.now, from, to, msg));
            return;
        }
        self.transmit_link(from, to, msg);
    }

    /// Push one copy across a radio link, applying the fault model.
    fn transmit_link(&mut self, from: u32, to: u32, msg: A::Msg) {
        self.stats.sent += 1;
        self.stats.kind(msg.kind()).sent += 1;
        match self.faults.transmit(&mut self.rng) {
            TransmitOutcome::Dropped => {
                self.stats.dropped += 1;
                self.stats.kind(msg.kind()).dropped += 1;
                self.trace
                    .note(format_args!("X t={} {}->{} {:?}", self.now, from, to, msg));
            }
            TransmitOutcome::Delivered(d) => {
                self.queue
                    .push(self.now + d, EventKind::Deliver { from, to, msg });
            }
            TransmitOutcome::Duplicated(d1, d2) => {
                self.stats.duplicated += 1;
                self.queue.push(
                    self.now + d1,
                    EventKind::Deliver {
                        from,
                        to,
                        msg: msg.clone(),
                    },
                );
                self.queue
                    .push(self.now + d2, EventKind::Deliver { from, to, msg });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;

    /// A toy flood protocol: node 0 starts a token; every node forwards
    /// the first copy it sees to all radio neighbors.
    #[derive(Debug, Clone)]
    struct Flood {
        id: u32,
        seen: bool,
    }

    #[derive(Debug, Clone)]
    struct Token;

    impl Message for Token {
        fn kind(&self) -> &'static str {
            "token"
        }
    }

    impl Actor for Flood {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                self.seen = true;
                ctx.broadcast(Token);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast(Token);
            }
        }
    }

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    fn flood(n: usize, faults: FaultConfig, seed: u64) -> Runtime<Flood> {
        let nodes = (0..n as u32).map(|id| Flood { id, seen: false }).collect();
        Runtime::new(nodes, &line(n), 1.5, faults, seed)
    }

    #[test]
    fn flood_reaches_everyone_on_ideal_links() {
        let mut rt = flood(10, FaultConfig::ideal(), 1);
        rt.start();
        rt.run();
        assert!(rt.nodes().iter().all(|f| f.seen));
        // Each node broadcasts exactly once.
        assert_eq!(rt.stats().broadcasts, 10);
        assert_eq!(rt.stats().per_kind["token"].dropped, 0);
    }

    #[test]
    fn same_seed_identical_transcripts() {
        let faults = FaultConfig {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 5 },
        };
        let run = |seed| {
            let mut rt = flood(12, faults, seed);
            rt.record_trace(true);
            rt.start();
            rt.run();
            (
                rt.transcript().digest(),
                rt.transcript().entries().unwrap().to_vec(),
            )
        };
        let (d1, t1) = run(7);
        let (d2, t2) = run(7);
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
        let (d3, _) = run(8);
        assert_ne!(d1, d3, "different seeds should diverge");
    }

    #[test]
    fn total_loss_stops_the_flood() {
        let mut rt = flood(5, FaultConfig::lossy(1.0), 3);
        rt.start();
        rt.run();
        assert!(rt.node(0).seen);
        assert!(!rt.nodes()[1..].iter().any(|f| f.seen));
        assert_eq!(rt.stats().delivered, 0);
        assert_eq!(rt.stats().sent, rt.stats().dropped);
    }

    #[test]
    fn run_with_limit_caps_events() {
        let mut rt = flood(30, FaultConfig::ideal(), 4);
        rt.start();
        let quiescent = rt.run_with_limit(3);
        assert!(!quiescent);
    }

    #[test]
    fn radio_neighbors_respect_range() {
        let rt = flood(4, FaultConfig::ideal(), 5);
        assert_eq!(rt.radio_neighbors(0), &[1]);
        assert_eq!(rt.radio_neighbors(1), &[0, 2]);
    }

    /// An actor that unicasts once to an arbitrary (possibly bogus)
    /// target, for exercising the locality validation in `transmit`.
    #[derive(Debug, Clone)]
    struct SendTo {
        id: u32,
        target: Option<u32>,
    }

    impl Actor for SendTo {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                if let Some(to) = self.target {
                    ctx.send(to, Token);
                }
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {}
    }

    fn send_to(n: usize, target: Option<u32>) -> Runtime<SendTo> {
        let nodes = (0..n as u32).map(|id| SendTo { id, target }).collect();
        Runtime::new(nodes, &line(n), 1.5, FaultConfig::ideal(), 9)
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn unicast_to_nonexistent_node_panics_clearly() {
        let mut rt = send_to(3, Some(99));
        rt.start();
        rt.run();
    }

    #[test]
    fn out_of_range_unicast_is_dropped_and_counted() {
        // Node 3 is 3 units from node 0 — in the plane, out of radio
        // range (1.5). The copy must never be delivered, and it must not
        // perturb the link-level sent/dropped ledger.
        let mut rt = send_to(4, Some(3));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 1);
        assert_eq!(rt.stats().sent, 0);
        assert_eq!(rt.stats().delivered, 0);
        assert_eq!(rt.stats().dropped, 0);
    }

    #[test]
    fn self_send_is_a_non_neighbor_send() {
        let mut rt = send_to(2, Some(0));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 1);
        assert_eq!(rt.stats().delivered, 0);
    }

    #[test]
    fn in_range_unicast_still_delivers() {
        let mut rt = send_to(2, Some(1));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 0);
        assert_eq!(rt.stats().delivered, 1);
    }
}
