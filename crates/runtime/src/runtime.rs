//! The runtime driver: owns the nodes, the event queue, the fault model,
//! and per-link RNG streams — so every run is bit-for-bit replayable from
//! `(nodes, positions, faults, seed)` on any execution layout.
//!
//! # Determinism under sharding
//!
//! Three mechanisms make the sequential executor and the sharded executor
//! ([`Runtime::run_sharded`]) produce identical replay digests:
//!
//! 1. **Per-directed-link RNG streams.** Every link `u → v` owns a
//!    `ChaCha8Rng` seeded from `splitmix64(seed, u, v)`; a transmission's
//!    fate (drop/delay/duplicate) depends only on the sender's
//!    deterministic emission order on that link, never on global
//!    scheduling history or thread interleaving.
//! 2. **Canonical event order.** Events tie-break by [`EventKey`]
//!    `(node, class, src, link/arm seq)` instead of global insertion
//!    order, so per-node event streams are layout-invariant (see
//!    [`crate::event`]).
//! 3. **Windowed digest folds.** Event records accumulate in per-node
//!    sub-digests and fold into the global digest in node-id order at
//!    each lookahead-window boundary ([`crate::stats::WindowNotes`]).

use crate::churn::{plan_churn, rebuild_neighbors, ChurnDelta, ChurnKind, ChurnSchedule};
use crate::event::{EventKey, EventKind, EventQueue, Payload};
use crate::fault::{FaultConfig, TransmitOutcome};
use crate::node::{Actor, Ctx, Message};
use crate::stats::{NetStats, Transcript, WindowNotes};
use crate::{ChurnPlan, MemberState};
use adhoc_geom::{GridIndex, Point};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeSet, HashMap};

/// SplitMix64 finalizer: a cheap, well-mixed 64-bit permutation used to
/// derive independent per-link seeds from `(run seed, from, to)`.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Key of the directed link `from → to` in the link-state map.
pub(crate) fn link_key(from: u32, to: u32) -> u64 {
    ((from as u64) << 32) | to as u64
}

/// Per-directed-link transmission state: the link's private RNG stream
/// and its copy counter (feeds [`EventKey::deliver`] sequence numbers;
/// fault-layer duplicates take consecutive values).
#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    pub(crate) rng: ChaCha8Rng,
    pub(crate) copies: u64,
}

impl LinkState {
    pub(crate) fn new(seed: u64, from: u32, to: u32) -> Self {
        LinkState {
            rng: ChaCha8Rng::seed_from_u64(splitmix64(seed ^ splitmix64(link_key(from, to)))),
            copies: 0,
        }
    }
}

/// Thread count requested via the `ADHOC_SHARD_THREADS` environment
/// variable (default 1 = sequential).
pub fn shard_threads_from_env() -> usize {
    std::env::var("ADHOC_SHARD_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&t: &usize| t >= 1)
        .unwrap_or(1)
}

/// Deterministic discrete-event runtime over a set of node actors placed
/// in the plane. Radio broadcasts reach every node within `range`
/// (the paper's `G*` neighborhood); each link-level copy independently
/// passes through the [`FaultConfig`] on its own RNG stream.
#[derive(Debug)]
pub struct Runtime<A: Actor> {
    pub(crate) nodes: Vec<A>,
    /// Radio neighbors (indices within `range`), per node.
    pub(crate) neighbors: Vec<Vec<u32>>,
    /// Node positions (kept for spatial shard partitioning).
    pub(crate) positions: Vec<Point>,
    /// Radio range (spatial shard cell side).
    pub(crate) range: f64,
    pub(crate) queue: EventQueue<A::Msg>,
    pub(crate) faults: FaultConfig,
    pub(crate) seed: u64,
    /// Per-directed-link RNG streams and copy counters, created lazily.
    pub(crate) links: HashMap<u64, LinkState>,
    /// Per-node timer arm counters (feed [`EventKey::timer`] seqs).
    pub(crate) arm_seq: Vec<u64>,
    pub(crate) now: u64,
    /// Index of the lookahead window currently being processed.
    cur_window: u64,
    /// Membership state per node (all `Alive` without a churn plan).
    pub(crate) membership: Vec<MemberState>,
    /// Pending churn batches, sorted by (lookahead-aligned) time.
    pub(crate) churn: ChurnSchedule,
    /// Time of the last scheduled perturbation (0 without churn).
    last_churn: u64,
    /// Set by [`Self::start`]; churn plans must be installed before it.
    started: bool,
    pub(crate) stats: NetStats,
    pub(crate) trace: Transcript,
    /// Per-node sub-digests for the current window.
    pub(crate) notes: WindowNotes,
    /// Reused effect buffer: one `Ctx` serves every callback so the
    /// per-event hot path performs no allocations (the vectors keep their
    /// capacity across events).
    scratch: Ctx<A::Msg>,
}

impl<A: Actor> Runtime<A> {
    /// Build a runtime over `nodes` at the given positions; node `i` sits
    /// at `positions[i]` and its broadcasts reach every node within
    /// `range`.
    pub fn new(
        nodes: Vec<A>,
        positions: &[Point],
        range: f64,
        faults: FaultConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(nodes.len(), positions.len(), "one position per node");
        assert!(range.is_finite() && range > 0.0, "range must be positive");
        faults.validate();
        let n = positions.len();
        let mut neighbors = vec![Vec::new(); n];
        if n > 0 {
            let grid = GridIndex::build(positions, range);
            for u in 0..n as u32 {
                grid.for_each_within(positions[u as usize], range, |v| {
                    if v != u {
                        neighbors[u as usize].push(v);
                    }
                });
                // for_each_within order is grid-cell dependent; sort for a
                // stable broadcast fan-out order.
                neighbors[u as usize].sort_unstable();
            }
        }
        Runtime {
            nodes,
            neighbors,
            positions: positions.to_vec(),
            range,
            queue: EventQueue::new(),
            faults,
            seed,
            links: HashMap::new(),
            arm_seq: vec![0; n],
            now: 0,
            cur_window: 0,
            membership: vec![MemberState::Alive; n],
            churn: ChurnSchedule::default(),
            last_churn: 0,
            started: false,
            stats: NetStats::default(),
            trace: Transcript::new(false),
            notes: WindowNotes::new(n, false),
            scratch: Ctx::default(),
        }
    }

    /// Keep the full human-readable event log (off by default; the digest
    /// is always maintained). Entries appear grouped by node within each
    /// lookahead window — the canonical fold order.
    pub fn record_trace(&mut self, record: bool) {
        self.trace = Transcript::new(record);
        self.notes = WindowNotes::new(self.nodes.len(), record);
    }

    /// Current virtual time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Counters so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The replay transcript.
    pub fn transcript(&self) -> &Transcript {
        &self.trace
    }

    /// Immutable view of a node's actor state.
    pub fn node(&self, id: u32) -> &A {
        &self.nodes[id as usize]
    }

    /// All node actors, in id order.
    pub fn nodes(&self) -> &[A] {
        &self.nodes
    }

    /// The radio neighbors of `id` (sorted).
    pub fn radio_neighbors(&self, id: u32) -> &[u32] {
        &self.neighbors[id as usize]
    }

    /// Current membership state of `id`.
    pub fn member_state(&self, id: u32) -> MemberState {
        self.membership[id as usize]
    }

    /// Current node positions (reflecting any drifts applied so far).
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Virtual time of the last scheduled perturbation; 0 without churn.
    pub fn last_churn_time(&self) -> u64 {
        self.last_churn
    }

    /// Install a churn/mobility plan. Must be called before
    /// [`Self::start`]; entry times snap up to lookahead-window
    /// boundaries so perturbations land exactly at sharded epoch barriers
    /// (digest stability across executors). Panics on an inconsistent
    /// plan — see [`ChurnPlan`].
    pub fn set_churn_plan(&mut self, plan: &ChurnPlan) {
        assert!(
            !self.started,
            "set_churn_plan must be called before start()"
        );
        let planned = plan_churn(plan, self.nodes.len(), self.lookahead());
        // Joiners sit at their spawn position from t = 0: the spatial
        // shard partition (and hence worker assignment) is fixed up front.
        for &(node, pos) in &planned.spawn_positions {
            self.positions[node as usize] = pos;
        }
        self.membership = planned.membership;
        self.last_churn = planned.schedule.last_time();
        self.churn = planned.schedule;
        self.neighbors = rebuild_neighbors(&self.positions, &self.membership, self.range);
    }

    /// The conservative lookahead: no transmission can arrive sooner than
    /// this many ticks after it was sent, so shards advanced in windows
    /// of this width only exchange messages at window boundaries.
    pub(crate) fn lookahead(&self) -> u64 {
        self.faults.min_delay()
    }

    /// End the current digest window: sample the pending-event count and
    /// fold per-node sub-digests into the transcript in node-id order.
    fn fold_window(&mut self) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.queue.len());
        self.notes.fold_into(&mut self.trace);
    }

    /// Deliver `on_start` to every node (in id order) at time 0, then
    /// fold any records it produced (drops of time-0 sends) as a
    /// pseudo-window of their own.
    pub fn start(&mut self) {
        self.started = true;
        for id in 0..self.nodes.len() as u32 {
            // Pending joiners get no `on_start`; their bootstrap is the
            // `on_neighborhood_change` at their join boundary.
            if self.membership[id as usize] != MemberState::Alive {
                continue;
            }
            let mut ctx = std::mem::take(&mut self.scratch);
            ctx.reset(id, self.now);
            self.nodes[id as usize].on_start(&mut ctx);
            self.flush(&mut ctx);
            self.scratch = ctx;
        }
        self.fold_window();
    }

    /// Process events until the queue is empty or `max_events` have been
    /// handled; returns true iff the run went quiescent. Protocols are
    /// responsible for termination (bounded timer schedules); the cap is a
    /// backstop against runaway retransmit loops.
    ///
    /// Capped runs stay on the sequential executor and fold whatever
    /// partial window is open when the cap strikes, so a capped digest
    /// only matches another identically-capped run.
    pub fn run_with_limit(&mut self, max_events: u64) -> bool {
        let lookahead = self.lookahead();
        let mut remaining = max_events;
        loop {
            let next_event = self.queue.peek_time();
            // A churn batch due at `tc` applies before any event at `tc`:
            // perturbation times are lookahead-aligned, so this is
            // exactly the sharded executor's epoch-barrier cut.
            if let Some(tc) = self.churn.peek_time() {
                if next_event.is_none_or(|t| tc <= t) {
                    // Every earlier event is processed; close its window.
                    self.fold_window();
                    self.cur_window = tc / lookahead;
                    debug_assert!(tc >= self.now, "churn time must be monotone");
                    // `flush` in the re-convergence callbacks stamps
                    // records with `self.now`.
                    self.now = tc;
                    let delta = self.apply_churn_batch();
                    self.apply_churn_local(&delta);
                    continue;
                }
            }
            let Some(t) = next_event else {
                self.fold_window();
                return true;
            };
            if remaining == 0 {
                break;
            }
            remaining -= 1;
            let window = t / lookahead;
            if window > self.cur_window {
                self.fold_window();
                self.cur_window = window;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            debug_assert!(ev.time >= self.now, "time must be monotone");
            self.now = ev.time;
            let node = ev.key.node;
            // Events addressed to a crashed node are accounted, not run.
            if self.membership[node as usize] == MemberState::Dead {
                match ev.kind {
                    EventKind::Deliver { msg } => {
                        self.stats.link_lost += 1;
                        self.notes.note(
                            node,
                            format_args!("K t={} {}->{} {:?}", self.now, ev.key.src, node, msg),
                        );
                    }
                    EventKind::Timer { timer } => {
                        self.stats.timers_abandoned += 1;
                        self.notes.note(
                            node,
                            format_args!("A t={} n={} id={}", self.now, node, timer),
                        );
                    }
                }
                continue;
            }
            match ev.kind {
                EventKind::Deliver { msg } => {
                    let from = ev.key.src;
                    self.stats.delivered += 1;
                    self.stats.kind(msg.get().kind()).delivered += 1;
                    self.notes.note(
                        node,
                        format_args!("D t={} {}->{} {:?}", self.now, from, node, msg),
                    );
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, self.now);
                    self.nodes[node as usize].on_message(&mut ctx, from, msg.into_msg());
                    self.flush(&mut ctx);
                    self.scratch = ctx;
                }
                EventKind::Timer { timer } => {
                    self.stats.timers_fired += 1;
                    self.notes.note(
                        node,
                        format_args!("T t={} n={} id={}", self.now, node, timer),
                    );
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, self.now);
                    self.nodes[node as usize].on_timer(&mut ctx, timer);
                    self.flush(&mut ctx);
                    self.scratch = ctx;
                }
            }
        }
        self.fold_window();
        self.queue.is_empty() && self.churn.peek_time().is_none()
    }

    /// Apply the next due churn batch to the coordinating runtime's
    /// membership, positions, and neighbor rows, and compute the
    /// [`ChurnDelta`] every executor must apply: changed rows plus the
    /// live nodes whose one-hop world changed (new/lost neighbor rows,
    /// neighbors that drifted, or being a perturbation subject).
    pub(crate) fn apply_churn_batch(&mut self) -> ChurnDelta {
        let (time, entries) = self.churn.take_batch();
        let mut drifted: Vec<u32> = Vec::new();
        for e in &entries {
            match e.kind {
                ChurnKind::Join(pos) => {
                    self.positions[e.node as usize] = pos;
                    self.membership[e.node as usize] = MemberState::Alive;
                    self.stats.joins += 1;
                }
                ChurnKind::Leave => {
                    self.membership[e.node as usize] = MemberState::Draining;
                    self.stats.leaves += 1;
                }
                ChurnKind::Crash => {
                    self.membership[e.node as usize] = MemberState::Dead;
                    self.stats.crashes += 1;
                }
                ChurnKind::Drift(pos) => {
                    self.positions[e.node as usize] = pos;
                    self.stats.drifts += 1;
                    drifted.push(e.node);
                }
            }
        }
        drifted.sort_unstable();
        let new_rows = rebuild_neighbors(&self.positions, &self.membership, self.range);
        let mut rows = Vec::new();
        let mut affected = BTreeSet::new();
        for (u, new_row) in new_rows.iter().enumerate() {
            if *new_row != self.neighbors[u] {
                rows.push((u as u32, new_row.clone()));
                affected.insert(u as u32);
            } else if !drifted.is_empty()
                && self.membership[u] == MemberState::Alive
                && new_row.iter().any(|v| drifted.binary_search(v).is_ok())
            {
                // Row unchanged, but a neighbor moved within range: the
                // node's geometric one-hop world still changed.
                affected.insert(u as u32);
            }
        }
        for e in &entries {
            // Crash subjects are dead; everyone else re-converges (a
            // graceful leaver gets one final callback with an empty row).
            if !matches!(e.kind, ChurnKind::Crash) {
                affected.insert(e.node);
            }
        }
        affected.retain(|&u| self.membership[u as usize].processes_events());
        self.neighbors = new_rows;
        self.stats.reconvergences += affected.len() as u64;
        let affected = affected
            .into_iter()
            .map(|u| (u, self.positions[u as usize]))
            .collect();
        ChurnDelta {
            time,
            entries,
            rows,
            affected,
        }
    }

    /// Apply one churn batch's local effects: note the perturbation
    /// records (plan order) and run the re-convergence callbacks of the
    /// affected nodes this executor owns (all of them, sequentially).
    /// Requires `self.now == delta.time` and `self.neighbors` /
    /// `self.membership` already updated by [`Self::apply_churn_batch`].
    pub(crate) fn apply_churn_local(&mut self, delta: &ChurnDelta) {
        for e in &delta.entries {
            match e.kind {
                ChurnKind::Join(p) => self.notes.note(
                    e.node,
                    format_args!("J t={} n={} p=({:?},{:?})", delta.time, e.node, p.x, p.y),
                ),
                ChurnKind::Leave => self
                    .notes
                    .note(e.node, format_args!("G t={} n={}", delta.time, e.node)),
                ChurnKind::Crash => self
                    .notes
                    .note(e.node, format_args!("C t={} n={}", delta.time, e.node)),
                ChurnKind::Drift(p) => self.notes.note(
                    e.node,
                    format_args!("M t={} n={} p=({:?},{:?})", delta.time, e.node, p.x, p.y),
                ),
            }
        }
        for &(node, pos) in &delta.affected {
            let mut ctx = std::mem::take(&mut self.scratch);
            ctx.reset(node, delta.time);
            let row = std::mem::take(&mut self.neighbors[node as usize]);
            self.nodes[node as usize].on_neighborhood_change(&mut ctx, &row, pos);
            self.neighbors[node as usize] = row;
            self.flush(&mut ctx);
            self.scratch = ctx;
        }
    }

    /// Run to quiescence on the sequential executor (see
    /// [`Self::run_with_limit`]).
    pub fn run(&mut self) -> u64 {
        self.run_with_limit(u64::MAX);
        self.now
    }

    /// Drain one callback's effect buffer, applying link faults to every
    /// outgoing copy in emission order. The buffer is drained in place so
    /// its capacity is reused by the next callback.
    fn flush(&mut self, ctx: &mut Ctx<A::Msg>) {
        let node = ctx.node;
        for (to, msg) in ctx.sends.drain(..) {
            self.transmit(node, to, msg);
        }
        for msg in ctx.broadcasts.drain(..) {
            self.stats.broadcasts += 1;
            // One shared payload for the whole fan-out; fan-out order is
            // the sorted neighbor list. Targets come straight from that
            // list, so the per-unicast locality check in `transmit` is
            // skipped here.
            let shared = std::sync::Arc::new(msg);
            let nbrs = std::mem::take(&mut self.neighbors[node as usize]);
            for &to in &nbrs {
                self.transmit_link(node, to, Payload::Shared(shared.clone()));
            }
            self.neighbors[node as usize] = nbrs;
        }
        for (at, timer) in ctx.timers.drain(..) {
            self.stats.timers_set += 1;
            let seq = self.arm_seq[node as usize];
            self.arm_seq[node as usize] += 1;
            self.queue
                .push(at, EventKey::timer(node, seq), EventKind::Timer { timer });
        }
    }

    /// Validate a unicast against the `G*` locality discipline, then hand
    /// it to the link layer. A nonexistent target is a programming error
    /// (panic with a clear message); an in-plane but out-of-range target
    /// is physically unreachable — the copy is discarded and counted in
    /// [`NetStats::non_neighbor_sends`].
    fn transmit(&mut self, from: u32, to: u32, msg: A::Msg) {
        let n = self.nodes.len() as u32;
        assert!(
            to < n,
            "node {from} sent {:?} to nonexistent node {to} (only {n} nodes exist)",
            msg
        );
        if from == to || self.neighbors[from as usize].binary_search(&to).is_err() {
            self.stats.non_neighbor_sends += 1;
            self.notes.note(
                from,
                format_args!("L t={} {}->{} {:?}", self.now, from, to, msg),
            );
            return;
        }
        self.transmit_link(from, to, Payload::Own(msg));
    }

    /// Push one copy across a radio link, applying the fault model on the
    /// link's private RNG stream.
    fn transmit_link(&mut self, from: u32, to: u32, msg: Payload<A::Msg>) {
        self.stats.sent += 1;
        self.stats.kind(msg.get().kind()).sent += 1;
        let seed = self.seed;
        let link = self
            .links
            .entry(link_key(from, to))
            .or_insert_with(|| LinkState::new(seed, from, to));
        match self.faults.transmit(&mut link.rng) {
            TransmitOutcome::Dropped => {
                self.stats.dropped += 1;
                self.stats.kind(msg.get().kind()).dropped += 1;
                self.notes.note(
                    from,
                    format_args!("X t={} {}->{} {:?}", self.now, from, to, msg),
                );
            }
            TransmitOutcome::Delivered(d) => {
                let seq = link.copies;
                link.copies += 1;
                self.queue.push(
                    self.now + d,
                    EventKey::deliver(from, to, seq),
                    EventKind::Deliver { msg },
                );
            }
            TransmitOutcome::Duplicated(d1, d2) => {
                self.stats.duplicated += 1;
                let seq = link.copies;
                link.copies += 2;
                self.queue.push(
                    self.now + d1,
                    EventKey::deliver(from, to, seq),
                    EventKind::Deliver { msg: msg.clone() },
                );
                self.queue.push(
                    self.now + d2,
                    EventKey::deliver(from, to, seq + 1),
                    EventKind::Deliver { msg },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;

    /// A toy flood protocol: node 0 starts a token; every node forwards
    /// the first copy it sees to all radio neighbors.
    #[derive(Debug, Clone)]
    struct Flood {
        id: u32,
        seen: bool,
    }

    #[derive(Debug, Clone)]
    struct Token;

    impl Message for Token {
        fn kind(&self) -> &'static str {
            "token"
        }
    }

    impl Actor for Flood {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                self.seen = true;
                ctx.broadcast(Token);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {
            if !self.seen {
                self.seen = true;
                ctx.broadcast(Token);
            }
        }
    }

    fn line(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(i as f64, 0.0)).collect()
    }

    fn flood(n: usize, faults: FaultConfig, seed: u64) -> Runtime<Flood> {
        let nodes = (0..n as u32).map(|id| Flood { id, seen: false }).collect();
        Runtime::new(nodes, &line(n), 1.5, faults, seed)
    }

    #[test]
    fn flood_reaches_everyone_on_ideal_links() {
        let mut rt = flood(10, FaultConfig::ideal(), 1);
        rt.start();
        rt.run();
        assert!(rt.nodes().iter().all(|f| f.seen));
        // Each node broadcasts exactly once.
        assert_eq!(rt.stats().broadcasts, 10);
        assert_eq!(rt.stats().per_kind["token"].dropped, 0);
    }

    #[test]
    fn same_seed_identical_transcripts() {
        let faults = FaultConfig {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 5 },
        };
        let run = |seed| {
            let mut rt = flood(12, faults, seed);
            rt.record_trace(true);
            rt.start();
            rt.run();
            (
                rt.transcript().digest(),
                rt.transcript().entries().unwrap().to_vec(),
            )
        };
        let (d1, t1) = run(7);
        let (d2, t2) = run(7);
        assert_eq!(d1, d2);
        assert_eq!(t1, t2);
        let (d3, _) = run(8);
        assert_ne!(d1, d3, "different seeds should diverge");
    }

    /// Link streams are independent: the fate of traffic on one link must
    /// not depend on how much traffic other links carried first.
    #[test]
    fn link_rng_streams_are_independent_of_other_links() {
        let f = FaultConfig {
            drop_prob: 0.5,
            duplicate_prob: 0.2,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let fates = |prior_traffic: u64| {
            let mut link = LinkState::new(99, 3, 4);
            let mut other = LinkState::new(99, 1, 2);
            for _ in 0..prior_traffic {
                f.transmit(&mut other.rng);
            }
            (0..50)
                .map(|_| f.transmit(&mut link.rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(fates(0), fates(1000));
        // Directions are distinct streams.
        use rand::RngCore;
        let mut a = LinkState::new(99, 3, 4);
        let mut b = LinkState::new(99, 4, 3);
        assert_ne!(a.rng.next_u64(), b.rng.next_u64());
    }

    #[test]
    fn total_loss_stops_the_flood() {
        let mut rt = flood(5, FaultConfig::lossy(1.0), 3);
        rt.start();
        rt.run();
        assert!(rt.node(0).seen);
        assert!(!rt.nodes()[1..].iter().any(|f| f.seen));
        assert_eq!(rt.stats().delivered, 0);
        assert_eq!(rt.stats().sent, rt.stats().dropped);
    }

    #[test]
    fn run_with_limit_caps_events() {
        let mut rt = flood(30, FaultConfig::ideal(), 4);
        rt.start();
        let quiescent = rt.run_with_limit(3);
        assert!(!quiescent);
    }

    #[test]
    fn radio_neighbors_respect_range() {
        let rt = flood(4, FaultConfig::ideal(), 5);
        assert_eq!(rt.radio_neighbors(0), &[1]);
        assert_eq!(rt.radio_neighbors(1), &[0, 2]);
    }

    /// An actor that unicasts once to an arbitrary (possibly bogus)
    /// target, for exercising the locality validation in `transmit`.
    #[derive(Debug, Clone)]
    struct SendTo {
        id: u32,
        target: Option<u32>,
    }

    impl Actor for SendTo {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                if let Some(to) = self.target {
                    ctx.send(to, Token);
                }
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {}
    }

    fn send_to(n: usize, target: Option<u32>) -> Runtime<SendTo> {
        let nodes = (0..n as u32).map(|id| SendTo { id, target }).collect();
        Runtime::new(nodes, &line(n), 1.5, FaultConfig::ideal(), 9)
    }

    #[test]
    #[should_panic(expected = "nonexistent node")]
    fn unicast_to_nonexistent_node_panics_clearly() {
        let mut rt = send_to(3, Some(99));
        rt.start();
        rt.run();
    }

    #[test]
    fn out_of_range_unicast_is_dropped_and_counted() {
        // Node 3 is 3 units from node 0 — in the plane, out of radio
        // range (1.5). The copy must never be delivered, and it must not
        // perturb the link-level sent/dropped ledger.
        let mut rt = send_to(4, Some(3));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 1);
        assert_eq!(rt.stats().sent, 0);
        assert_eq!(rt.stats().delivered, 0);
        assert_eq!(rt.stats().dropped, 0);
    }

    #[test]
    fn self_send_is_a_non_neighbor_send() {
        let mut rt = send_to(2, Some(0));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 1);
        assert_eq!(rt.stats().delivered, 0);
    }

    #[test]
    fn in_range_unicast_still_delivers() {
        let mut rt = send_to(2, Some(1));
        rt.start();
        rt.run();
        assert_eq!(rt.stats().non_neighbor_sends, 0);
        assert_eq!(rt.stats().delivered, 1);
    }

    /// Node 0 streams a unicast per tick at node 1 and logs every
    /// reception time; exercises the in-flight-to-a-crashed-node path.
    #[derive(Debug, Clone)]
    struct Pinger {
        id: u32,
        sent: u32,
        received: Vec<u64>,
    }

    impl Actor for Pinger {
        type Msg = Token;

        fn on_start(&mut self, ctx: &mut Ctx<Token>) {
            if self.id == 0 {
                ctx.set_timer(1, 0);
            }
        }

        fn on_message(&mut self, ctx: &mut Ctx<Token>, _from: u32, _msg: Token) {
            self.received.push(ctx.now());
        }

        fn on_timer(&mut self, ctx: &mut Ctx<Token>, _timer: u32) {
            if self.sent < 20 {
                self.sent += 1;
                ctx.send(1, Token);
                ctx.set_timer(1, 0);
            }
        }
    }

    fn pingers(n: usize) -> Vec<Pinger> {
        (0..n as u32)
            .map(|id| Pinger {
                id,
                sent: 0,
                received: Vec::new(),
            })
            .collect()
    }

    /// Regression (pre-churn the runtime had no peer-death path at all):
    /// a packet in flight to a node that crash-leaves must be accounted
    /// as `link_lost` — never delivered to the dead actor — and the run
    /// must still drain to quiescence.
    #[test]
    fn in_flight_packet_to_crashed_node_is_link_lost_not_delivered() {
        let mut rt = Runtime::new(pingers(2), &line(2), 1.5, FaultConfig::ideal(), 11);
        rt.set_churn_plan(&ChurnPlan::new().crash(10, 1));
        rt.start();
        assert!(rt.run_with_limit(u64::MAX), "run must go quiescent");
        // The packet sent at t=9 was in flight at the crash boundary
        // (arrival t=10): lost, not delivered.
        assert_eq!(rt.stats().link_lost, 1);
        assert_eq!(rt.member_state(1), MemberState::Dead);
        // The dead actor saw nothing at or after the crash time.
        assert!(rt.node(1).received.iter().all(|&t| t < 10));
        assert_eq!(rt.stats().delivered, rt.node(1).received.len() as u64);
        // Post-crash sends fail the locality check (node 1 left every
        // neighbor row) instead of entering the link layer.
        assert!(rt.stats().non_neighbor_sends > 0);
        assert_eq!(rt.stats().crashes, 1);
        // Node 0 was notified exactly once (its row changed).
        assert_eq!(rt.stats().reconvergences, 1);
    }

    /// A graceful leaver keeps processing what is already queued for it.
    #[test]
    fn graceful_leaver_drains_in_flight_packets() {
        let mut rt = Runtime::new(pingers(2), &line(2), 1.5, FaultConfig::ideal(), 11);
        rt.set_churn_plan(&ChurnPlan::new().leave(10, 1));
        rt.start();
        assert!(rt.run_with_limit(u64::MAX));
        // The in-flight packet (sent t=9, due t=10) is still delivered.
        assert_eq!(rt.stats().link_lost, 0);
        assert_eq!(rt.member_state(1), MemberState::Draining);
        assert!(rt.node(1).received.contains(&10));
        assert!(rt.node(1).received.iter().all(|&t| t <= 10));
    }

    /// Same seed + same churn plan ⇒ identical digests; and a plan with
    /// churn diverges from the no-churn digest.
    #[test]
    fn churn_runs_replay_deterministically() {
        let faults = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let plan = ChurnPlan::new()
            .drift(6, 2, Point::new(0.5, 0.9))
            .crash(12, 4)
            .drift(12, 0, Point::new(1.2, 0.3));
        let run = |with_churn: bool| {
            let mut rt = Runtime::new(pingers(6), &line(6), 1.5, faults, 21);
            if with_churn {
                rt.set_churn_plan(&plan);
            }
            rt.start();
            rt.run();
            rt.transcript().digest()
        };
        assert_eq!(run(true), run(true));
        assert_ne!(run(true), run(false));
    }

    /// A pending joiner is invisible (no on_start, absent from rows)
    /// until its join boundary, after which it participates normally.
    #[test]
    fn joiner_is_invisible_until_join_time() {
        let mut rt = Runtime::new(pingers(3), &line(3), 1.5, FaultConfig::ideal(), 13);
        // Node 2 starts pending far away and joins next to node 1.
        rt.set_churn_plan(&ChurnPlan::new().join(5, 2, Point::new(2.0, 0.0)));
        assert_eq!(rt.member_state(2), MemberState::Pending);
        assert_eq!(rt.radio_neighbors(1), &[0], "pending node not in rows");
        rt.start();
        assert!(rt.run_with_limit(u64::MAX));
        assert_eq!(rt.member_state(2), MemberState::Alive);
        assert_eq!(rt.radio_neighbors(1), &[0, 2]);
        assert_eq!(rt.stats().joins, 1);
        // Joiner + node 1 (changed row) re-converged; node 0 unaffected.
        assert_eq!(rt.stats().reconvergences, 2);
    }
}
