//! Link fault models: loss, delay, duplication, reordering.
//!
//! Every transmission passes through [`FaultConfig::transmit`], which
//! consults the runtime's seeded RNG in a fixed order — so an identical
//! seed reproduces the identical fault pattern, event for event. Random
//! per-copy delays provide reordering for free: two messages sent
//! back-to-back on the same link may arrive swapped whenever the delay
//! distribution has positive width.

use rand::Rng;

/// Per-copy delivery latency distribution, in virtual ticks. Sampled
/// delays are clamped to ≥ 1 so a message never arrives in the tick it
/// was sent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayDist {
    /// Every copy takes exactly this many ticks.
    Fixed(u64),
    /// Uniform in `[min, max]` (inclusive); `max ≥ min` required.
    Uniform {
        /// Minimum latency.
        min: u64,
        /// Maximum latency.
        max: u64,
    },
}

impl DelayDist {
    /// Sample one latency (always ≥ 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d.max(1),
            DelayDist::Uniform { min, max } => {
                assert!(max >= min, "DelayDist::Uniform requires max ≥ min");
                // Clamp the *bounds* before sampling: drawing from
                // `min..=max` and then flooring at 1 would silently pile
                // the probability mass of every sub-1 value onto delay 1,
                // skewing the distribution (e.g. `min: 0` doubles it).
                let lo = min.max(1);
                rng.gen_range(lo..=max.max(lo))
            }
        }
    }

    /// Largest latency this distribution can produce.
    pub fn max_delay(&self) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d.max(1),
            DelayDist::Uniform { max, .. } => max.max(1),
        }
    }

    /// Smallest latency this distribution can produce (always ≥ 1 — the
    /// sharded executor's conservative lookahead).
    pub fn min_delay(&self) -> u64 {
        match *self {
            DelayDist::Fixed(d) => d.max(1),
            DelayDist::Uniform { min, .. } => min.max(1),
        }
    }
}

/// Fault model applied independently to every link-level transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a transmission is silently lost.
    pub drop_prob: f64,
    /// Probability a *delivered* transmission arrives twice (with
    /// independently sampled delays).
    pub duplicate_prob: f64,
    /// Latency distribution of each delivered copy.
    pub delay: DelayDist,
}

impl Default for FaultConfig {
    /// The ideal network: no loss, no duplication, unit latency.
    fn default() -> Self {
        FaultConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay: DelayDist::Fixed(1),
        }
    }
}

impl FaultConfig {
    /// Ideal lossless unit-latency links.
    pub fn ideal() -> Self {
        Self::default()
    }

    /// Lossy links: drop probability `p`, unit latency, no duplication.
    pub fn lossy(p: f64) -> Self {
        FaultConfig {
            drop_prob: p,
            ..Self::default()
        }
    }

    /// Validate probabilities; panics on values outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.drop_prob),
            "drop_prob must be in [0,1], got {}",
            self.drop_prob
        );
        assert!(
            (0.0..=1.0).contains(&self.duplicate_prob),
            "duplicate_prob must be in [0,1], got {}",
            self.duplicate_prob
        );
    }

    /// Decide the fate of one transmission: the arrival delays of each
    /// delivered copy (empty = dropped, two entries = duplicated). RNG
    /// consumption order is fixed: drop coin, then delay, then duplicate
    /// coin, then the duplicate's delay.
    pub fn transmit<R: Rng + ?Sized>(&self, rng: &mut R) -> TransmitOutcome {
        if self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob) {
            return TransmitOutcome::Dropped;
        }
        let first = self.delay.sample(rng);
        if self.duplicate_prob > 0.0 && rng.gen_bool(self.duplicate_prob) {
            let second = self.delay.sample(rng);
            TransmitOutcome::Duplicated(first, second)
        } else {
            TransmitOutcome::Delivered(first)
        }
    }

    /// Largest per-copy latency the model can produce (for sizing round
    /// deadlines).
    pub fn max_delay(&self) -> u64 {
        self.delay.max_delay()
    }

    /// Smallest per-copy latency the model can produce — the sharded
    /// executor's lookahead window: no message sent in epoch `k` can
    /// arrive before epoch `k + 1`.
    pub fn min_delay(&self) -> u64 {
        self.delay.min_delay()
    }
}

/// Fate of a single transmission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransmitOutcome {
    /// Lost; nothing arrives.
    Dropped,
    /// One copy arrives after the given delay.
    Delivered(u64),
    /// Two copies arrive, after each delay respectively.
    Duplicated(u64, u64),
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ideal_always_delivers_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let f = FaultConfig::ideal();
        for _ in 0..100 {
            assert_eq!(f.transmit(&mut rng), TransmitOutcome::Delivered(1));
        }
    }

    #[test]
    fn drop_rate_close_to_nominal() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let f = FaultConfig::lossy(0.3);
        let n = 20_000;
        let dropped = (0..n)
            .filter(|_| f.transmit(&mut rng) == TransmitOutcome::Dropped)
            .count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn duplication_produces_two_copies() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let f = FaultConfig {
            duplicate_prob: 1.0,
            ..FaultConfig::ideal()
        };
        assert!(matches!(
            f.transmit(&mut rng),
            TransmitOutcome::Duplicated(_, _)
        ));
    }

    #[test]
    fn uniform_delay_in_bounds_and_positive() {
        // Frequency test: `min: 0` must *not* double the mass on delay 1
        // (the old `gen_range(0..=max).max(1)` bug gave delay 1 a 2/6
        // share instead of 1/5).
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let d = DelayDist::Uniform { min: 0, max: 5 };
        let n = 50_000u32;
        let mut counts = [0u32; 6];
        for _ in 0..n {
            let s = d.sample(&mut rng);
            assert!((1..=5).contains(&s));
            counts[s as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for (v, &c) in counts.iter().enumerate().skip(1) {
            let freq = c as f64 / n as f64;
            assert!(
                (freq - 0.2).abs() < 0.01,
                "delay {v} frequency {freq}, expected ≈ 0.2"
            );
        }
        assert_eq!(DelayDist::Fixed(0).sample(&mut rng), 1);
        // Degenerate all-sub-1 ranges still produce the clamped value.
        assert_eq!(DelayDist::Uniform { min: 0, max: 0 }.sample(&mut rng), 1);
    }

    #[test]
    fn same_seed_same_fates() {
        let f = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            (0..500).map(|_| f.transmit(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic]
    fn bad_probability_rejected() {
        FaultConfig::lossy(1.5).validate();
    }
}
