//! Per-link reliable delivery: sliding windows, cumulative acks, and
//! retransmission with capped exponential backoff.
//!
//! The runtime's links drop, delay, and duplicate ([`crate::fault`]); a
//! fire-and-forget protocol therefore bleeds throughput on every loss.
//! This module restores delivery guarantees *locally*, per link — in the
//! spirit of the paper, no global coordination is introduced:
//!
//! * every unicast message selected for reliability is stamped with a
//!   per-`(link, direction)` sequence number and kept by the sender until
//!   cumulatively acknowledged;
//! * receivers acknowledge the longest in-order prefix (`ack` = lowest
//!   sequence number not yet received), piggybacked on data flowing the
//!   other way or as standalone [`ReliableMsg::Ack`]s;
//! * unacknowledged data is retransmitted on a timer whose per-packet
//!   deadline backs off exponentially (`rto · 2^retries`, capped at
//!   `rto_max`) until [`ReliableConfig::max_retries`] is exhausted, at
//!   which point the sender abandons the packet and advertises the new
//!   window base (`lo`) so the receiver's cumulative ack can skip the
//!   hole instead of stalling the link forever.
//!
//! Delivery to the application is **exactly-once but unordered**: a
//! payload is handed up the moment its first copy arrives (duplicates —
//! whether fault-layer copies or retransmissions — are discarded by
//! sequence number), while the cumulative ack tracks the in-order prefix
//! purely for window accounting. Datagram protocols like the gossip
//! balancer need idempotence, not ordering, and immediate delivery avoids
//! head-of-line blocking on lossy links.
//!
//! [`ReliableActor`] wraps any [`Actor`] whose traffic should ride this
//! layer: a per-message predicate routes each unicast send through the
//! transport or straight to the wire ([`ReliableMsg::Raw`]). Broadcasts
//! always stay best-effort — radio-neighborhood fan-out has no single
//! return path to ack on, and the protocols using it (position beacons,
//! height gossip) are freshness-driven: a retransmitted stale value is
//! worth less than the next periodic refresh.

use crate::node::{Actor, Ctx, Message};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Timer id reserved for the transport's retransmit clock. Inner actors
/// wrapped by [`ReliableActor`] must not arm timers with this id.
pub const RELIABLE_TIMER: u32 = u32::MAX;

/// Tuning knobs of the reliable sublayer (per node, applied to every
/// outgoing link direction independently).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Maximum unacknowledged data messages in flight per link direction;
    /// further sends queue in a backlog until the window slides.
    pub window: usize,
    /// Initial retransmit timeout in virtual ticks.
    pub rto: u64,
    /// Cap on the backed-off retransmit timeout.
    pub rto_max: u64,
    /// Retransmissions attempted per message before the sender gives up
    /// and abandons it (counted in [`LinkCounters::gave_up`]).
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    /// Defaults sized for the gossip balancer's 8-tick steps and delay
    /// distributions up to ~8 ticks: a 32-message window, 16-tick initial
    /// RTO backing off to at most 256 ticks, 12 tries per message
    /// (residual loss ≈ `p^13`, ~1.6·10⁻⁷ at 30% link loss).
    fn default() -> Self {
        ReliableConfig {
            window: 32,
            rto: 16,
            rto_max: 256,
            max_retries: 12,
        }
    }
}

impl ReliableConfig {
    /// Panics on degenerate parameters.
    pub fn validate(&self) {
        assert!(self.window >= 1, "window must be ≥ 1");
        assert!(self.rto >= 1, "rto must be ≥ 1");
        assert!(self.rto_max >= self.rto, "rto_max must be ≥ rto");
    }

    /// Deadline distance after `retries` retransmissions:
    /// `rto · 2^retries` capped at `rto_max`.
    fn backoff(&self, retries: u32) -> u64 {
        self.rto
            .saturating_mul(1u64 << retries.min(16))
            .min(self.rto_max)
    }
}

/// Envelope carried on the wire by a reliability-wrapped protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ReliableMsg<M> {
    /// A sequenced payload. `ack` piggybacks the sender's cumulative ack
    /// for the *reverse* direction; `lo` advertises the sender's lowest
    /// outstanding sequence number so receivers can skip abandoned holes.
    Data {
        /// Per-(link, direction) sequence number.
        seq: u64,
        /// Piggybacked cumulative ack: every reverse-direction sequence
        /// number `< ack` has been received.
        ack: u64,
        /// Sender's window base; sequence numbers `< lo` are settled or
        /// abandoned and will never be (re)transmitted.
        lo: u64,
        /// The wrapped protocol message.
        payload: M,
    },
    /// Standalone cumulative ack (sent when no reverse data is flowing).
    Ack {
        /// Every sequence number `< ack` has been received.
        ack: u64,
    },
    /// Best-effort passthrough: broadcasts and unicasts the wrapper's
    /// predicate left unprotected.
    Raw(M),
}

impl<M: Message> Message for ReliableMsg<M> {
    /// Data and raw envelopes keep the payload's kind so per-kind
    /// counters (and the retransmit overhead they reveal) stay
    /// comparable with fire-and-forget runs; standalone acks get their
    /// own bucket.
    fn kind(&self) -> &'static str {
        match self {
            ReliableMsg::Data { payload, .. } | ReliableMsg::Raw(payload) => payload.kind(),
            ReliableMsg::Ack { .. } => "ack",
        }
    }
}

/// Transport-layer counters of one node (sum over its link directions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkCounters {
    /// Data retransmissions emitted.
    pub retransmits: u64,
    /// Standalone acks emitted (piggybacked acks are free).
    pub acks_sent: u64,
    /// Retransmit-timer firings handled.
    pub rto_fired: u64,
    /// Messages abandoned after `max_retries` unacknowledged tries.
    pub gave_up: u64,
}

/// One in-flight (transmitted, unacked) message.
#[derive(Debug, Clone)]
struct Flight<M> {
    payload: M,
    retries: u32,
    deadline: u64,
}

/// Sender half of one link direction.
#[derive(Debug, Clone)]
struct SendState<M> {
    next_seq: u64,
    /// Transmitted and unacknowledged, keyed by sequence number.
    flights: BTreeMap<u64, Flight<M>>,
    /// Queued behind a full window, sequence numbers pre-assigned.
    backlog: VecDeque<(u64, M)>,
}

impl<M> Default for SendState<M> {
    fn default() -> Self {
        SendState {
            next_seq: 0,
            flights: BTreeMap::new(),
            backlog: VecDeque::new(),
        }
    }
}

impl<M> SendState<M> {
    /// Lowest outstanding sequence number (the advertised window base).
    fn lo(&self) -> u64 {
        self.flights
            .keys()
            .next()
            .copied()
            .or_else(|| self.backlog.front().map(|&(s, _)| s))
            .unwrap_or(self.next_seq)
    }
}

/// Receiver half of one link direction.
#[derive(Debug, Clone, Default)]
struct RecvState {
    /// Cumulative ack value: every sequence number `< expected` settled.
    expected: u64,
    /// Received out of order, above `expected` (bounded by the sender's
    /// window plus abandoned holes, which `lo` advances past).
    ooo: BTreeSet<u64>,
    /// An ack is owed since the last flush.
    ack_due: bool,
}

impl RecvState {
    fn advance_past_holes(&mut self, lo: u64) {
        if lo > self.expected {
            self.expected = lo;
            self.ooo = self.ooo.split_off(&lo);
        }
        while self.ooo.remove(&self.expected) {
            self.expected += 1;
        }
    }
}

/// The per-node reliable transport: sender and receiver state for every
/// peer this node exchanges protected traffic with. All maps are ordered
/// so flush emission order — and therefore the replay digest — is a pure
/// function of the protocol's behaviour.
#[derive(Debug, Clone)]
pub struct Transport<M> {
    cfg: ReliableConfig,
    send: BTreeMap<u32, SendState<M>>,
    recv: BTreeMap<u32, RecvState>,
    /// `(peer, seq)` pairs due for retransmission at the next flush.
    pending_retx: Vec<(u32, u64)>,
    /// Fire times of armed (uncancellable) retransmit timers.
    armed: BTreeSet<u64>,
    counters: LinkCounters,
}

impl<M: Message> Transport<M> {
    /// A fresh transport.
    pub fn new(cfg: ReliableConfig) -> Self {
        cfg.validate();
        Transport {
            cfg,
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            pending_retx: Vec::new(),
            armed: BTreeSet::new(),
            counters: LinkCounters::default(),
        }
    }

    /// Counters so far.
    pub fn counters(&self) -> LinkCounters {
        self.counters
    }

    /// Messages currently in transport custody (in flight or backlogged),
    /// i.e. accepted from the application but not yet known-delivered.
    pub fn pending_count(&self) -> u64 {
        self.send
            .values()
            .map(|s| (s.flights.len() + s.backlog.len()) as u64)
            .sum()
    }

    /// Accept one payload for reliable delivery to `to`. Transmitted at
    /// the next [`Transport::flush`], window permitting.
    pub fn queue(&mut self, to: u32, payload: M) {
        let ss = self.send.entry(to).or_default();
        let seq = ss.next_seq;
        ss.next_seq += 1;
        ss.backlog.push_back((seq, payload));
    }

    /// Process a cumulative ack from `peer` (standalone or piggybacked):
    /// settle every flight with sequence number below `ack`.
    pub fn on_ack(&mut self, peer: u32, ack: u64) {
        if let Some(ss) = self.send.get_mut(&peer) {
            ss.flights = ss.flights.split_off(&ack);
        }
    }

    /// Process an incoming data envelope from `peer`. Returns the payload
    /// exactly once per sequence number; duplicates yield `None` (but
    /// still owe the peer an ack, so lost acks get repaired).
    pub fn on_data(&mut self, peer: u32, seq: u64, lo: u64, payload: M) -> Option<M> {
        let rs = self.recv.entry(peer).or_default();
        rs.ack_due = true;
        rs.advance_past_holes(lo);
        if seq < rs.expected || rs.ooo.contains(&seq) {
            return None; // duplicate (fault-layer copy or retransmission)
        }
        if seq == rs.expected {
            rs.expected += 1;
            while rs.ooo.remove(&rs.expected) {
                rs.expected += 1;
            }
        } else {
            rs.ooo.insert(seq);
        }
        Some(payload)
    }

    /// Handle a [`RELIABLE_TIMER`] firing at virtual time `now`: mark
    /// every overdue flight for retransmission (or abandon it once the
    /// retry budget is spent), backing its deadline off exponentially.
    pub fn on_timer(&mut self, now: u64) {
        self.counters.rto_fired += 1;
        self.armed.remove(&now);
        for (&peer, ss) in self.send.iter_mut() {
            let due: Vec<u64> = ss
                .flights
                .iter()
                .filter(|(_, f)| f.deadline <= now)
                .map(|(&s, _)| s)
                .collect();
            for seq in due {
                let f = ss.flights.get_mut(&seq).expect("due flight exists");
                if f.retries >= self.cfg.max_retries {
                    ss.flights.remove(&seq);
                    self.counters.gave_up += 1;
                } else {
                    f.retries += 1;
                    f.deadline = now + self.cfg.backoff(f.retries);
                    self.counters.retransmits += 1;
                    self.pending_retx.push((peer, seq));
                }
            }
        }
    }

    /// Drop all link state toward peers *not* in `peers` (sorted): a
    /// departed node will never ack, so its in-flight and backlogged
    /// custody is abandoned (counted in [`LinkCounters::gave_up`]) instead
    /// of burning the whole retry budget against a dead link. Already
    /// armed retransmit timers stay armed — they are uncancellable — and
    /// fire as no-ops when no flights remain.
    pub fn retain_peers(&mut self, peers: &[u32]) {
        debug_assert!(peers.is_sorted());
        self.send.retain(|peer, ss| {
            if peers.binary_search(peer).is_ok() {
                return true;
            }
            self.counters.gave_up += (ss.flights.len() + ss.backlog.len()) as u64;
            false
        });
        // Receive-side state is deliberately kept: a retransmitted copy of
        // an already-delivered segment can still be in flight when the
        // peer vanishes, and dropping the recv window would hand it to the
        // actor a second time (exactly-once broken). Eroded routing never
        // re-adds the link, so stale windows stay inert, O(1) each.
        self.pending_retx
            .retain(|(peer, _)| peers.binary_search(peer).is_ok());
    }

    /// Emit everything owed to the wire: retransmissions, fresh data up
    /// to the window, standalone acks for peers with no reverse data, and
    /// the retransmit timer for the earliest outstanding deadline.
    pub fn flush(&mut self, ctx: &mut Ctx<ReliableMsg<M>>) {
        let now = ctx.now();
        // Retransmissions (with refreshed piggyback acks).
        for (peer, seq) in std::mem::take(&mut self.pending_retx) {
            let Some(ss) = self.send.get(&peer) else {
                continue;
            };
            if let Some(f) = ss.flights.get(&seq) {
                let ack = self.recv.get(&peer).map_or(0, |r| r.expected);
                ctx.send(
                    peer,
                    ReliableMsg::Data {
                        seq,
                        ack,
                        lo: ss.lo(),
                        payload: f.payload.clone(),
                    },
                );
                if let Some(rs) = self.recv.get_mut(&peer) {
                    rs.ack_due = false;
                }
            }
        }
        // Slide backlog into freed window space and transmit.
        for (&peer, ss) in self.send.iter_mut() {
            let mut sent_any = false;
            while ss.flights.len() < self.cfg.window {
                let Some((seq, payload)) = ss.backlog.pop_front() else {
                    break;
                };
                let ack = self.recv.get(&peer).map_or(0, |r| r.expected);
                ctx.send(
                    peer,
                    ReliableMsg::Data {
                        seq,
                        ack,
                        lo: ss.flights.keys().next().copied().unwrap_or(seq),
                        payload: payload.clone(),
                    },
                );
                ss.flights.insert(
                    seq,
                    Flight {
                        payload,
                        retries: 0,
                        deadline: now + self.cfg.rto,
                    },
                );
                sent_any = true;
            }
            if sent_any {
                if let Some(rs) = self.recv.get_mut(&peer) {
                    rs.ack_due = false;
                }
            }
        }
        // Standalone acks for peers that got no piggyback this flush.
        for (&peer, rs) in self.recv.iter_mut() {
            if rs.ack_due {
                rs.ack_due = false;
                self.counters.acks_sent += 1;
                ctx.send(peer, ReliableMsg::Ack { ack: rs.expected });
            }
        }
        // Arm the retransmit clock for the earliest deadline, unless an
        // already-armed (uncancellable) timer fires no later than it.
        let earliest = self
            .send
            .values()
            .flat_map(|s| s.flights.values().map(|f| f.deadline))
            .min();
        if let Some(e) = earliest {
            if self.armed.first().is_none_or(|&a| a > e) {
                let delay = e.saturating_sub(now).max(1);
                ctx.set_timer(delay, RELIABLE_TIMER);
                self.armed.insert(now + delay);
            }
        }
    }
}

/// Wraps an inner [`Actor`] so that unicast sends selected by the
/// predicate ride the reliable transport, everything else goes out
/// best-effort as [`ReliableMsg::Raw`]. The wrapper owns timer id
/// [`RELIABLE_TIMER`]; all other timers pass through untouched.
pub struct ReliableActor<A: Actor, F> {
    inner: A,
    transport: Transport<A::Msg>,
    select: F,
}

impl<A, F> ReliableActor<A, F>
where
    A: Actor,
    F: Fn(&A::Msg) -> bool,
{
    /// Wrap `inner`; `select` returns true for messages that must be
    /// delivered reliably.
    pub fn new(inner: A, cfg: ReliableConfig, select: F) -> Self {
        ReliableActor {
            inner,
            transport: Transport::new(cfg),
            select,
        }
    }

    /// The wrapped protocol actor.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// The transport's counters.
    pub fn counters(&self) -> LinkCounters {
        self.transport.counters()
    }

    /// Messages still in transport custody (in flight or backlogged).
    pub fn pending_count(&self) -> u64 {
        self.transport.pending_count()
    }

    /// Run one inner-actor callback and route its effects: selected
    /// unicasts into the transport, the rest (and all broadcasts) to the
    /// wire as raw envelopes, timers passed through.
    fn deliver(
        &mut self,
        ctx: &mut Ctx<ReliableMsg<A::Msg>>,
        f: impl FnOnce(&mut A, &mut Ctx<A::Msg>),
    ) {
        let mut ic = Ctx::new(ctx.id(), ctx.now());
        f(&mut self.inner, &mut ic);
        let Ctx {
            sends,
            broadcasts,
            timers,
            ..
        } = ic;
        for (to, m) in sends {
            if (self.select)(&m) {
                self.transport.queue(to, m);
            } else {
                ctx.send(to, ReliableMsg::Raw(m));
            }
        }
        for m in broadcasts {
            ctx.broadcast(ReliableMsg::Raw(m));
        }
        for (at, id) in timers {
            assert_ne!(
                id, RELIABLE_TIMER,
                "timer id u32::MAX is reserved by the reliable transport"
            );
            ctx.set_timer(at.saturating_sub(ctx.now()), id);
        }
    }
}

impl<A, F> fmt::Debug for ReliableActor<A, F>
where
    A: Actor + fmt::Debug,
    A::Msg: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReliableActor")
            .field("inner", &self.inner)
            .field("transport", &self.transport)
            .finish_non_exhaustive()
    }
}

impl<A, F> Actor for ReliableActor<A, F>
where
    A: Actor,
    F: Fn(&A::Msg) -> bool,
{
    type Msg = ReliableMsg<A::Msg>;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
        self.deliver(ctx, |a, ic| a.on_start(ic));
        self.transport.flush(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: u32, msg: Self::Msg) {
        match msg {
            ReliableMsg::Raw(m) => self.deliver(ctx, |a, ic| a.on_message(ic, from, m)),
            ReliableMsg::Data {
                seq,
                ack,
                lo,
                payload,
            } => {
                self.transport.on_ack(from, ack);
                if let Some(m) = self.transport.on_data(from, seq, lo, payload) {
                    self.deliver(ctx, |a, ic| a.on_message(ic, from, m));
                }
            }
            ReliableMsg::Ack { ack } => self.transport.on_ack(from, ack),
        }
        self.transport.flush(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Self::Msg>, timer: u32) {
        if timer == RELIABLE_TIMER {
            self.transport.on_timer(ctx.now());
        } else {
            self.deliver(ctx, |a, ic| a.on_timer(ic, timer));
        }
        self.transport.flush(ctx);
    }

    fn on_neighborhood_change(
        &mut self,
        ctx: &mut Ctx<Self::Msg>,
        neighbors: &[u32],
        pos: adhoc_geom::Point,
    ) {
        // Prune link state toward vanished peers *before* the inner
        // protocol reacts, so custody abandoned by churn is settled by the
        // time the application inspects its transport.
        self.transport.retain_peers(neighbors);
        self.deliver(ctx, |a, ic| a.on_neighborhood_change(ic, neighbors, pos));
        self.transport.flush(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{DelayDist, FaultConfig};
    use crate::runtime::Runtime;
    use crate::{ChurnPlan, MemberState};
    use adhoc_geom::Point;

    /// A minimal source→sink protocol: node 0 emits `total` numbered
    /// payloads, one per tick; node 1 records what it receives.
    #[derive(Debug, Clone)]
    struct Pump {
        id: u32,
        total: u32,
        emitted: u32,
        got: Vec<u32>,
    }

    #[derive(Debug, Clone, PartialEq)]
    struct Num(u32);

    impl Message for Num {
        fn kind(&self) -> &'static str {
            "num"
        }
    }

    impl Actor for Pump {
        type Msg = Num;

        fn on_start(&mut self, ctx: &mut Ctx<Num>) {
            if self.id == 0 && self.total > 0 {
                ctx.set_timer(1, 0);
            }
        }

        fn on_message(&mut self, _ctx: &mut Ctx<Num>, _from: u32, msg: Num) {
            self.got.push(msg.0);
        }

        fn on_timer(&mut self, ctx: &mut Ctx<Num>, _timer: u32) {
            ctx.send(1, Num(self.emitted));
            self.emitted += 1;
            if self.emitted < self.total {
                ctx.set_timer(1, 0);
            }
        }
    }

    type Wrapped = ReliableActor<Pump, fn(&Num) -> bool>;

    fn always(_: &Num) -> bool {
        true
    }

    fn pump_pair(
        total: u32,
        cfg: ReliableConfig,
        faults: FaultConfig,
        seed: u64,
    ) -> Runtime<Wrapped> {
        let nodes: Vec<Wrapped> = (0..2)
            .map(|id| {
                ReliableActor::new(
                    Pump {
                        id,
                        total,
                        emitted: 0,
                        got: Vec::new(),
                    },
                    cfg,
                    always as fn(&Num) -> bool,
                )
            })
            .collect();
        let positions = [Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        Runtime::new(nodes, &positions, 1.5, faults, seed)
    }

    #[test]
    fn lossless_links_deliver_everything_without_retransmits() {
        let mut rt = pump_pair(50, ReliableConfig::default(), FaultConfig::ideal(), 1);
        rt.start();
        rt.run();
        let sink = rt.node(1);
        assert_eq!(sink.inner().got.len(), 50);
        let src = rt.node(0);
        assert_eq!(src.counters().retransmits, 0);
        assert_eq!(src.counters().gave_up, 0);
        assert_eq!(src.pending_count(), 0);
    }

    #[test]
    fn heavy_loss_still_delivers_exactly_once() {
        let faults = FaultConfig {
            drop_prob: 0.4,
            duplicate_prob: 0.2,
            delay: DelayDist::Uniform { min: 1, max: 6 },
        };
        let mut rt = pump_pair(80, ReliableConfig::default(), faults, 7);
        rt.start();
        let quiescent = rt.run_with_limit(2_000_000);
        assert!(quiescent, "retransmit schedule must terminate");
        let src_counters = rt.node(0).counters();
        assert!(src_counters.retransmits > 0, "40% loss needs retransmits");
        let mut got = rt.node(1).inner().got.clone();
        got.sort_unstable();
        got.dedup();
        // Exactly-once: no duplicates survived dedup...
        assert_eq!(got.len(), rt.node(1).inner().got.len());
        // ...and everything not abandoned arrived.
        let gave_up = src_counters.gave_up as usize + rt.node(0).pending_count() as usize;
        assert_eq!(got.len() + gave_up, 80);
        assert_eq!(gave_up, 0, "retry budget outlasts 40% loss");
    }

    #[test]
    fn total_loss_gives_up_and_terminates() {
        let cfg = ReliableConfig {
            max_retries: 3,
            ..ReliableConfig::default()
        };
        let mut rt = pump_pair(5, cfg, FaultConfig::lossy(1.0), 3);
        rt.start();
        let quiescent = rt.run_with_limit(1_000_000);
        assert!(quiescent, "give-up cap must bound the retransmit schedule");
        assert_eq!(rt.node(1).inner().got.len(), 0);
        assert_eq!(rt.node(0).counters().gave_up, 5);
        assert_eq!(rt.node(0).pending_count(), 0);
        // 5 messages × (1 try + 3 retries) all dropped.
        assert_eq!(rt.stats().per_kind["num"].dropped, 20);
    }

    #[test]
    fn abandoned_holes_do_not_stall_the_window() {
        // Drop everything for a while, then heal the link: the `lo`
        // advertisement lets the receiver skip abandoned sequence numbers
        // and later traffic still flows.
        let cfg = ReliableConfig {
            window: 4,
            rto: 4,
            rto_max: 8,
            max_retries: 2,
        };
        let faults = FaultConfig {
            drop_prob: 0.55,
            duplicate_prob: 0.0,
            delay: DelayDist::Fixed(1),
        };
        let mut rt = pump_pair(120, cfg, faults, 11);
        rt.start();
        assert!(rt.run_with_limit(2_000_000));
        let gave_up = rt.node(0).counters().gave_up;
        assert!(gave_up > 0, "tight retry budget at 55% loss must abandon");
        let got = rt.node(1).inner().got.len() as u64;
        // Abandonment over-counts losses: a message whose acks were all
        // dropped is delivered *and* given up, so `gave_up` upper-bounds
        // the true losses rather than partitioning them.
        assert!(got + gave_up + rt.node(0).pending_count() >= 120);
        assert!(got <= 120);
        // The link kept making progress past every hole.
        assert!(got > 50, "only {got} of 120 delivered");
    }

    #[test]
    fn peer_crash_mid_window_drains_custody_within_retry_budget() {
        // Node 1 crash-leaves while node 0 still has a full window of
        // unacked flights plus backlog. The neighborhood-change callback
        // must abandon that custody immediately (retain_peers), later
        // sends to the vanished peer must die as non-neighbor sends, and
        // the whole schedule must quiesce — no retransmit loop may keep
        // chasing a dead link.
        let cfg = ReliableConfig {
            window: 4,
            rto: 4,
            rto_max: 16,
            max_retries: 3,
        };
        // Minimum delay 2: any copy transmitted in the two ticks before
        // the crash is still airborne when node 1 dies, so `link_lost`
        // is exercised structurally rather than by seed luck.
        let faults = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.0,
            delay: DelayDist::Uniform { min: 2, max: 5 },
        };
        let mut rt = pump_pair(40, cfg, faults, 13);
        rt.set_churn_plan(&ChurnPlan::new().crash(12, 1));
        rt.start();
        assert!(
            rt.run_with_limit(1_000_000),
            "dead-peer retries must exhaust, not spin"
        );
        assert_eq!(rt.member_state(1), MemberState::Dead);
        let src = rt.node(0);
        assert_eq!(src.pending_count(), 0, "custody ledger must drain");
        assert!(
            src.counters().gave_up > 0,
            "flights toward the dead peer must be abandoned"
        );
        // Only messages emitted before the crash ever reached node 1, and
        // each at most once.
        let mut got = rt.node(1).inner().got.clone();
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), rt.node(1).inner().got.len());
        assert!(got.len() < 40, "the crash must cut delivery short");
        // Copies in flight at the crash were charged to link_lost, not
        // delivered to the dead actor; post-crash sends died at the
        // non-neighbor check.
        assert!(rt.stats().link_lost > 0);
        assert!(rt.stats().non_neighbor_sends > 0);
        assert_eq!(rt.stats().crashes, 1);
    }

    #[test]
    fn retain_peers_counts_abandoned_custody() {
        let mut t: Transport<Num> = Transport::new(ReliableConfig::default());
        t.queue(1, Num(0));
        t.queue(1, Num(1));
        t.queue(2, Num(2));
        let mut ctx = Ctx::new(0, 0);
        t.flush(&mut ctx); // backlog becomes flights
        ctx.sends.clear();
        ctx.timers.clear();
        t.queue(1, Num(3)); // backlogged, never transmitted
        assert_eq!(t.pending_count(), 4);
        t.retain_peers(&[2]);
        assert_eq!(t.pending_count(), 1, "peer 2's flight survives");
        assert_eq!(t.counters().gave_up, 3, "peer 1: 2 flights + 1 backlog");
    }

    #[test]
    fn same_seed_same_replay() {
        let faults = FaultConfig {
            drop_prob: 0.3,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 5 },
        };
        let run = |seed| {
            let mut rt = pump_pair(60, ReliableConfig::default(), faults, seed);
            rt.start();
            rt.run();
            (rt.transcript().digest(), rt.stats().clone())
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9).0, run(10).0);
    }

    #[test]
    fn backoff_is_capped() {
        let cfg = ReliableConfig {
            rto: 16,
            rto_max: 100,
            ..ReliableConfig::default()
        };
        assert_eq!(cfg.backoff(0), 16);
        assert_eq!(cfg.backoff(1), 32);
        assert_eq!(cfg.backoff(2), 64);
        assert_eq!(cfg.backoff(3), 100);
        assert_eq!(cfg.backoff(60), 100);
    }

    #[test]
    fn ack_messages_are_bucketed_separately() {
        let mut rt = pump_pair(10, ReliableConfig::default(), FaultConfig::ideal(), 2);
        rt.start();
        rt.run();
        assert!(rt.stats().per_kind["ack"].sent > 0);
        assert_eq!(rt.stats().per_kind["num"].sent, 10);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn inner_timer_colliding_with_reserved_id_panics() {
        #[derive(Debug)]
        struct Bad;
        impl Actor for Bad {
            type Msg = Num;
            fn on_start(&mut self, ctx: &mut Ctx<Num>) {
                ctx.set_timer(1, RELIABLE_TIMER);
            }
            fn on_message(&mut self, _: &mut Ctx<Num>, _: u32, _: Num) {}
        }
        let nodes = vec![ReliableActor::new(
            Bad,
            ReliableConfig::default(),
            always as fn(&Num) -> bool,
        )];
        let mut rt = Runtime::new(nodes, &[Point::new(0.0, 0.0)], 1.0, FaultConfig::ideal(), 1);
        rt.start();
    }
}
