//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, seq)` where `seq` is the global insertion
//! order: two events scheduled for the same virtual time fire in the order
//! they were pushed. This makes every run a pure function of the initial
//! node set and the RNG seed — there is no hash-map iteration order, wall
//! clock, or thread interleaving anywhere in the hot path.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// A message arrives at `to`'s mailbox.
    Deliver {
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// Payload.
        msg: M,
    },
    /// A timer set by `node` fires.
    Timer {
        /// Owning node.
        node: u32,
        /// Node-chosen timer id, passed back to
        /// [`Actor::on_timer`](crate::Actor::on_timer).
        timer: u32,
    },
}

/// A scheduled event: virtual time plus a tie-breaking sequence number.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual firing time (ticks).
    pub time: u64,
    /// Global insertion order; breaks ties at equal `time`.
    pub seq: u64,
    /// The event itself.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Min-heap of events with deterministic tie-breaking and a high-water
/// depth counter (surfaced through
/// [`NetStats::max_queue_depth`](crate::NetStats)).
#[derive(Debug, Clone)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
    next_seq: u64,
    high_water: usize,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            high_water: 0,
        }
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute virtual time `time`.
    pub fn push(&mut self, time: u64, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// The earliest event, or `None` when quiescent.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Maximum queue depth observed so far.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_insertion() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(5, EventKind::Timer { node: 0, timer: 0 });
        q.push(3, EventKind::Timer { node: 1, timer: 0 });
        q.push(
            3,
            EventKind::Deliver {
                from: 0,
                to: 2,
                msg: 9,
            },
        );
        q.push(1, EventKind::Timer { node: 3, timer: 0 });
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| {
                let who = match e.kind {
                    EventKind::Timer { node, .. } => node,
                    EventKind::Deliver { to, .. } => to,
                };
                (e.time, who)
            })
            .collect();
        assert_eq!(order, vec![(1, 3), (3, 1), (3, 2), (5, 0)]);
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut q: EventQueue<()> = EventQueue::new();
        for t in 0..10 {
            q.push(t, EventKind::Timer { node: 0, timer: 0 });
        }
        for _ in 0..10 {
            q.pop();
        }
        assert!(q.is_empty());
        assert_eq!(q.high_water(), 10);
    }
}
