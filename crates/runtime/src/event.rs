//! Deterministic discrete-event queue with a canonical, layout-invariant
//! event order.
//!
//! Events are ordered by `(time, key)` where [`EventKey`] is derived
//! entirely from *who* the event belongs to and per-link / per-node
//! counters — never from global insertion order. Two runs that schedule
//! the same events therefore pop them in the same order **regardless of
//! how the queue is physically laid out**: one global queue, or one queue
//! per spatial shard with cross-shard events merged at epoch barriers.
//! That invariance is what lets the sharded executor reproduce the
//! sequential replay digest bit for bit.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::Arc;

/// Canonical tie-break key for events scheduled at the same tick.
///
/// Ordering is lexicographic `(node, class, src, seq)`:
///
/// * `node` — the owning node: the receiver of a delivery, the arming
///   node of a timer. All of one node's same-tick events are adjacent,
///   so per-node event streams are identical across execution layouts.
/// * `class` — [`CLASS_TIMER`] before [`CLASS_DELIVER`]: a node's timers
///   fire before its same-tick mailbox is drained.
/// * `src` — the sending node for deliveries (0 for timers): same-tick
///   arrivals are drained in sender order.
/// * `seq` — a per-directed-link copy counter for deliveries (fault-layer
///   duplicates get consecutive values) and a per-node arm counter for
///   timers. Both counters advance in the owner's deterministic local
///   order, so the key never depends on global scheduling history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Owning node (delivery receiver / timer owner).
    pub node: u32,
    /// Event class: [`CLASS_TIMER`] or [`CLASS_DELIVER`].
    pub class: u8,
    /// Sending node for deliveries, 0 for timers.
    pub src: u32,
    /// Per-directed-link copy counter (deliveries) or per-node arm
    /// counter (timers).
    pub seq: u64,
}

/// [`EventKey::class`] of timer firings (sorts before deliveries).
pub const CLASS_TIMER: u8 = 0;
/// [`EventKey::class`] of message deliveries.
pub const CLASS_DELIVER: u8 = 1;

impl EventKey {
    /// Key for a timer armed by `node` as its `seq`-th arm.
    pub fn timer(node: u32, seq: u64) -> Self {
        EventKey {
            node,
            class: CLASS_TIMER,
            src: 0,
            seq,
        }
    }

    /// Key for the `seq`-th copy sent on the directed link `from → to`.
    pub fn deliver(from: u32, to: u32, seq: u64) -> Self {
        EventKey {
            node: to,
            class: CLASS_DELIVER,
            src: from,
            seq,
        }
    }
}

/// A delivery payload: owned for unicasts, reference-counted for
/// broadcast fan-out so one broadcast costs one allocation instead of a
/// deep clone per neighbor (the per-neighbor clones dominated large-run
/// profiles). The `Debug` rendering delegates to `M` byte for byte —
/// transcript records (and therefore replay digests) cannot tell the two
/// representations apart.
#[derive(Clone)]
pub enum Payload<M> {
    /// A payload with a single addressee (unicast copy).
    Own(M),
    /// One broadcast's payload, shared by every per-neighbor copy. The
    /// last surviving copy unwraps the `Arc` and moves the message;
    /// earlier copies clone at delivery time — so copies dropped by the
    /// fault layer never pay for a clone at all.
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    /// Borrow the message.
    pub fn get(&self) -> &M {
        match self {
            Payload::Own(m) => m,
            Payload::Shared(m) => m,
        }
    }

    /// Take the message, cloning only if other copies still share it.
    pub fn into_msg(self) -> M
    where
        M: Clone,
    {
        match self {
            Payload::Own(m) => m,
            Payload::Shared(m) => Arc::try_unwrap(m).unwrap_or_else(|m| (*m).clone()),
        }
    }
}

impl<M: fmt::Debug> fmt::Debug for Payload<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.get().fmt(f)
    }
}

/// What happens when an event fires.
#[derive(Debug, Clone)]
pub enum EventKind<M> {
    /// A message arrives at the owner's mailbox (sender in
    /// [`EventKey::src`]).
    Deliver {
        /// Payload (owned or broadcast-shared).
        msg: Payload<M>,
    },
    /// A timer set by the owner fires.
    Timer {
        /// Node-chosen timer id, passed back to
        /// [`Actor::on_timer`](crate::Actor::on_timer).
        timer: u32,
    },
}

/// A scheduled event: virtual time plus its canonical key.
#[derive(Debug, Clone)]
pub struct Event<M> {
    /// Virtual firing time (ticks).
    pub time: u64,
    /// Canonical tie-break key.
    pub key: EventKey,
    /// The event itself.
    pub kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.key == other.key
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.key).cmp(&(other.time, other.key))
    }
}

/// Min-heap of events ordered by `(time, key)`.
#[derive(Debug, Clone)]
pub struct EventQueue<M> {
    heap: BinaryHeap<Reverse<Event<M>>>,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at absolute virtual time `time` under `key`.
    pub fn push(&mut self, time: u64, key: EventKey, kind: EventKind<M>) {
        self.heap.push(Reverse(Event { time, key, kind }));
    }

    /// Insert an already-built event (cross-shard routing).
    pub fn insert(&mut self, ev: Event<M>) {
        self.heap.push(Reverse(ev));
    }

    /// The earliest event, or `None` when quiescent.
    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Firing time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True iff no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_canonical_key() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(5, EventKey::timer(0, 0), EventKind::Timer { timer: 0 });
        q.push(
            3,
            EventKey::deliver(0, 2, 0),
            EventKind::Deliver {
                msg: Payload::Own(9),
            },
        );
        q.push(3, EventKey::timer(1, 0), EventKind::Timer { timer: 0 });
        q.push(1, EventKey::timer(3, 0), EventKind::Timer { timer: 0 });
        let order: Vec<(u64, u32)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time, e.key.node))
            .collect();
        assert_eq!(order, vec![(1, 3), (3, 1), (3, 2), (5, 0)]);
    }

    /// Same-tick events for one node: timers fire before deliveries,
    /// deliveries drain in `(sender, link seq)` order.
    #[test]
    fn same_tick_same_node_is_timer_then_sender_then_link_seq() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(
            4,
            EventKey::deliver(7, 2, 1),
            EventKind::Deliver {
                msg: Payload::Own(3),
            },
        );
        q.push(
            4,
            EventKey::deliver(5, 2, 0),
            EventKind::Deliver {
                msg: Payload::Own(1),
            },
        );
        q.push(4, EventKey::timer(2, 9), EventKind::Timer { timer: 1 });
        q.push(
            4,
            EventKey::deliver(7, 2, 0),
            EventKind::Deliver {
                msg: Payload::Own(2),
            },
        );
        let keys: Vec<EventKey> = std::iter::from_fn(|| q.pop()).map(|e| e.key).collect();
        assert_eq!(
            keys,
            vec![
                EventKey::timer(2, 9),
                EventKey::deliver(5, 2, 0),
                EventKey::deliver(7, 2, 0),
                EventKey::deliver(7, 2, 1),
            ]
        );
    }

    /// The order is a pure function of `(time, key)` — pushing the same
    /// events in any permutation pops them identically. This is the
    /// property the sharded executor's digest stability rests on.
    #[test]
    fn pop_order_is_insertion_invariant() {
        let events = [
            (2, EventKey::deliver(0, 1, 0)),
            (2, EventKey::deliver(1, 0, 0)),
            (1, EventKey::timer(1, 4)),
            (3, EventKey::deliver(0, 1, 1)),
            (2, EventKey::timer(0, 0)),
        ];
        let drain = |idx: &[usize]| {
            let mut q: EventQueue<()> = EventQueue::new();
            for &i in idx {
                let (t, k) = events[i];
                q.push(t, k, EventKind::Timer { timer: 0 });
            }
            std::iter::from_fn(|| q.pop())
                .map(|e| (e.time, e.key))
                .collect::<Vec<_>>()
        };
        let a = drain(&[0, 1, 2, 3, 4]);
        let b = drain(&[4, 3, 2, 1, 0]);
        let c = drain(&[2, 4, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }
}
