//! Byzantine adversary subsystem: seeded plans of lying, stealing, and
//! equivocating nodes, run through a digest-stable interposer.
//!
//! Theorem 3.1 proves `(T, γ)`-balancing competitive under fully
//! adversarial edge activations, costs, and injections — but it silently
//! assumes every node *reports its buffer heights honestly*. A node that
//! lies can invert the potential-function argument: advertising height 0
//! attracts every neighbor's packets (then steals or overflows them),
//! advertising ∞ repels all traffic and starves links, and telling
//! different neighbors different things corrupts the gradient itself.
//! This module makes those attacks first-class and measurable:
//!
//! * an [`AdversaryPlan`] (mirroring [`crate::ChurnPlan`]) schedules
//!   which nodes turn Byzantine, when, and with which composable
//!   [`Attack`] behaviors;
//! * [`AdversarialActor`] wraps any protocol actor whose message type
//!   implements [`AdversaryTarget`] and applies the node's active
//!   attacks to its *wire interface* — outgoing frames are forged,
//!   targeted incoming data frames are consumed — while the inner actor
//!   runs unmodified (a compromised node still executes the honest
//!   protocol; the adversary owns its radio, not its code);
//! * consumed packets are booked as [`Custody::Stolen`] /
//!   [`Custody::Blackholed`] so the conservation ledger stays exact:
//!   stolen traffic is *visible*, never silently vanished.
//!
//! Every behavior is a pure function of `(node, time, message, sender)`
//! over deterministic local state — no RNG, no wall clock — so
//! adversarial runs replay bit-identically at every shard-thread count,
//! exactly like honest ones. With an empty plan the interposer hands the
//! inner actor the runtime's own effect buffer, making the wrapper a
//! true no-op: byte-identical transcripts, pinned by the golden-fixture
//! regression suite.
//!
//! The matching defense layer (height plausibility, starvation probing,
//! and cross-neighbor attestation feeding a quarantine score) lives in
//! the protocol itself — see [`crate::gossip::DefenseConfig`] — because
//! defending is a *protocol* concern: the runtime only makes attacking
//! reproducible.

use crate::gossip::DedupWindow;
use crate::node::{Actor, Ctx, Message};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::fmt;

/// One composable Byzantine behavior. Attacks forge the node's *wire*
/// traffic; the inner protocol actor keeps running honestly and never
/// learns it is compromised.
#[derive(Debug, Clone, PartialEq)]
pub enum Attack {
    /// Height deflation: every outgoing control frame advertises height
    /// 0 for every destination, attracting neighbors' packets. With
    /// `blackhole`, incoming data frames are eaten before the inner
    /// actor sees them ([`Custody::Stolen`]); without it they pile into
    /// the honest buffer until it genuinely overflows.
    Deflate {
        /// Steal attracted packets instead of letting them overflow.
        blackhole: bool,
    },
    /// Height inflation: advertise `u32::MAX` everywhere, repelling all
    /// traffic and starving the node's links. Caught by the defense's
    /// capacity plausibility check — honest heights never exceed the
    /// configured buffer capacity.
    Inflate,
    /// Stale replay: freeze the first control frame emitted after
    /// activation and re-gossip its contents forever, re-stamped with
    /// the current step so the receiver's step-stamp ordering check
    /// (which only refuses *older* stamps) is defeated from within its
    /// tolerance.
    Replay,
    /// Selective drop: control traffic passes through untouched, but
    /// data frames arriving from the listed link-level senders are eaten
    /// ([`Custody::Blackholed`]). The stealthiest attack: the node's
    /// advertised heights stay honest.
    SelectiveDrop {
        /// Link-level senders whose data frames are dropped.
        sources: Vec<u32>,
    },
    /// Equivocation: tell different neighbors different heights (zeros
    /// to even node ids, `u32::MAX` to odd ones), corrupting the
    /// gradient inconsistently. Only unicast control frames are
    /// differentiated — a radio broadcast is one transmission and
    /// cannot per-receiver equivocate. Caught by signed-digest
    /// attestation among common neighbors.
    Equivocate,
}

/// One scheduled compromise: `node` activates `attack` at virtual time
/// `at` (and keeps it forever — Byzantine nodes do not repent).
#[derive(Debug, Clone, PartialEq)]
pub struct AdversaryEntry {
    /// Virtual activation time.
    pub at: u64,
    /// The compromised node.
    pub node: u32,
    /// The behavior it activates.
    pub attack: Attack,
}

/// A declarative schedule of compromises, mirroring
/// [`crate::ChurnPlan`]: build with the chainable constructors or
/// [`AdversaryPlan::random`], then hand it to
/// [`crate::gossip::run_gossip_balancing_adversarial`]. Multiple
/// attacks on one node compose in activation order. Unlike churn
/// entries, activation times need no lookahead snapping: an attack is a
/// pure function of `(time, message, sender)`, so both executors apply
/// it identically wherever the time falls.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdversaryPlan {
    entries: Vec<AdversaryEntry>,
}

impl AdversaryPlan {
    /// An empty plan (every node honest).
    pub fn new() -> Self {
        AdversaryPlan::default()
    }

    /// Schedule `node` to start deflating at `at`.
    pub fn deflate(mut self, at: u64, node: u32, blackhole: bool) -> Self {
        self.entries.push(AdversaryEntry {
            at,
            node,
            attack: Attack::Deflate { blackhole },
        });
        self
    }

    /// Schedule `node` to start inflating at `at`.
    pub fn inflate(mut self, at: u64, node: u32) -> Self {
        self.entries.push(AdversaryEntry {
            at,
            node,
            attack: Attack::Inflate,
        });
        self
    }

    /// Schedule `node` to start replaying stale control frames at `at`.
    pub fn replay(mut self, at: u64, node: u32) -> Self {
        self.entries.push(AdversaryEntry {
            at,
            node,
            attack: Attack::Replay,
        });
        self
    }

    /// Schedule `node` to start dropping data from `sources` at `at`.
    pub fn selective_drop(mut self, at: u64, node: u32, sources: Vec<u32>) -> Self {
        self.entries.push(AdversaryEntry {
            at,
            node,
            attack: Attack::SelectiveDrop { sources },
        });
        self
    }

    /// Schedule `node` to start equivocating at `at`.
    pub fn equivocate(mut self, at: u64, node: u32) -> Self {
        self.entries.push(AdversaryEntry {
            at,
            node,
            attack: Attack::Equivocate,
        });
        self
    }

    /// The scheduled entries, in insertion order.
    pub fn entries(&self) -> &[AdversaryEntry] {
        &self.entries
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The distinct compromised nodes, sorted.
    pub fn compromised(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.entries.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// Panics if any entry references a node outside `0..n`.
    pub fn validate(&self, n: usize) {
        for e in &self.entries {
            assert!(
                (e.node as usize) < n,
                "adversary plan references node {} but only {n} nodes exist",
                e.node
            );
        }
    }

    /// This node's attack schedule, `(activation time, attack)` sorted
    /// by time (stable: simultaneous attacks compose in plan order).
    pub fn for_node(&self, node: u32) -> Vec<(u64, Attack)> {
        let mut attacks: Vec<(u64, Attack)> = self
            .entries
            .iter()
            .filter(|e| e.node == node)
            .map(|e| (e.at, e.attack.clone()))
            .collect();
        attacks.sort_by_key(|&(at, _)| at);
        attacks
    }

    /// A seeded plan compromising `count` distinct nodes of `0..n`
    /// (never one listed in `protect` — e.g. the traffic sink), each
    /// activating a clone of `attack` at time `at`. The same seed always
    /// yields the same plan.
    pub fn random(
        n: usize,
        count: usize,
        attack: Attack,
        at: u64,
        protect: &[u32],
        seed: u64,
    ) -> Self {
        let mut pool: Vec<u32> = (0..n as u32).filter(|v| !protect.contains(v)).collect();
        assert!(
            count <= pool.len(),
            "cannot compromise {count} of {} eligible nodes",
            pool.len()
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut plan = AdversaryPlan::new();
        for i in 0..count {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
            plan.entries.push(AdversaryEntry {
                at,
                node: pool[i],
                attack: attack.clone(),
            });
        }
        plan
    }
}

/// How a consumed (never-delivered) data frame is booked in the
/// conservation ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Custody {
    /// Eaten by a deflating blackhole that *attracted* the packet.
    Stolen,
    /// Dropped by a selective forwarder the packet merely passed.
    Blackholed,
}

/// The protocol-side hook [`AdversarialActor`] needs to attack a message
/// alphabet: which frames are control vs. data, and how each [`Attack`]
/// forges or consumes them. Implemented by the protocol (see the
/// [`crate::gossip::GossipMsg`] impl) so the interposer itself stays
/// message-agnostic.
pub trait AdversaryTarget: Message {
    /// True for control-plane frames (state advertisements) — the forge
    /// and replay targets.
    fn is_control(&self) -> bool;

    /// True for data-plane frames — the theft targets.
    fn is_data(&self) -> bool;

    /// Data frames' per-sender sequence number, used by the interposer
    /// to refuse duplicate fault-layer copies before booking a theft
    /// (exactly mirroring the honest receiver's dedup, so `stolen` never
    /// double-counts).
    fn data_seq(&self) -> Option<u32>;

    /// The forged replacement this attack emits instead of `self` toward
    /// receiver `to` (`u32::MAX` for broadcasts), or `None` when the
    /// attack leaves this frame untouched.
    fn forged(&self, attack: &Attack, to: u32) -> Option<Self>;

    /// Rebuild `self` with the *contents* of the `frozen` capture but
    /// `self`'s own freshness stamp ([`Attack::Replay`]).
    fn restamped(&self, frozen: &Self) -> Self;

    /// `Some(custody)` when this attack eats an incoming frame from
    /// link-level sender `from` instead of delivering it.
    fn consumed(&self, attack: &Attack, from: u32) -> Option<Custody>;
}

/// Interposer between the runtime and a protocol actor, applying a
/// node's scheduled [`Attack`]s to its wire traffic. With no attacks
/// scheduled the inner actor runs against the runtime's own effect
/// buffer — a true zero-cost, byte-identical pass-through.
pub struct AdversarialActor<A: Actor> {
    inner: A,
    /// `(activation time, attack)`, sorted by time.
    attacks: Vec<(u64, Attack)>,
    /// [`Attack::Replay`]'s captured control frame.
    frozen: Option<A::Msg>,
    /// Refuse duplicate data copies before booking a theft (set for
    /// fire-and-forget runs, where the fault layer can duplicate; a
    /// reliable transport below us already delivers exactly-once).
    dedup: bool,
    /// Per-sender dedup windows (tracking *all* inbound data from
    /// activation-capable senders, so a copy first seen honest can't be
    /// re-booked as stolen after activation).
    seen: BTreeMap<u32, DedupWindow>,
    stolen: u64,
    blackholed: u64,
}

impl<A> AdversarialActor<A>
where
    A: Actor,
    A::Msg: AdversaryTarget,
{
    /// Wrap `inner` with an attack schedule (from
    /// [`AdversaryPlan::for_node`]); `dedup` must be true iff duplicate
    /// link-layer copies can reach this actor (fire-and-forget faults).
    pub fn new(inner: A, mut attacks: Vec<(u64, Attack)>, dedup: bool) -> Self {
        attacks.sort_by_key(|&(at, _)| at);
        AdversarialActor {
            inner,
            attacks,
            frozen: None,
            dedup,
            seen: BTreeMap::new(),
            stolen: 0,
            blackholed: 0,
        }
    }

    /// The wrapped protocol actor.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// True if this node has any attack scheduled (now or later).
    pub fn compromised(&self) -> bool {
        !self.attacks.is_empty()
    }

    /// Data frames eaten as [`Custody::Stolen`] so far.
    pub fn stolen(&self) -> u64 {
        self.stolen
    }

    /// Data frames eaten as [`Custody::Blackholed`] so far.
    pub fn blackholed(&self) -> u64 {
        self.blackholed
    }

    /// Pass one outgoing frame through every active attack, in
    /// activation order.
    fn forge(&mut self, now: u64, to: u32, msg: A::Msg) -> A::Msg {
        let AdversarialActor {
            attacks, frozen, ..
        } = self;
        let mut m = msg;
        for (at, attack) in attacks.iter() {
            if *at > now {
                break; // sorted: nothing later is active either
            }
            if matches!(attack, Attack::Replay) {
                if m.is_control() {
                    let f = frozen.get_or_insert_with(|| m.clone());
                    m = m.restamped(f);
                }
            } else if let Some(f) = m.forged(attack, to) {
                m = f;
            }
        }
        m
    }

    /// Run one inner callback. Honest nodes use the runtime's own effect
    /// buffer (exact pass-through); compromised ones get a private
    /// buffer whose effects are forged on the way out.
    fn deliver(&mut self, ctx: &mut Ctx<A::Msg>, f: impl FnOnce(&mut A, &mut Ctx<A::Msg>)) {
        if self.attacks.is_empty() {
            f(&mut self.inner, ctx);
            return;
        }
        let now = ctx.now();
        let mut ic = Ctx::new(ctx.id(), now);
        f(&mut self.inner, &mut ic);
        let Ctx {
            sends,
            broadcasts,
            timers,
            ..
        } = ic;
        for (to, m) in sends {
            let m = self.forge(now, to, m);
            ctx.send(to, m);
        }
        for m in broadcasts {
            let m = self.forge(now, u32::MAX, m);
            ctx.broadcast(m);
        }
        for (at, id) in timers {
            ctx.set_timer(at.saturating_sub(now), id);
        }
    }
}

impl<A> fmt::Debug for AdversarialActor<A>
where
    A: Actor + fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AdversarialActor")
            .field("inner", &self.inner)
            .field("attacks", &self.attacks)
            .field("stolen", &self.stolen)
            .field("blackholed", &self.blackholed)
            .finish_non_exhaustive()
    }
}

impl<A> Actor for AdversarialActor<A>
where
    A: Actor,
    A::Msg: AdversaryTarget,
{
    type Msg = A::Msg;

    fn on_start(&mut self, ctx: &mut Ctx<Self::Msg>) {
        self.deliver(ctx, |a, ic| a.on_start(ic));
    }

    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: u32, msg: Self::Msg) {
        if !self.attacks.is_empty() && msg.is_data() {
            // Dedup *before* consumption, from t = 0: a duplicate of a
            // copy that passed through honestly before activation must
            // be silently refused (as the inner dedup would), not booked
            // as a theft.
            if self.dedup {
                if let Some(seq) = msg.data_seq() {
                    if !self.seen.entry(from).or_default().accept(seq) {
                        return;
                    }
                }
            }
            let now = ctx.now();
            for (at, attack) in &self.attacks {
                if *at > now {
                    break;
                }
                if let Some(custody) = msg.consumed(attack, from) {
                    match custody {
                        Custody::Stolen => self.stolen += 1,
                        Custody::Blackholed => self.blackholed += 1,
                    }
                    return; // eaten: the inner actor never sees it
                }
            }
        }
        self.deliver(ctx, |a, ic| a.on_message(ic, from, msg));
    }

    fn on_timer(&mut self, ctx: &mut Ctx<Self::Msg>, timer: u32) {
        self.deliver(ctx, |a, ic| a.on_timer(ic, timer));
    }

    fn on_neighborhood_change(
        &mut self,
        ctx: &mut Ctx<Self::Msg>,
        neighbors: &[u32],
        pos: adhoc_geom::Point,
    ) {
        self.deliver(ctx, |a, ic| a.on_neighborhood_change(ic, neighbors, pos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_for_node_sort_by_activation_time() {
        let plan = AdversaryPlan::new()
            .inflate(50, 2)
            .deflate(10, 2, true)
            .equivocate(20, 1)
            .replay(10, 2);
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.compromised(), vec![1, 2]);
        let n2 = plan.for_node(2);
        assert_eq!(n2.len(), 3);
        assert_eq!(n2[0], (10, Attack::Deflate { blackhole: true }));
        // Stable at equal times: plan order preserved.
        assert_eq!(n2[1], (10, Attack::Replay));
        assert_eq!(n2[2], (50, Attack::Inflate));
        assert!(plan.for_node(0).is_empty());
    }

    #[test]
    fn random_plans_are_reproducible_and_respect_protection() {
        for seed in 0..20 {
            let plan = AdversaryPlan::random(30, 6, Attack::Inflate, 100, &[0, 5], seed);
            assert_eq!(
                plan,
                AdversaryPlan::random(30, 6, Attack::Inflate, 100, &[0, 5], seed)
            );
            let nodes = plan.compromised();
            assert_eq!(nodes.len(), 6, "distinct nodes");
            assert!(!nodes.contains(&0) && !nodes.contains(&5));
            plan.validate(30);
        }
        assert_ne!(
            AdversaryPlan::random(30, 6, Attack::Inflate, 100, &[], 1),
            AdversaryPlan::random(30, 6, Attack::Inflate, 100, &[], 2)
        );
    }

    #[test]
    #[should_panic(expected = "only 3 nodes exist")]
    fn out_of_range_node_is_rejected() {
        AdversaryPlan::new().inflate(1, 7).validate(3);
    }

    #[test]
    #[should_panic(expected = "cannot compromise")]
    fn random_rejects_overfull_counts() {
        AdversaryPlan::random(4, 4, Attack::Inflate, 1, &[0], 1);
    }
}
