//! Churn and mobility: scheduled membership/geometry perturbations.
//!
//! A [`ChurnPlan`] is a seeded, declarative list of perturbations — node
//! joins (at a position), graceful leaves, crash leaves, and waypoint
//! drifts — that the runtime injects during execution
//! ([`crate::Runtime::set_churn_plan`]). Determinism is preserved by
//! construction:
//!
//! * every churn time is **snapped up to a lookahead-window boundary**
//!   (`ceil(t / L) · L` where `L` is the fault model's minimum link
//!   delay), so a perturbation never lands inside a sharded-execution
//!   epoch — both executors apply it at the exact same cut between
//!   windows;
//! * the plan is validated up front by a per-node state machine
//!   (join-before-anything-else, no rejoin, no events after departure),
//!   so mid-run surprises are impossible;
//! * the batch of entries applied at one boundary, the recomputed
//!   neighbor rows, and the affected-node set are computed once by the
//!   coordinating runtime and applied identically everywhere
//!   ([`ChurnDelta`]).
//!
//! Membership is tracked per node ([`MemberState`]): `Pending` nodes have
//! not joined yet (no `on_start`, excluded from every neighbor row),
//! `Draining` nodes left gracefully (out of the topology but still
//! processing their queued events), `Dead` nodes crashed — events
//! addressed to them are accounted (`link_lost` / `timers_abandoned`)
//! instead of delivered.

use adhoc_geom::{GridIndex, Point};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// One kind of perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnKind {
    /// The node joins the network at this position. Must be the node's
    /// first (and only) appearance in the plan; until then the node is
    /// [`MemberState::Pending`].
    Join(Point),
    /// Graceful leave: the node departs the topology but keeps processing
    /// events already queued for it ([`MemberState::Draining`]).
    Leave,
    /// Crash leave: the node dies instantly ([`MemberState::Dead`]);
    /// in-flight messages to it are counted as `link_lost`, its pending
    /// timers as `timers_abandoned`.
    Crash,
    /// Waypoint drift: the node teleports to this position (one waypoint
    /// hop of a mobility trace).
    Drift(Point),
}

/// One scheduled perturbation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEntry {
    /// Requested virtual time (snapped up to a lookahead boundary when
    /// the plan is installed).
    pub at: u64,
    /// The node perturbed.
    pub node: u32,
    /// What happens to it.
    pub kind: ChurnKind,
}

/// A declarative churn/mobility schedule. Build one with the chainable
/// constructors or [`ChurnPlan::random`], then install it with
/// [`crate::Runtime::set_churn_plan`] before `start()`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnPlan {
    entries: Vec<ChurnEntry>,
}

impl ChurnPlan {
    /// An empty plan (no churn).
    pub fn new() -> Self {
        ChurnPlan::default()
    }

    /// Schedule `node` to join at position `pos` around time `at`.
    pub fn join(mut self, at: u64, node: u32, pos: Point) -> Self {
        self.entries.push(ChurnEntry {
            at,
            node,
            kind: ChurnKind::Join(pos),
        });
        self
    }

    /// Schedule a graceful leave of `node` around time `at`.
    pub fn leave(mut self, at: u64, node: u32) -> Self {
        self.entries.push(ChurnEntry {
            at,
            node,
            kind: ChurnKind::Leave,
        });
        self
    }

    /// Schedule a crash of `node` around time `at`.
    pub fn crash(mut self, at: u64, node: u32) -> Self {
        self.entries.push(ChurnEntry {
            at,
            node,
            kind: ChurnKind::Crash,
        });
        self
    }

    /// Schedule `node` to drift to `pos` around time `at`.
    pub fn drift(mut self, at: u64, node: u32, pos: Point) -> Self {
        self.entries.push(ChurnEntry {
            at,
            node,
            kind: ChurnKind::Drift(pos),
        });
        self
    }

    /// The scheduled entries, in insertion order.
    pub fn entries(&self) -> &[ChurnEntry] {
        &self.entries
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Compile a sampled mobility trace into a drift plan.
    ///
    /// `frames[k]` holds every node's position at sample `k` of a
    /// continuous mobility model (e.g. the random-waypoint trajectories
    /// of experiment E11): `frames[0]` is the initial placement the
    /// runtime is constructed with (nothing is scheduled for it), and
    /// each later frame becomes one batch of [`ChurnKind::Drift`]
    /// entries at time `start + k · every` — only for the nodes that
    /// actually moved since the previous frame, so a parked node costs
    /// nothing. The result replays continuous mobility through the same
    /// deterministic churn machinery as hand-written plans.
    ///
    /// Panics if `frames` is empty, the frames disagree on node count,
    /// or `every == 0`.
    pub fn from_waypoint_trace(frames: &[Vec<Point>], start: u64, every: u64) -> Self {
        assert!(
            !frames.is_empty(),
            "waypoint trace needs at least one frame"
        );
        assert!(every >= 1, "frame spacing must be ≥ 1 tick");
        let n = frames[0].len();
        let mut plan = ChurnPlan::new();
        for (k, frame) in frames.iter().enumerate().skip(1) {
            assert_eq!(
                frame.len(),
                n,
                "frame {k} has {} nodes, frame 0 has {n}",
                frame.len()
            );
            let at = start + k as u64 * every;
            for (node, (&pos, &prev)) in frame.iter().zip(&frames[k - 1]).enumerate() {
                if pos != prev {
                    plan = plan.drift(at, node as u32, pos);
                }
            }
        }
        plan
    }

    /// A seeded random plan over a network of `alive + spares` nodes:
    /// nodes `0..alive` start in the network, nodes `alive..alive+spares`
    /// start [`MemberState::Pending`] and may join later. `events`
    /// perturbations are drawn at uniform times in `[1, horizon]`:
    /// roughly 20% joins (while spares remain), 10% graceful leaves and
    /// 10% crashes (while more than two nodes are up), the rest waypoint
    /// drifts to uniform positions in `[0, span]²`. The same seed always
    /// yields the same plan.
    pub fn random(
        alive: usize,
        spares: usize,
        span: f64,
        horizon: u64,
        events: usize,
        seed: u64,
    ) -> Self {
        assert!(alive >= 1, "need at least one initially-alive node");
        assert!(span.is_finite() && span > 0.0, "span must be positive");
        let n = alive + spares;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // 0 = pending spare, 1 = alive, 2 = departed.
        let mut state: Vec<u8> = (0..n).map(|i| u8::from(i < alive)).collect();
        let mut up = alive;
        let mut times: Vec<u64> = (0..events)
            .map(|_| rng.gen_range(1..=horizon.max(1)))
            .collect();
        times.sort_unstable();
        let pick = |state: &[u8], want: u8, rng: &mut ChaCha8Rng| -> Option<u32> {
            let pool: Vec<u32> = state
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s == want)
                .map(|(i, _)| i as u32)
                .collect();
            if pool.is_empty() {
                None
            } else {
                Some(pool[rng.gen_range(0..pool.len())])
            }
        };
        let mut plan = ChurnPlan::new();
        for at in times {
            let r: f64 = rng.gen();
            if r < 0.2 {
                if let Some(node) = pick(&state, 0, &mut rng) {
                    let pos = Point::new(rng.gen::<f64>() * span, rng.gen::<f64>() * span);
                    state[node as usize] = 1;
                    up += 1;
                    plan = plan.join(at, node, pos);
                    continue;
                }
            } else if r < 0.4 && up > 2 {
                let node = pick(&state, 1, &mut rng).expect("up > 2 implies an alive node");
                state[node as usize] = 2;
                up -= 1;
                plan = if r < 0.3 {
                    plan.leave(at, node)
                } else {
                    plan.crash(at, node)
                };
                continue;
            }
            if let Some(node) = pick(&state, 1, &mut rng) {
                let pos = Point::new(rng.gen::<f64>() * span, rng.gen::<f64>() * span);
                plan = plan.drift(at, node, pos);
            }
        }
        plan
    }
}

/// Membership state of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Scheduled to join later: no `on_start`, absent from every
    /// neighbor row, receives nothing.
    Pending,
    /// In the network.
    Alive,
    /// Left gracefully: out of the topology (its row is empty and no row
    /// contains it) but still processing events already queued for it.
    Draining,
    /// Crashed: events addressed to it are accounted as losses instead
    /// of delivered.
    Dead,
}

impl MemberState {
    /// Whether this node still executes callbacks.
    pub fn processes_events(self) -> bool {
        matches!(self, MemberState::Alive | MemberState::Draining)
    }
}

/// The plan, compiled against a concrete runtime: snapped times, initial
/// membership, and spawn positions for future joiners.
pub(crate) struct PlannedChurn {
    pub(crate) schedule: ChurnSchedule,
    pub(crate) membership: Vec<MemberState>,
    /// `(node, position)` for every join entry: joiners sit at their
    /// spawn position from t = 0 for spatial shard partitioning.
    pub(crate) spawn_positions: Vec<(u32, Point)>,
}

/// Validate `plan` against an `n`-node runtime and snap every entry time
/// up to a multiple of `lookahead`. Panics with a clear message on an
/// inconsistent plan (out-of-range node, rejoin, events after departure,
/// drift before join).
pub(crate) fn plan_churn(plan: &ChurnPlan, n: usize, lookahead: u64) -> PlannedChurn {
    let lookahead = lookahead.max(1);
    let mut items: Vec<(u64, ChurnEntry)> = plan
        .entries
        .iter()
        .map(|&e| (e.at.max(1).div_ceil(lookahead) * lookahead, e))
        .collect();
    // Stable: entries snapped to the same boundary apply in plan order.
    items.sort_by_key(|&(at, _)| at);

    let mut membership = vec![MemberState::Alive; n];
    for (_, e) in &items {
        assert!(
            (e.node as usize) < n,
            "churn plan references node {} but only {n} nodes exist",
            e.node
        );
        if matches!(e.kind, ChurnKind::Join(_)) {
            membership[e.node as usize] = MemberState::Pending;
        }
    }

    let mut state = membership.clone();
    let mut spawn_positions = Vec::new();
    for (_, e) in &items {
        let s = &mut state[e.node as usize];
        match e.kind {
            ChurnKind::Join(pos) => {
                assert!(
                    *s == MemberState::Pending,
                    "node {} joins twice or joins after other events",
                    e.node
                );
                *s = MemberState::Alive;
                spawn_positions.push((e.node, pos));
            }
            ChurnKind::Leave | ChurnKind::Crash => {
                assert!(
                    *s == MemberState::Alive,
                    "node {} leaves while not alive (state {:?})",
                    e.node,
                    *s
                );
                *s = MemberState::Dead;
            }
            ChurnKind::Drift(_) => {
                assert!(
                    *s == MemberState::Alive,
                    "node {} drifts while not alive (state {:?})",
                    e.node,
                    *s
                );
            }
        }
    }

    PlannedChurn {
        schedule: ChurnSchedule { items, cursor: 0 },
        membership,
        spawn_positions,
    }
}

/// The compiled, time-sorted churn schedule a runtime walks during a run.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChurnSchedule {
    /// `(snapped time, entry)` sorted by time, plan order within a time.
    items: Vec<(u64, ChurnEntry)>,
    cursor: usize,
}

impl ChurnSchedule {
    /// Time of the next pending batch, if any.
    pub(crate) fn peek_time(&self) -> Option<u64> {
        self.items.get(self.cursor).map(|&(at, _)| at)
    }

    /// Take every entry scheduled at the next pending time.
    pub(crate) fn take_batch(&mut self) -> (u64, Vec<ChurnEntry>) {
        let at = self.peek_time().expect("take_batch on an empty schedule");
        let mut batch = Vec::new();
        while let Some(&(t, e)) = self.items.get(self.cursor) {
            if t != at {
                break;
            }
            batch.push(e);
            self.cursor += 1;
        }
        (at, batch)
    }

    /// The last (snapped) perturbation time in the schedule; 0 if empty.
    pub(crate) fn last_time(&self) -> u64 {
        self.items.last().map_or(0, |&(at, _)| at)
    }
}

/// Everything one churn batch changes, computed once by the coordinating
/// runtime and applied identically by every executor: the entries, the
/// neighbor rows that changed, and the `(node, new position)` pairs that
/// must re-converge (`on_neighborhood_change`).
#[derive(Debug, Clone)]
pub(crate) struct ChurnDelta {
    /// The (snapped) time the batch applies at.
    pub(crate) time: u64,
    /// The entries of the batch, in plan order.
    pub(crate) entries: Vec<ChurnEntry>,
    /// Neighbor rows that changed, `(node, new row)`, sorted by node.
    pub(crate) rows: Vec<(u32, Vec<u32>)>,
    /// Live nodes whose one-hop world changed (row membership or a
    /// neighbor's position), with their current position; sorted by node.
    pub(crate) affected: Vec<(u32, Point)>,
}

/// Recompute every node's radio-neighbor row from current positions and
/// membership: only [`MemberState::Alive`] nodes appear in rows, and only
/// they get a non-empty row.
pub(crate) fn rebuild_neighbors(
    positions: &[Point],
    membership: &[MemberState],
    range: f64,
) -> Vec<Vec<u32>> {
    let n = positions.len();
    let mut rows = vec![Vec::new(); n];
    if n == 0 {
        return rows;
    }
    let grid = GridIndex::build(positions, range);
    for u in 0..n as u32 {
        if membership[u as usize] != MemberState::Alive {
            continue;
        }
        grid.for_each_within(positions[u as usize], range, |v| {
            if v != u && membership[v as usize] == MemberState::Alive {
                rows[u as usize].push(v);
            }
        });
        rows[u as usize].sort_unstable();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_snap_up_to_lookahead_boundaries() {
        let plan = ChurnPlan::new()
            .drift(0, 0, Point::new(1.0, 0.0))
            .drift(5, 0, Point::new(2.0, 0.0))
            .drift(8, 0, Point::new(3.0, 0.0));
        let planned = plan_churn(&plan, 2, 4);
        let times: Vec<u64> = planned.schedule.items.iter().map(|&(t, _)| t).collect();
        assert_eq!(times, [4, 8, 8], "0→4 (never at t=0), 5→8, 8 stays");
    }

    #[test]
    fn batches_group_entries_at_one_boundary_in_plan_order() {
        let plan = ChurnPlan::new()
            .drift(7, 1, Point::new(1.0, 0.0))
            .drift(5, 0, Point::new(2.0, 0.0))
            .crash(20, 1);
        let mut schedule = plan_churn(&plan, 3, 8).schedule;
        assert_eq!(schedule.last_time(), 24);
        assert_eq!(schedule.peek_time(), Some(8));
        let (at, batch) = schedule.take_batch();
        assert_eq!(at, 8);
        // Both snap to 8; plan order (node 1 first) is preserved.
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0].node, 1);
        assert_eq!(batch[1].node, 0);
        let (at, batch) = schedule.take_batch();
        assert_eq!((at, batch.len()), (24, 1));
        assert_eq!(schedule.peek_time(), None);
    }

    #[test]
    fn joiners_start_pending_with_spawn_positions() {
        let plan = ChurnPlan::new()
            .join(10, 2, Point::new(0.5, 0.5))
            .leave(20, 0);
        let planned = plan_churn(&plan, 3, 1);
        assert_eq!(planned.membership[0], MemberState::Alive);
        assert_eq!(planned.membership[1], MemberState::Alive);
        assert_eq!(planned.membership[2], MemberState::Pending);
        assert_eq!(planned.spawn_positions, vec![(2, Point::new(0.5, 0.5))]);
    }

    #[test]
    #[should_panic(expected = "joins twice")]
    fn rejoin_is_rejected() {
        let plan =
            ChurnPlan::new()
                .join(1, 0, Point::new(0.0, 0.0))
                .join(5, 0, Point::new(1.0, 0.0));
        plan_churn(&plan, 1, 1);
    }

    #[test]
    #[should_panic(expected = "drifts while not alive")]
    fn drift_after_crash_is_rejected() {
        let plan = ChurnPlan::new()
            .crash(1, 0)
            .drift(5, 0, Point::new(1.0, 0.0));
        plan_churn(&plan, 1, 1);
    }

    #[test]
    #[should_panic(expected = "leaves while not alive")]
    fn leave_before_join_is_rejected() {
        let plan = ChurnPlan::new()
            .leave(1, 0)
            .join(5, 0, Point::new(1.0, 0.0));
        plan_churn(&plan, 1, 1);
    }

    #[test]
    #[should_panic(expected = "only 2 nodes exist")]
    fn out_of_range_node_is_rejected() {
        plan_churn(&ChurnPlan::new().leave(1, 7), 2, 1);
    }

    #[test]
    fn random_plans_are_valid_and_reproducible() {
        for seed in 0..20 {
            let plan = ChurnPlan::random(10, 3, 1.0, 500, 30, seed);
            assert_eq!(plan, ChurnPlan::random(10, 3, 1.0, 500, 30, seed));
            assert!(!plan.is_empty());
            // Valid against the matching runtime size at several lookaheads.
            for lookahead in [1, 3, 8] {
                plan_churn(&plan, 13, lookahead);
            }
        }
        assert_ne!(
            ChurnPlan::random(10, 3, 1.0, 500, 30, 1),
            ChurnPlan::random(10, 3, 1.0, 500, 30, 2)
        );
    }

    #[test]
    fn waypoint_trace_compiles_to_moved_node_drifts() {
        let frames = vec![
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![Point::new(0.5, 0.0), Point::new(1.0, 0.0)], // only node 0 moved
            vec![Point::new(0.5, 0.0), Point::new(1.0, 0.5)], // only node 1 moved
        ];
        let plan = ChurnPlan::from_waypoint_trace(&frames, 10, 5);
        assert_eq!(
            plan.entries(),
            &[
                ChurnEntry {
                    at: 15,
                    node: 0,
                    kind: ChurnKind::Drift(Point::new(0.5, 0.0)),
                },
                ChurnEntry {
                    at: 20,
                    node: 1,
                    kind: ChurnKind::Drift(Point::new(1.0, 0.5)),
                },
            ]
        );
        // Drift-only plans are always valid: no membership transitions.
        plan_churn(&plan, 2, 4);
        // A static trace schedules nothing.
        assert!(ChurnPlan::from_waypoint_trace(&frames[..1], 10, 5).is_empty());
        let parked = vec![frames[0].clone(), frames[0].clone()];
        assert!(ChurnPlan::from_waypoint_trace(&parked, 10, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "frame 1 has 1 nodes")]
    fn waypoint_trace_rejects_ragged_frames() {
        let frames = vec![
            vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
            vec![Point::new(0.0, 0.0)],
        ];
        ChurnPlan::from_waypoint_trace(&frames, 1, 1);
    }

    #[test]
    fn rebuild_excludes_non_alive_nodes() {
        let positions = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let mut membership = vec![MemberState::Alive; 3];
        let rows = rebuild_neighbors(&positions, &membership, 1.5);
        assert_eq!(rows, vec![vec![1], vec![0, 2], vec![1]]);
        membership[1] = MemberState::Draining;
        let rows = rebuild_neighbors(&positions, &membership, 1.5);
        assert_eq!(rows, vec![Vec::<u32>::new(), vec![], vec![]]);
    }
}
