//! The node-actor abstraction: local state machines driven by messages
//! and timers.
//!
//! An [`Actor`] sees only its own state plus whatever arrives in its
//! mailbox — the locality discipline of the paper made structural: a
//! protocol implemented against this trait *cannot* read another node's
//! state, so whatever topology or routing behaviour emerges is provably
//! the product of local computation and received messages.

use adhoc_geom::Point;
use std::fmt::Debug;

/// A message type usable by the runtime. `kind` labels the message for
/// per-kind counters ([`NetStats`](crate::NetStats)); the `Debug`
/// rendering feeds the replay transcript, so two runs with identical
/// transcripts exchanged byte-identical message sequences.
pub trait Message: Clone + Debug {
    /// A short static label for stats bucketing (e.g. `"position"`).
    fn kind(&self) -> &'static str {
        "msg"
    }
}

/// A node's local state machine. All methods receive a [`Ctx`] through
/// which the node may send messages, broadcast to its radio neighborhood,
/// and arm timers; everything else is private state.
pub trait Actor {
    /// The protocol's message alphabet.
    type Msg: Message;

    /// Called once at virtual time 0, before any delivery.
    fn on_start(&mut self, _ctx: &mut Ctx<Self::Msg>) {}

    /// A message from `from` arrives in this node's mailbox.
    fn on_message(&mut self, ctx: &mut Ctx<Self::Msg>, from: u32, msg: Self::Msg);

    /// A previously armed timer fires. `timer` is the id passed to
    /// [`Ctx::set_timer`].
    fn on_timer(&mut self, _ctx: &mut Ctx<Self::Msg>, _timer: u32) {}

    /// This node's one-hop world changed at a churn boundary: a neighbor
    /// joined, left, or drifted, or the node itself joined, drifted, or
    /// gracefully left. `neighbors` is the node's new radio-neighbor row
    /// (sorted; empty for a node that just left) and `pos` its current
    /// position. Joining nodes get *no* `on_start` — this callback is
    /// their bootstrap. Default: ignore churn.
    fn on_neighborhood_change(
        &mut self,
        _ctx: &mut Ctx<Self::Msg>,
        _neighbors: &[u32],
        _pos: Point,
    ) {
    }
}

/// Effect buffer handed to actor callbacks: the runtime drains it after
/// each callback, applying link faults to every outgoing message in
/// emission order.
#[derive(Debug)]
pub struct Ctx<M> {
    pub(crate) node: u32,
    now: u64,
    pub(crate) sends: Vec<(u32, M)>,
    pub(crate) broadcasts: Vec<M>,
    pub(crate) timers: Vec<(u64, u32)>,
}

impl<M> Default for Ctx<M> {
    fn default() -> Self {
        Ctx::new(0, 0)
    }
}

impl<M> Ctx<M> {
    pub(crate) fn new(node: u32, now: u64) -> Self {
        Ctx {
            node,
            now,
            sends: Vec::new(),
            broadcasts: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Re-aim a drained buffer at another callback. The runtime reuses one
    /// `Ctx` across all callbacks so the per-event hot path never
    /// allocates; the effect vectors keep their capacity between events.
    pub(crate) fn reset(&mut self, node: u32, now: u64) {
        debug_assert!(
            self.sends.is_empty() && self.broadcasts.is_empty() && self.timers.is_empty(),
            "Ctx reset before being drained"
        );
        self.node = node;
        self.now = now;
    }

    /// This node's id.
    pub fn id(&self) -> u32 {
        self.node
    }

    /// Current virtual time (ticks).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Unicast `msg` to node `to` (subject to link faults).
    pub fn send(&mut self, to: u32, msg: M) {
        self.sends.push((to, msg));
    }

    /// Broadcast `msg` to every node within radio range; each copy
    /// traverses its link independently (faults are per-receiver).
    pub fn broadcast(&mut self, msg: M) {
        self.broadcasts.push(msg);
    }

    /// Arm a timer to fire `delay` ticks from now (minimum 1), passing
    /// `timer` back to [`Actor::on_timer`].
    pub fn set_timer(&mut self, delay: u64, timer: u32) {
        self.timers.push((self.now + delay.max(1), timer));
    }
}
