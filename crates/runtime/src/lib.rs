//! # adhoc-runtime — deterministic message-passing node runtime
//!
//! The rest of the workspace implements the paper's algorithms as direct
//! computations: `run_local_protocol` delivers every broadcast, the
//! `(T,γ)`-balancing router reads true buffer heights. Real radios drop,
//! delay, and duplicate. This crate closes that gap with a discrete-event
//! runtime in which each node is an [`Actor`] — a local state machine
//! with a mailbox and timers — and every link-level transmission passes
//! through a configurable [`FaultConfig`].
//!
//! Determinism is the design invariant: every directed link draws its
//! fault decisions from its own seeded RNG stream, events are ordered by
//! the canonical `(time, EventKey)` key, and a rolling [`Transcript`]
//! digest witnesses replay equality — the same seed reproduces the same
//! run bit for bit, whether executed sequentially ([`Runtime::run`]) or
//! sharded over worker threads ([`Runtime::run_sharded`] /
//! [`Runtime::run_auto`]), asserted by tests.
//!
//! Two protocols from the paper are ported onto the runtime:
//!
//! * [`theta`] — ΘALG's 3-round topology-control protocol, hardened with
//!   per-round retransmission windows and acks so it reconstructs the
//!   exact `𝒩` of the direct construction as long as the retransmit
//!   budget outlasts the loss rate ([`run_theta_protocol`]);
//! * [`gossip`] — the `(T,γ)`-balancing router with explicit height
//!   gossip ([`run_gossip_balancing`]); the `StaleBalancingRouter`
//!   ablation's refresh period becomes real, droppable control traffic,
//!   and packet conservation is tracked as a ledger that stays exact
//!   under loss and duplication.
//!
//! Between them sits [`reliable`] — a reusable per-link
//! reliable-delivery sublayer ([`ReliableActor`] wraps any [`Actor`]):
//! sliding-window sequence numbers, cumulative acks, and
//! capped-exponential-backoff retransmission restore exactly-once
//! unicast delivery over lossy links; the gossip balancer routes its
//! `Packet` traffic through it via
//! [`GossipConfig::with_reliability`](gossip::GossipConfig::with_reliability)
//! while heights gossip stays best-effort.
//!
//! Faults can also *lie*: [`adversary`] compromises a seeded subset of
//! nodes with a schedulable [`AdversaryPlan`] — height deflation and
//! inflation, stale-frame replay, selective packet drop, equivocation —
//! wrapping each node's radio in an [`AdversarialActor`] interposer
//! while the node itself keeps running the honest code. The gossip
//! balancer's defense layer
//! ([`GossipConfig::with_defense`](gossip::GossipConfig::with_defense))
//! answers with local plausibility checks, starvation probes, and
//! cross-neighbor attestation that quarantine lying peers, and the
//! conservation ledger gains `stolen`/`blackholed` custody classes so
//! it balances exactly even while packets are being eaten.
//!
//! Experiment **E20** (`adhoc-sim`) sweeps loss rates over both
//! protocols, **E21** adds churn and mobility, **E22** the Byzantine
//! sweep; `examples/faulty_network.rs` is a minimal end-to-end tour.
//!
//! ```
//! use adhoc_geom::{Point, SectorPartition};
//! use adhoc_runtime::{run_theta_protocol, FaultConfig, ThetaTiming};
//!
//! let points: Vec<Point> = (0..20)
//!     .map(|i| Point::new((i % 5) as f64 * 0.2, (i / 5) as f64 * 0.2))
//!     .collect();
//! let sectors = SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
//! let run = run_theta_protocol(
//!     &points, sectors, 0.5, ThetaTiming::default(),
//!     FaultConfig::lossy(0.1), 42,
//! );
//! assert!(run.graph.graph.num_edges() > 0);
//! assert!(run.stats.sent > 0);
//! ```

pub mod adversary;
pub mod churn;
pub mod event;
pub mod fault;
pub mod gossip;
pub mod node;
pub mod reliable;
pub mod runtime;
pub mod shard;
pub mod stats;
pub mod theta;

pub use adversary::{
    AdversarialActor, AdversaryEntry, AdversaryPlan, AdversaryTarget, Attack, Custody,
};
pub use churn::{ChurnEntry, ChurnKind, ChurnPlan, MemberState};
pub use event::{Event, EventKey, EventKind, EventQueue, Payload};
pub use fault::{DelayDist, FaultConfig, TransmitOutcome};
pub use gossip::{
    run_gossip_balancing, run_gossip_balancing_adversarial, run_gossip_balancing_churn,
    run_gossip_balancing_sharded, uniform_workload, DefenseConfig, GossipConfig, GossipMsg,
    GossipNode, GossipRun,
};
pub use node::{Actor, Ctx, Message};
pub use reliable::{
    LinkCounters, ReliableActor, ReliableConfig, ReliableMsg, Transport, RELIABLE_TIMER,
};
pub use runtime::{shard_threads_from_env, Runtime};
pub use stats::{KindCounts, NetStats, Transcript};
pub use theta::{
    edge_fidelity, run_theta_churn, run_theta_protocol, run_theta_protocol_sharded, ThetaChurnRun,
    ThetaMsg, ThetaNode, ThetaRun, ThetaTiming,
};
