//! Sharded parallel execution of the runtime under conservative
//! lookahead, with bit-identical replay digests.
//!
//! # Design
//!
//! Nodes are partitioned into spatial shards by grid cell (cell side =
//! the radio range, the same cell notion as `adhoc_geom::GridIndex`);
//! each shard owns its nodes, their pending events, and the RNG streams
//! of every directed link *originating* at one of its nodes. Shards
//! advance concurrently on worker threads (vendored `rayon::scope`, real
//! OS threads) through **epochs**: half-open windows `[k·L, (k+1)·L)`
//! where `L` is the fault model's minimum link delay (≥ 1 tick). Because
//! every transmission takes at least `L` ticks, a message sent during
//! epoch `k` cannot arrive before epoch `k+1` — so within an epoch each
//! shard is causally independent, and cross-shard messages are exchanged
//! at the barrier between epochs. Timers are node-local and may fire
//! intra-epoch; they never cross shards.
//!
//! # Why the digest is stable
//!
//! * Each directed link's fault fates come from its own RNG stream,
//!   advanced in the sender's deterministic emission order — identical
//!   whether the sender's shard runs first, last, or alone.
//! * Events tie-break by the canonical [`EventKey`], so each node
//!   processes its events in the same order under any layout.
//! * Event records accumulate in per-node sub-digests and are folded
//!   into the global digest in node-id order at each epoch barrier —
//!   exactly where the sequential executor folds its window boundaries.
//!
//! The result: `run()`, `run_sharded(1)`, and `run_sharded(8)` produce
//! bit-identical transcripts, stats, and actor states.

use crate::churn::{ChurnDelta, ChurnKind};
use crate::event::{Event, EventKind, EventQueue, Payload};
use crate::fault::{FaultConfig, TransmitOutcome};
use crate::node::{Actor, Ctx, Message};
use crate::runtime::{link_key, shard_threads_from_env, LinkState, Runtime};
use crate::stats::{NetStats, WindowNotes};
use crate::MemberState;
use adhoc_geom::Point;
use std::collections::{BTreeMap, HashMap};
use std::sync::mpsc::{channel, Receiver, Sender};

/// Assign each node to a shard: nodes sharing a grid cell (side =
/// `range`) stay together, distinct cells round-robin over at most
/// `threads` shards. Returns `(shard_of_node, shard_count)`.
fn partition(positions: &[Point], range: f64, threads: usize) -> (Vec<u32>, usize) {
    let cell = |p: &Point| ((p.x / range).floor() as i64, (p.y / range).floor() as i64);
    let mut cells: Vec<(i64, i64)> = positions.iter().map(cell).collect();
    let mut distinct = cells.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let shards = threads.min(distinct.len()).max(1);
    let shard_of = cells
        .drain(..)
        .map(|c| {
            let idx = distinct.binary_search(&c).expect("cell must be present");
            (idx % shards) as u32
        })
        .collect();
    (shard_of, shards)
}

/// One shard: a self-contained slice of the runtime state.
struct Shard<A: Actor> {
    id: u32,
    nodes: BTreeMap<u32, A>,
    queue: EventQueue<A::Msg>,
    /// RNG streams of directed links originating in this shard.
    links: HashMap<u64, LinkState>,
    /// Timer arm counters (full length; only own nodes' entries used).
    arm_seq: Vec<u64>,
    /// This shard's copy of every node's neighbor row (full length;
    /// senders need target rows for locality checks and broadcast
    /// fan-out). Kept in lockstep via [`ChurnDelta::rows`].
    neighbors: Vec<Vec<u32>>,
    /// This shard's copy of the membership vector, updated from churn
    /// batch entries at epoch barriers.
    membership: Vec<MemberState>,
    faults: FaultConfig,
    seed: u64,
    stats: NetStats,
    notes: WindowNotes,
    scratch: Ctx<A::Msg>,
    /// Deliveries bound for other shards, flushed at the epoch barrier.
    outbox: Vec<Event<A::Msg>>,
    /// Time of the last event processed.
    last_time: u64,
}

impl<A: Actor> Shard<A> {
    /// Process every owned event with `time < until` (one epoch). This
    /// mirrors `Runtime::run_with_limit`'s event loop exactly — the
    /// digest-parity tests pin the two implementations together.
    fn advance(&mut self, until: u64, shard_of: &[u32], total_nodes: u32) {
        while let Some(t) = self.queue.peek_time() {
            if t >= until {
                break;
            }
            let ev = self.queue.pop().expect("peeked event vanished");
            self.last_time = self.last_time.max(ev.time);
            let node = ev.key.node;
            let now = ev.time;
            // Events addressed to a crashed node are accounted, not run —
            // identical to the sequential executor's dead-node path.
            if self.membership[node as usize] == MemberState::Dead {
                match ev.kind {
                    EventKind::Deliver { msg } => {
                        self.stats.link_lost += 1;
                        self.notes.note(
                            node,
                            format_args!("K t={} {}->{} {:?}", now, ev.key.src, node, msg),
                        );
                    }
                    EventKind::Timer { timer } => {
                        self.stats.timers_abandoned += 1;
                        self.notes
                            .note(node, format_args!("A t={} n={} id={}", now, node, timer));
                    }
                }
                continue;
            }
            match ev.kind {
                EventKind::Deliver { msg } => {
                    let from = ev.key.src;
                    self.stats.delivered += 1;
                    self.stats.kind(msg.get().kind()).delivered += 1;
                    self.notes.note(
                        node,
                        format_args!("D t={} {}->{} {:?}", now, from, node, msg),
                    );
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, now);
                    self.nodes
                        .get_mut(&node)
                        .expect("event routed to wrong shard")
                        .on_message(&mut ctx, from, msg.into_msg());
                    self.flush(&mut ctx, shard_of, total_nodes);
                    self.scratch = ctx;
                }
                EventKind::Timer { timer } => {
                    self.stats.timers_fired += 1;
                    self.notes
                        .note(node, format_args!("T t={} n={} id={}", now, node, timer));
                    let mut ctx = std::mem::take(&mut self.scratch);
                    ctx.reset(node, now);
                    self.nodes
                        .get_mut(&node)
                        .expect("event routed to wrong shard")
                        .on_timer(&mut ctx, timer);
                    self.flush(&mut ctx, shard_of, total_nodes);
                    self.scratch = ctx;
                }
            }
        }
    }

    fn flush(&mut self, ctx: &mut Ctx<A::Msg>, shard_of: &[u32], total_nodes: u32) {
        let node = ctx.node;
        let now = ctx.now();
        for (to, msg) in ctx.sends.drain(..) {
            assert!(
                to < total_nodes,
                "node {node} sent {:?} to nonexistent node {to} (only {total_nodes} nodes exist)",
                msg
            );
            if node == to || self.neighbors[node as usize].binary_search(&to).is_err() {
                self.stats.non_neighbor_sends += 1;
                self.notes
                    .note(node, format_args!("L t={} {}->{} {:?}", now, node, to, msg));
                continue;
            }
            self.transmit_link(now, node, to, Payload::Own(msg), shard_of);
        }
        for msg in ctx.broadcasts.drain(..) {
            self.stats.broadcasts += 1;
            // One shared payload per broadcast — mirrors `Runtime::flush`.
            let shared = std::sync::Arc::new(msg);
            let nbrs = std::mem::take(&mut self.neighbors[node as usize]);
            for &to in &nbrs {
                self.transmit_link(now, node, to, Payload::Shared(shared.clone()), shard_of);
            }
            self.neighbors[node as usize] = nbrs;
        }
        for (at, timer) in ctx.timers.drain(..) {
            self.stats.timers_set += 1;
            let seq = self.arm_seq[node as usize];
            self.arm_seq[node as usize] += 1;
            self.queue.push(
                at,
                crate::event::EventKey::timer(node, seq),
                EventKind::Timer { timer },
            );
        }
    }

    fn transmit_link(
        &mut self,
        now: u64,
        from: u32,
        to: u32,
        msg: Payload<A::Msg>,
        shard_of: &[u32],
    ) {
        self.stats.sent += 1;
        self.stats.kind(msg.get().kind()).sent += 1;
        let seed = self.seed;
        let link = self
            .links
            .entry(link_key(from, to))
            .or_insert_with(|| LinkState::new(seed, from, to));
        match self.faults.transmit(&mut link.rng) {
            TransmitOutcome::Dropped => {
                self.stats.dropped += 1;
                self.stats.kind(msg.get().kind()).dropped += 1;
                self.notes
                    .note(from, format_args!("X t={} {}->{} {:?}", now, from, to, msg));
            }
            TransmitOutcome::Delivered(d) => {
                let seq = link.copies;
                link.copies += 1;
                self.route(
                    Event {
                        time: now + d,
                        key: crate::event::EventKey::deliver(from, to, seq),
                        kind: EventKind::Deliver { msg },
                    },
                    shard_of,
                );
            }
            TransmitOutcome::Duplicated(d1, d2) => {
                self.stats.duplicated += 1;
                let seq = link.copies;
                link.copies += 2;
                self.route(
                    Event {
                        time: now + d1,
                        key: crate::event::EventKey::deliver(from, to, seq),
                        kind: EventKind::Deliver { msg: msg.clone() },
                    },
                    shard_of,
                );
                self.route(
                    Event {
                        time: now + d2,
                        key: crate::event::EventKey::deliver(from, to, seq + 1),
                        kind: EventKind::Deliver { msg },
                    },
                    shard_of,
                );
            }
        }
    }

    fn route(&mut self, ev: Event<A::Msg>, shard_of: &[u32]) {
        if shard_of[ev.key.node as usize] == self.id {
            self.queue.insert(ev);
        } else {
            self.outbox.push(ev);
        }
    }

    /// Apply one churn batch at an epoch barrier: sync membership and the
    /// changed neighbor rows from the coordinator's [`ChurnDelta`], note
    /// the perturbation records of owned entry nodes (plan order), and
    /// run the re-convergence callbacks of owned affected nodes — the
    /// shard-local half of `Runtime::apply_churn_local`.
    fn apply_churn(&mut self, delta: &ChurnDelta, shard_of: &[u32], total_nodes: u32) {
        for e in &delta.entries {
            match e.kind {
                ChurnKind::Join(_) => self.membership[e.node as usize] = MemberState::Alive,
                ChurnKind::Leave => self.membership[e.node as usize] = MemberState::Draining,
                ChurnKind::Crash => self.membership[e.node as usize] = MemberState::Dead,
                ChurnKind::Drift(_) => {}
            }
        }
        for (node, row) in &delta.rows {
            self.neighbors[*node as usize] = row.clone();
        }
        for e in &delta.entries {
            if shard_of[e.node as usize] != self.id {
                continue;
            }
            match e.kind {
                ChurnKind::Join(p) => self.notes.note(
                    e.node,
                    format_args!("J t={} n={} p=({:?},{:?})", delta.time, e.node, p.x, p.y),
                ),
                ChurnKind::Leave => self
                    .notes
                    .note(e.node, format_args!("G t={} n={}", delta.time, e.node)),
                ChurnKind::Crash => self
                    .notes
                    .note(e.node, format_args!("C t={} n={}", delta.time, e.node)),
                ChurnKind::Drift(p) => self.notes.note(
                    e.node,
                    format_args!("M t={} n={} p=({:?},{:?})", delta.time, e.node, p.x, p.y),
                ),
            }
        }
        for &(node, pos) in &delta.affected {
            if shard_of[node as usize] != self.id {
                continue;
            }
            let mut ctx = std::mem::take(&mut self.scratch);
            ctx.reset(node, delta.time);
            let row = std::mem::take(&mut self.neighbors[node as usize]);
            self.nodes
                .get_mut(&node)
                .expect("affected node routed to wrong shard")
                .on_neighborhood_change(&mut ctx, &row, pos);
            self.neighbors[node as usize] = row;
            self.flush(&mut ctx, shard_of, total_nodes);
            self.scratch = ctx;
        }
    }
}

/// Coordinator → worker command.
enum Cmd<M> {
    /// Process one epoch: merge `inbox`, apply `churn` (if the epoch
    /// starts at a churn boundary), then run events `< until`.
    Advance {
        until: u64,
        inbox: Vec<Event<M>>,
        churn: Option<ChurnDelta>,
    },
    /// Ship the shard state back and exit.
    Finish,
}

/// Worker → coordinator epoch report.
struct EpochReport<M> {
    shard: u32,
    /// Cross-shard deliveries produced this epoch.
    outbox: Vec<Event<M>>,
    /// Dirty `(node, sub-digest)` pairs, sorted by node.
    folds: Vec<(u32, u64)>,
    /// Rendered records (recording mode only), sorted by node.
    logs: Vec<(u32, String)>,
    /// Events still queued after the epoch.
    queue_len: usize,
    /// Firing time of the shard's next queued event.
    next_time: Option<u64>,
    /// Latest event time processed so far.
    last_time: u64,
}

enum Report<A: Actor> {
    Epoch(EpochReport<A::Msg>),
    Done(u32, Box<Shard<A>>),
}

fn worker_loop<A: Actor>(
    mut shard: Shard<A>,
    cmds: Receiver<Cmd<A::Msg>>,
    reports: Sender<Report<A>>,
    shard_of: &[u32],
) {
    let total_nodes = shard_of.len() as u32;
    while let Ok(cmd) = cmds.recv() {
        match cmd {
            Cmd::Advance {
                until,
                inbox,
                churn,
            } => {
                for ev in inbox {
                    shard.queue.insert(ev);
                }
                if let Some(delta) = &churn {
                    shard.apply_churn(delta, shard_of, total_nodes);
                }
                shard.advance(until, shard_of, total_nodes);
                let (folds, logs) = shard.notes.take_folds();
                let report = EpochReport {
                    shard: shard.id,
                    outbox: std::mem::take(&mut shard.outbox),
                    folds,
                    logs,
                    queue_len: shard.queue.len(),
                    next_time: shard.queue.peek_time(),
                    last_time: shard.last_time,
                };
                if reports.send(Report::Epoch(report)).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let id = shard.id;
                let _ = reports.send(Report::Done(id, Box::new(shard)));
                return;
            }
        }
    }
}

impl<A: Actor> Runtime<A>
where
    A: Send,
    A::Msg: Send + Sync,
{
    /// Run to quiescence on up to `threads` worker threads, sharding
    /// nodes by spatial cell. Produces **bit-identical** transcripts,
    /// stats, and actor states to the sequential [`Runtime::run`] — any
    /// divergence is a bug (pinned by the digest-parity tests).
    ///
    /// Call after [`Runtime::start`], exactly like `run()`.
    pub fn run_sharded(&mut self, threads: usize) -> u64 {
        let (shard_of, shards) = partition(&self.positions, self.range, threads);
        if shards <= 1 {
            return self.run();
        }
        let lookahead = self.faults.min_delay();
        let n = self.nodes.len();
        let recording = self.trace.recording();

        // Split runtime state into per-shard slices.
        let mut per: Vec<Shard<A>> = (0..shards as u32)
            .map(|id| Shard {
                id,
                nodes: BTreeMap::new(),
                queue: EventQueue::new(),
                links: HashMap::new(),
                arm_seq: self.arm_seq.clone(),
                neighbors: self.neighbors.clone(),
                membership: self.membership.clone(),
                faults: self.faults,
                seed: self.seed,
                stats: NetStats::default(),
                notes: WindowNotes::new(n, recording),
                scratch: Ctx::default(),
                outbox: Vec::new(),
                last_time: self.now,
            })
            .collect();
        for (id, node) in std::mem::take(&mut self.nodes).into_iter().enumerate() {
            per[shard_of[id] as usize].nodes.insert(id as u32, node);
        }
        while let Some(ev) = self.queue.pop() {
            per[shard_of[ev.key.node as usize] as usize]
                .queue
                .insert(ev);
        }
        for (key, link) in self.links.drain() {
            let from = (key >> 32) as u32;
            per[shard_of[from as usize] as usize]
                .links
                .insert(key, link);
        }

        // Coordinator-side per-shard bookkeeping.
        let mut inboxes: Vec<Vec<Event<A::Msg>>> = (0..shards).map(|_| Vec::new()).collect();
        let mut next_times: Vec<Option<u64>> = per.iter().map(|s| s.queue.peek_time()).collect();

        let shard_of_ref = &shard_of;
        let (report_tx, report_rx) = channel::<Report<A>>();
        let mut cmd_txs: Vec<Sender<Cmd<A::Msg>>> = Vec::with_capacity(shards);

        let (final_now, mut done) = rayon::scope(|scope| {
            for shard in per.drain(..) {
                let (cmd_tx, cmd_rx) = channel::<Cmd<A::Msg>>();
                cmd_txs.push(cmd_tx);
                let tx = report_tx.clone();
                scope.spawn(move || worker_loop(shard, cmd_rx, tx, shard_of_ref));
            }
            drop(report_tx);

            let mut now = self.now;
            loop {
                // Earliest pending event anywhere (queues or unrouted
                // inboxes); quiescent when none and no churn remains.
                let pending_min = next_times
                    .iter()
                    .flatten()
                    .copied()
                    .chain(inboxes.iter().flat_map(|ib| ib.iter().map(|ev| ev.time)))
                    .min();
                // A churn batch due at `tc` (always lookahead-aligned)
                // opens the epoch `[tc, tc + L)`: the coordinator applies
                // it to the master state and ships the delta to every
                // worker — the exact cut the sequential executor makes.
                let due_churn = self
                    .churn
                    .peek_time()
                    .filter(|&tc| pending_min.is_none_or(|t| tc <= t));
                let (until, churn) = if let Some(tc) = due_churn {
                    now = now.max(tc);
                    (tc + lookahead, Some(self.apply_churn_batch()))
                } else if let Some(t) = pending_min {
                    // One epoch: the lookahead window containing `t`.
                    ((t / lookahead + 1) * lookahead, None)
                } else {
                    break;
                };
                for (tx, inbox) in cmd_txs.iter().zip(inboxes.iter_mut()) {
                    tx.send(Cmd::Advance {
                        until,
                        inbox: std::mem::take(inbox),
                        churn: churn.clone(),
                    })
                    .expect("worker died");
                }
                let mut pending_total = 0usize;
                let mut folds: Vec<(u32, u64)> = Vec::new();
                let mut logs: Vec<(u32, String)> = Vec::new();
                for _ in 0..shards {
                    let Ok(Report::Epoch(r)) = report_rx.recv() else {
                        panic!("worker died mid-epoch");
                    };
                    pending_total += r.queue_len + r.outbox.len();
                    next_times[r.shard as usize] = r.next_time;
                    now = now.max(r.last_time);
                    folds.extend(r.folds);
                    logs.extend(r.logs);
                    for ev in r.outbox {
                        inboxes[shard_of[ev.key.node as usize] as usize].push(ev);
                    }
                }
                // Barrier: fold this epoch's sub-digests in node-id
                // order — node sets are disjoint across shards, so a
                // global sort reproduces the sequential fold exactly.
                folds.sort_unstable_by_key(|&(node, _)| node);
                for (node, sub) in folds {
                    self.trace.fold_node(node, sub);
                }
                logs.sort_by_key(|&(node, _)| node);
                for (_, entry) in logs {
                    self.trace.push_entry(entry);
                }
                self.stats.max_queue_depth = self.stats.max_queue_depth.max(pending_total);
            }

            for tx in &cmd_txs {
                tx.send(Cmd::Finish).expect("worker died");
            }
            let mut done: Vec<Option<Box<Shard<A>>>> = (0..shards).map(|_| None).collect();
            for _ in 0..shards {
                let Ok(Report::Done(id, state)) = report_rx.recv() else {
                    panic!("worker died at finish");
                };
                done[id as usize] = Some(state);
            }
            (now, done)
        });

        // Reassemble the runtime: nodes in id order, links and arm
        // counters merged, per-shard stats summed.
        let mut nodes: Vec<Option<A>> = (0..n).map(|_| None).collect();
        for shard in done.iter_mut().map(|s| s.take().expect("missing shard")) {
            let shard = *shard;
            for (id, node) in shard.nodes {
                nodes[id as usize] = Some(node);
            }
            self.links.extend(shard.links);
            for (id, &owner) in shard_of.iter().enumerate() {
                if owner == shard.id {
                    self.arm_seq[id] = shard.arm_seq[id];
                }
            }
            self.stats.absorb(&shard.stats);
        }
        self.nodes = nodes
            .into_iter()
            .map(|n| n.expect("node lost in resharding"))
            .collect();
        self.now = final_now;
        self.now
    }

    /// Run to quiescence on the executor selected by the
    /// `ADHOC_SHARD_THREADS` environment variable: sequential when unset
    /// or `1`, sharded otherwise. Digests are identical either way.
    pub fn run_auto(&mut self) -> u64 {
        match shard_threads_from_env() {
            0 | 1 => self.run(),
            t => self.run_sharded(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;

    /// A mesh gossip protocol exercising broadcasts, unicasts, timers,
    /// and multi-hop chatter — enough surface to catch ordering bugs.
    #[derive(Debug, Clone, PartialEq)]
    struct Chatter {
        id: u32,
        rounds_left: u32,
        heard: Vec<(u32, u32)>,
    }

    #[derive(Debug, Clone)]
    struct Word(u32);

    impl Message for Word {
        fn kind(&self) -> &'static str {
            "word"
        }
    }

    impl Actor for Chatter {
        type Msg = Word;

        fn on_start(&mut self, ctx: &mut Ctx<Word>) {
            ctx.set_timer(1 + (self.id as u64 % 3), 0);
        }

        fn on_message(&mut self, ctx: &mut Ctx<Word>, from: u32, msg: Word) {
            self.heard.push((from, msg.0));
            if msg.0 > 0 && self.heard.len().is_multiple_of(2) {
                ctx.send(from, Word(msg.0 - 1));
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<Word>, _timer: u32) {
            ctx.broadcast(Word(self.id % 4 + 1));
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                ctx.set_timer(2, 0);
            }
        }

        fn on_neighborhood_change(&mut self, ctx: &mut Ctx<Word>, neighbors: &[u32], _pos: Point) {
            // React to churn: record the new degree and re-announce, so
            // parity tests exercise sends/timers out of this callback.
            self.heard.push((u32::MAX, neighbors.len() as u32));
            if !neighbors.is_empty() {
                ctx.broadcast(Word(2));
                ctx.set_timer(1, 7);
            }
        }
    }

    fn grid_points(side: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for y in 0..side {
            for x in 0..side {
                pts.push(Point::new(x as f64 * 0.9, y as f64 * 0.9));
            }
        }
        pts
    }

    fn build(faults: FaultConfig, seed: u64) -> Runtime<Chatter> {
        let pts = grid_points(5);
        let nodes = (0..pts.len() as u32)
            .map(|id| Chatter {
                id,
                rounds_left: 4,
                heard: Vec::new(),
            })
            .collect();
        Runtime::new(nodes, &pts, 1.0, faults, seed)
    }

    /// The headline guarantee: sequential and sharded runs (several
    /// thread counts) agree on digest, stats, final actor state, and
    /// virtual end time.
    #[test]
    fn sharded_run_matches_sequential_bit_for_bit() {
        let faults = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let mut seq = build(faults, 42);
        seq.record_trace(true);
        seq.start();
        let seq_now = seq.run();
        for threads in [2, 4, 8] {
            let mut sh = build(faults, 42);
            sh.record_trace(true);
            sh.start();
            let sh_now = sh.run_sharded(threads);
            assert_eq!(
                seq.transcript().digest(),
                sh.transcript().digest(),
                "digest diverged at {threads} threads"
            );
            assert_eq!(seq.transcript().entries(), sh.transcript().entries());
            assert_eq!(
                seq.stats(),
                sh.stats(),
                "stats diverged at {threads} threads"
            );
            assert_eq!(seq.nodes(), sh.nodes(), "actor state diverged");
            assert_eq!(seq_now, sh_now, "virtual end time diverged");
        }
    }

    /// Lookahead > 1 (minimum link delay 3) exercises multi-tick epochs
    /// with intra-epoch timers.
    #[test]
    fn sharded_parity_with_wide_lookahead() {
        let faults = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            delay: DelayDist::Uniform { min: 3, max: 7 },
        };
        let mut seq = build(faults, 7);
        seq.start();
        seq.run();
        let mut sh = build(faults, 7);
        sh.start();
        sh.run_sharded(4);
        assert_eq!(seq.transcript().digest(), sh.transcript().digest());
        assert_eq!(seq.stats(), sh.stats());
        assert_eq!(seq.nodes(), sh.nodes());
    }

    /// Churn parity: joins, graceful/crash leaves, and drifts land at
    /// epoch barriers, so digests, stats (including `link_lost` /
    /// `timers_abandoned`), actor states, and end times stay bit-identical
    /// across executors and thread counts.
    #[test]
    fn churn_runs_match_sequential_bit_for_bit() {
        use crate::ChurnPlan;
        let faults = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let plan = ChurnPlan::new()
            .join(3, 24, Point::new(1.3, 1.3))
            .drift(5, 7, Point::new(3.1, 0.2))
            .crash(8, 12)
            .leave(8, 18)
            .drift(11, 3, Point::new(0.1, 3.4));
        let run = |threads: usize| {
            let pts = grid_points(5);
            let nodes = (0..pts.len() as u32)
                .map(|id| Chatter {
                    id,
                    rounds_left: 4,
                    heard: Vec::new(),
                })
                .collect();
            let mut rt = Runtime::new(nodes, &pts, 1.0, faults, 42);
            rt.set_churn_plan(&plan);
            rt.record_trace(true);
            rt.start();
            let now = if threads == 0 {
                rt.run()
            } else {
                rt.run_sharded(threads)
            };
            (now, rt)
        };
        let (seq_now, seq) = run(0);
        assert!(seq.stats().crashes == 1 && seq.stats().joins == 1);
        for threads in [1, 4, 8] {
            let (sh_now, sh) = run(threads);
            assert_eq!(
                seq.transcript().digest(),
                sh.transcript().digest(),
                "churn digest diverged at {threads} threads"
            );
            assert_eq!(seq.transcript().entries(), sh.transcript().entries());
            assert_eq!(seq.stats(), sh.stats(), "stats diverged at {threads}");
            assert_eq!(seq.nodes(), sh.nodes(), "actor state diverged");
            assert_eq!(seq_now, sh_now, "virtual end time diverged");
        }
    }

    /// One shard (or one thread) falls back to the sequential path.
    #[test]
    fn single_thread_sharded_is_sequential() {
        let mut a = build(FaultConfig::lossy(0.1), 5);
        a.start();
        a.run();
        let mut b = build(FaultConfig::lossy(0.1), 5);
        b.start();
        b.run_sharded(1);
        assert_eq!(a.transcript().digest(), b.transcript().digest());
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn partition_keeps_cells_together_and_bounds_shards() {
        let pts = grid_points(4);
        let (shard_of, shards) = partition(&pts, 1.0, 3);
        assert!(shards <= 3);
        assert_eq!(shard_of.len(), pts.len());
        // Nodes in the same cell share a shard.
        for (i, a) in pts.iter().enumerate() {
            for (j, b) in pts.iter().enumerate() {
                let cell = |p: &Point| ((p.x).floor() as i64, (p.y).floor() as i64);
                if cell(a) == cell(b) {
                    assert_eq!(shard_of[i], shard_of[j]);
                }
            }
        }
    }
}
