//! Runtime instrumentation: message counters and the replay transcript.

use std::collections::BTreeMap;
use std::fmt::{self, Write as _};

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Link-level transmissions attempted (each broadcast counts once per
    /// receiver).
    pub sent: u64,
    /// Copies actually delivered (duplicates included).
    pub delivered: u64,
    /// Transmissions lost to the fault model.
    pub dropped: u64,
}

/// Aggregate counters for one run, overall and per message kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Link-level transmissions attempted.
    pub sent: u64,
    /// Copies delivered (duplicates included).
    pub delivered: u64,
    /// Transmissions lost.
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Radio broadcasts requested (before per-receiver fan-out).
    pub broadcasts: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Data retransmissions by the reliable-delivery sublayer. Folded in
    /// by reliable-transport drivers (e.g. `run_gossip_balancing` with
    /// reliability enabled); zero for best-effort-only runs.
    pub retransmits: u64,
    /// Standalone cumulative acks sent by the reliable sublayer
    /// (piggybacked acks ride data messages and are not counted here).
    pub acks: u64,
    /// Retransmit-timer firings in the reliable sublayer.
    pub rto_fired: u64,
    /// Unicasts to an in-plane node outside the sender's radio range.
    /// The paper's `G*` locality discipline means such a send can never
    /// leave the radio: the copy is discarded before the fault model and
    /// counted here (not in `sent`/`dropped`, so link-level ledgers stay
    /// conserved).
    pub non_neighbor_sends: u64,
    /// In-flight copies whose receiver crash-left before arrival: the
    /// link transmission survived the fault model, but the node was
    /// [`MemberState::Dead`](crate::MemberState::Dead) when the copy came
    /// due, so it is accounted here instead of `delivered`.
    pub link_lost: u64,
    /// Timers that fired on a crashed node and were discarded.
    pub timers_abandoned: u64,
    /// Churn joins applied.
    pub joins: u64,
    /// Churn graceful leaves applied.
    pub leaves: u64,
    /// Churn crash leaves applied.
    pub crashes: u64,
    /// Churn waypoint drifts applied.
    pub drifts: u64,
    /// `on_neighborhood_change` notifications issued: live nodes whose
    /// one-hop world changed at a churn boundary and were told to
    /// re-converge.
    pub reconvergences: u64,
    /// High-water mark of the event queue.
    pub max_queue_depth: usize,
    /// Per-kind breakdown, keyed by [`Message::kind`](crate::Message::kind).
    pub per_kind: BTreeMap<&'static str, KindCounts>,
}

impl NetStats {
    /// Fraction of transmissions lost (0 when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    pub(crate) fn kind(&mut self, k: &'static str) -> &mut KindCounts {
        self.per_kind.entry(k).or_default()
    }

    /// Fold another stats block into this one (sharded execution merges
    /// per-shard counters at the end of a run). `max_queue_depth` is
    /// deliberately *not* merged: it is sampled globally at epoch folds
    /// by whichever executor is driving.
    pub(crate) fn absorb(&mut self, other: &NetStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.broadcasts += other.broadcasts;
        self.timers_set += other.timers_set;
        self.timers_fired += other.timers_fired;
        self.retransmits += other.retransmits;
        self.acks += other.acks;
        self.rto_fired += other.rto_fired;
        self.non_neighbor_sends += other.non_neighbor_sends;
        self.link_lost += other.link_lost;
        self.timers_abandoned += other.timers_abandoned;
        self.joins += other.joins;
        self.leaves += other.leaves;
        self.crashes += other.crashes;
        self.drifts += other.drifts;
        self.reconvergences += other.reconvergences;
        for (k, c) in &other.per_kind {
            let mine = self.per_kind.entry(k).or_default();
            mine.sent += c.sent;
            mine.delivered += c.delivered;
            mine.dropped += c.dropped;
        }
    }
}

/// A replay transcript: a rolling FNV-1a digest over every event the
/// runtime processes (deliveries, drops, timer firings), plus optionally
/// the full event log. Two runs are *replay-identical* iff their digests
/// match; [`crate::Runtime::record_trace`] additionally keeps the
/// human-readable entries so tests can diff them.
///
/// The digest is folded **canonically**: event records accumulate in
/// per-node sub-digests ([`WindowNotes`]) for the duration of one
/// lookahead window, and at each window boundary the dirty `(node,
/// sub-digest)` pairs are folded into the global digest in node-id
/// order. A node's events happen in a deterministic local order no
/// matter how execution is laid out, so the sequential executor and the
/// sharded executor (any thread count) produce bit-identical digests.
#[derive(Debug, Clone)]
pub struct Transcript {
    digest: u64,
    entries: Option<Vec<String>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Transcript {
    fn default() -> Self {
        Transcript {
            digest: FNV_OFFSET,
            entries: None,
        }
    }
}

/// A `fmt::Write` sink that folds every formatted byte straight into a
/// rolling FNV-1a state — digesting an event record costs zero heap
/// allocations, unlike rendering it to a `String` first.
struct FnvSink<'a>(&'a mut u64);

impl fmt::Write for FnvSink<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let mut d = *self.0;
        for &b in s.as_bytes() {
            d ^= b as u64;
            d = d.wrapping_mul(FNV_PRIME);
        }
        *self.0 = d;
        Ok(())
    }
}

impl Transcript {
    /// A fresh transcript; pass `record = true` to keep full entries.
    pub fn new(record: bool) -> Self {
        Transcript {
            digest: FNV_OFFSET,
            entries: if record { Some(Vec::new()) } else { None },
        }
    }

    /// Whether full-entry recording is on.
    pub(crate) fn recording(&self) -> bool {
        self.entries.is_some()
    }

    /// Fold one node's window sub-digest into the global digest. Callers
    /// must fold in node-id order within a window — that canonical order
    /// is what makes the digest independent of execution layout.
    pub(crate) fn fold_node(&mut self, node: u32, sub: u64) {
        let mut d = self.digest;
        for b in node.to_le_bytes().into_iter().chain(sub.to_le_bytes()) {
            d ^= b as u64;
            d = d.wrapping_mul(FNV_PRIME);
        }
        self.digest = d;
    }

    /// Append one rendered event record to the full log (recording only).
    pub(crate) fn push_entry(&mut self, entry: String) {
        if let Some(log) = &mut self.entries {
            log.push(entry);
        }
    }

    /// The rolling digest over all events so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The full event log, if recording was enabled.
    pub fn entries(&self) -> Option<&[String]> {
        self.entries.as_deref()
    }
}

/// Per-node event-record accumulator for one lookahead window.
///
/// Every deliver/drop/timer record is streamed (allocation-free, via
/// [`FnvSink`]) into the sub-digest of the node it belongs to — the
/// receiver for deliveries, the sender for drops, the owner for timers.
/// All of a node's records are produced while processing that node's own
/// events, which occur in a canonical order regardless of how execution
/// is sharded; folding the dirty sub-digests in node-id order at each
/// window boundary therefore yields a layout-invariant global digest.
/// Rendered `(node, record)` pairs shipped from shard workers when the
/// transcript is recording.
pub(crate) type NodeLogs = Vec<(u32, String)>;

#[derive(Debug, Clone)]
pub(crate) struct WindowNotes {
    /// Sub-digest per node; `FNV_OFFSET` when clean this window.
    subs: Vec<u64>,
    /// Nodes touched this window (possibly with duplicates; deduped at
    /// drain). Capacity is retained across windows, so steady-state
    /// noting and folding never allocate.
    dirty: Vec<u32>,
    /// Rendered records `(node, entry)` in emission order, kept only when
    /// full-entry recording is on.
    logs: Option<Vec<(u32, String)>>,
}

impl WindowNotes {
    pub(crate) fn new(n: usize, record: bool) -> Self {
        WindowNotes {
            subs: vec![FNV_OFFSET; n],
            dirty: Vec::new(),
            logs: if record { Some(Vec::new()) } else { None },
        }
    }

    /// Stream one event record into `node`'s sub-digest for the current
    /// window. The record is only materialized as a `String` when
    /// recording is on — the hot path never allocates here.
    pub(crate) fn note(&mut self, node: u32, args: fmt::Arguments<'_>) {
        let sub = &mut self.subs[node as usize];
        if *sub == FNV_OFFSET {
            self.dirty.push(node);
        }
        if let Some(log) = &mut self.logs {
            let entry = args.to_string();
            FnvSink(sub).write_str(&entry).unwrap();
            log.push((node, entry));
        } else {
            // Formatting into the sink cannot fail: FnvSink never errors.
            FnvSink(sub).write_fmt(args).unwrap();
        }
        // Separator so concatenation ambiguity can't collide records.
        *sub ^= 0xff;
        *sub = sub.wrapping_mul(FNV_PRIME);
    }

    /// End the current window: fold dirty sub-digests into `t` in node-id
    /// order (and flush rendered records grouped by node), then reset for
    /// the next window. Allocation-free when not recording.
    pub(crate) fn fold_into(&mut self, t: &mut Transcript) {
        self.dirty.sort_unstable();
        self.dirty.dedup();
        for &node in &self.dirty {
            t.fold_node(node, self.subs[node as usize]);
            self.subs[node as usize] = FNV_OFFSET;
        }
        self.dirty.clear();
        if let Some(log) = &mut self.logs {
            // Stable by node; per-node emission order preserved.
            log.sort_by_key(|&(node, _)| node);
            for (_, entry) in log.drain(..) {
                t.push_entry(entry);
            }
        }
    }

    /// End the current window without a transcript at hand: return the
    /// dirty `(node, sub-digest)` pairs sorted by node id, plus rendered
    /// records when recording. Shard workers use this to ship their
    /// window folds to the coordinator, which merges all shards' pairs in
    /// node-id order before folding — reproducing exactly what
    /// [`Self::fold_into`] does in the sequential executor.
    pub(crate) fn take_folds(&mut self) -> (Vec<(u32, u64)>, NodeLogs) {
        self.dirty.sort_unstable();
        self.dirty.dedup();
        let folds = self
            .dirty
            .drain(..)
            .map(|node| {
                let sub = self.subs[node as usize];
                self.subs[node as usize] = FNV_OFFSET;
                (node, sub)
            })
            .collect();
        let logs = match &mut self.logs {
            Some(log) => {
                log.sort_by_key(|&(node, _)| node);
                std::mem::take(log)
            }
            None => Vec::new(),
        };
        (folds, logs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(notes: &[(u32, &str)], record: bool) -> (u64, Option<Vec<String>>) {
        let mut t = Transcript::new(record);
        let mut w = WindowNotes::new(8, record);
        for &(node, s) in notes {
            w.note(node, format_args!("{s}"));
        }
        w.fold_into(&mut t);
        (t.digest(), t.entries().map(|e| e.to_vec()))
    }

    #[test]
    fn digest_is_order_sensitive_per_node() {
        let (a, _) = digest_of(&[(0, "x"), (0, "y")], false);
        let (b, _) = digest_of(&[(0, "y"), (0, "x")], false);
        assert_ne!(a, b);
    }

    /// Notes to *different* nodes in one window fold in node-id order, so
    /// the interleaving of distinct nodes' records doesn't matter — the
    /// layout-invariance the sharded executor relies on.
    #[test]
    fn cross_node_interleaving_is_canonicalized() {
        let (a, _) = digest_of(&[(2, "x"), (1, "y"), (2, "z")], false);
        let (b, _) = digest_of(&[(1, "y"), (2, "x"), (2, "z")], false);
        assert_eq!(a, b);
    }

    /// Splitting the same notes across window folds changes the digest
    /// (fold boundaries are part of the canonical record).
    #[test]
    fn window_boundaries_are_significant() {
        let mut t1 = Transcript::new(false);
        let mut w = WindowNotes::new(2, false);
        w.note(0, format_args!("x"));
        w.note(0, format_args!("y"));
        w.fold_into(&mut t1);
        let mut t2 = Transcript::new(false);
        let mut w = WindowNotes::new(2, false);
        w.note(0, format_args!("x"));
        w.fold_into(&mut t2);
        w.note(0, format_args!("y"));
        w.fold_into(&mut t2);
        assert_ne!(t1.digest(), t2.digest());
    }

    #[test]
    fn digest_ignores_recording_flag() {
        let notes = [(1, "p"), (0, "q"), (1, "r")];
        let (a, entries_a) = digest_of(&notes, false);
        let (b, entries_b) = digest_of(&notes, true);
        assert_eq!(a, b);
        assert!(entries_a.is_none());
        // Entries flush grouped by node, emission order within a node.
        assert_eq!(entries_b.unwrap(), vec!["q", "p", "r"]);
    }

    #[test]
    fn separator_prevents_concatenation_collisions() {
        let (a, _) = digest_of(&[(0, "ab")], false);
        let (b, _) = digest_of(&[(0, "a"), (0, "b")], false);
        assert_ne!(a, b);
    }

    /// `take_folds` (shard worker path) must reproduce `fold_into`
    /// (sequential path) exactly when the pairs are folded in node order.
    #[test]
    fn worker_folds_match_sequential_folds() {
        let notes = [(3, "a"), (1, "b"), (3, "c"), (0, "d")];
        let (seq, _) = digest_of(&notes, false);
        let mut t = Transcript::new(false);
        let mut w = WindowNotes::new(8, false);
        for &(node, s) in &notes {
            w.note(node, format_args!("{s}"));
        }
        let (folds, logs) = w.take_folds();
        assert!(logs.is_empty());
        assert_eq!(folds.iter().map(|&(n, _)| n).collect::<Vec<_>>(), [0, 1, 3]);
        for (node, sub) in folds {
            t.fold_node(node, sub);
        }
        assert_eq!(t.digest(), seq);
    }

    /// The streaming sink and the render-then-fold path must agree byte
    /// for byte, including on multi-fragment format strings.
    #[test]
    fn streamed_digest_equals_rendered_digest() {
        let mut streamed = WindowNotes::new(4, false);
        let mut rendered = WindowNotes::new(4, true);
        for i in 0..50u32 {
            let node = i % 4;
            streamed.note(
                node,
                format_args!("D t={} {}->{} Msg({:?})", i, i + 1, i + 2, (i, "x")),
            );
            rendered.note(
                node,
                format_args!("D t={} {}->{} Msg({:?})", i, i + 1, i + 2, (i, "x")),
            );
        }
        let (mut a, mut b) = (Transcript::new(false), Transcript::new(true));
        streamed.fold_into(&mut a);
        rendered.fold_into(&mut b);
        assert_eq!(a.digest(), b.digest());
    }
}
