//! Runtime instrumentation: message counters and the replay transcript.

use std::collections::BTreeMap;
use std::fmt::{self, Write as _};

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Link-level transmissions attempted (each broadcast counts once per
    /// receiver).
    pub sent: u64,
    /// Copies actually delivered (duplicates included).
    pub delivered: u64,
    /// Transmissions lost to the fault model.
    pub dropped: u64,
}

/// Aggregate counters for one run, overall and per message kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Link-level transmissions attempted.
    pub sent: u64,
    /// Copies delivered (duplicates included).
    pub delivered: u64,
    /// Transmissions lost.
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Radio broadcasts requested (before per-receiver fan-out).
    pub broadcasts: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Data retransmissions by the reliable-delivery sublayer. Folded in
    /// by reliable-transport drivers (e.g. `run_gossip_balancing` with
    /// reliability enabled); zero for best-effort-only runs.
    pub retransmits: u64,
    /// Standalone cumulative acks sent by the reliable sublayer
    /// (piggybacked acks ride data messages and are not counted here).
    pub acks: u64,
    /// Retransmit-timer firings in the reliable sublayer.
    pub rto_fired: u64,
    /// Unicasts to an in-plane node outside the sender's radio range.
    /// The paper's `G*` locality discipline means such a send can never
    /// leave the radio: the copy is discarded before the fault model and
    /// counted here (not in `sent`/`dropped`, so link-level ledgers stay
    /// conserved).
    pub non_neighbor_sends: u64,
    /// High-water mark of the event queue.
    pub max_queue_depth: usize,
    /// Per-kind breakdown, keyed by [`Message::kind`](crate::Message::kind).
    pub per_kind: BTreeMap<&'static str, KindCounts>,
}

impl NetStats {
    /// Fraction of transmissions lost (0 when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    pub(crate) fn kind(&mut self, k: &'static str) -> &mut KindCounts {
        self.per_kind.entry(k).or_default()
    }
}

/// A replay transcript: a rolling FNV-1a digest over every event the
/// runtime processes (deliveries, drops, timer firings), plus optionally
/// the full event log. Two runs are *replay-identical* iff their digests
/// match; [`crate::Runtime::record_trace`] additionally keeps the
/// human-readable entries so tests can diff them.
#[derive(Debug, Clone)]
pub struct Transcript {
    digest: u64,
    entries: Option<Vec<String>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Transcript {
    fn default() -> Self {
        Transcript {
            digest: FNV_OFFSET,
            entries: None,
        }
    }
}

/// A `fmt::Write` sink that folds every formatted byte straight into a
/// rolling FNV-1a state — digesting an event record costs zero heap
/// allocations, unlike rendering it to a `String` first.
struct FnvSink<'a>(&'a mut u64);

impl fmt::Write for FnvSink<'_> {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        let mut d = *self.0;
        for &b in s.as_bytes() {
            d ^= b as u64;
            d = d.wrapping_mul(FNV_PRIME);
        }
        *self.0 = d;
        Ok(())
    }
}

impl Transcript {
    /// A fresh transcript; pass `record = true` to keep full entries.
    pub fn new(record: bool) -> Self {
        Transcript {
            digest: FNV_OFFSET,
            entries: if record { Some(Vec::new()) } else { None },
        }
    }

    /// Fold one event record into the digest (and the log if recording).
    ///
    /// The record is streamed into the digest via [`FnvSink`]; the only
    /// time it is materialized as a `String` is when full-entry recording
    /// is on — the hot path (tracing off) never allocates here.
    pub(crate) fn note(&mut self, args: fmt::Arguments<'_>) {
        if let Some(log) = &mut self.entries {
            let entry = args.to_string();
            FnvSink(&mut self.digest).write_str(&entry).unwrap();
            log.push(entry);
        } else {
            // Formatting into the sink cannot fail: FnvSink never errors.
            FnvSink(&mut self.digest).write_fmt(args).unwrap();
        }
        // Separator so concatenation ambiguity can't collide entries.
        self.digest ^= 0xff;
        self.digest = self.digest.wrapping_mul(FNV_PRIME);
    }

    /// The rolling digest over all events so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The full event log, if recording was enabled.
    pub fn entries(&self) -> Option<&[String]> {
        self.entries.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Transcript::new(false);
        a.note(format_args!("x"));
        a.note(format_args!("y"));
        let mut b = Transcript::new(false);
        b.note(format_args!("y"));
        b.note(format_args!("x"));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_ignores_recording_flag() {
        let mut a = Transcript::new(false);
        let mut b = Transcript::new(true);
        for s in ["p", "q", "r"] {
            a.note(format_args!("{s}"));
            b.note(format_args!("{s}"));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.entries().unwrap().len(), 3);
        assert!(a.entries().is_none());
    }

    #[test]
    fn separator_prevents_concatenation_collisions() {
        let mut a = Transcript::new(false);
        a.note(format_args!("ab"));
        let mut b = Transcript::new(false);
        b.note(format_args!("a"));
        b.note(format_args!("b"));
        assert_ne!(a.digest(), b.digest());
    }

    /// The streaming sink and the render-then-fold path must agree byte
    /// for byte, including on multi-fragment format strings.
    #[test]
    fn streamed_digest_equals_rendered_digest() {
        let mut streamed = Transcript::new(false);
        let mut rendered = Transcript::new(true);
        for i in 0..50u32 {
            streamed.note(format_args!(
                "D t={} {}->{} Msg({:?})",
                i,
                i + 1,
                i + 2,
                (i, "x")
            ));
            rendered.note(format_args!(
                "D t={} {}->{} Msg({:?})",
                i,
                i + 1,
                i + 2,
                (i, "x")
            ));
        }
        assert_eq!(streamed.digest(), rendered.digest());
    }
}
