//! Runtime instrumentation: message counters and the replay transcript.

use std::collections::BTreeMap;

/// Counters for one message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindCounts {
    /// Link-level transmissions attempted (each broadcast counts once per
    /// receiver).
    pub sent: u64,
    /// Copies actually delivered (duplicates included).
    pub delivered: u64,
    /// Transmissions lost to the fault model.
    pub dropped: u64,
}

/// Aggregate counters for one run, overall and per message kind.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Link-level transmissions attempted.
    pub sent: u64,
    /// Copies delivered (duplicates included).
    pub delivered: u64,
    /// Transmissions lost.
    pub dropped: u64,
    /// Extra copies created by duplication faults.
    pub duplicated: u64,
    /// Radio broadcasts requested (before per-receiver fan-out).
    pub broadcasts: u64,
    /// Timers armed.
    pub timers_set: u64,
    /// Timers fired.
    pub timers_fired: u64,
    /// Data retransmissions by the reliable-delivery sublayer. Folded in
    /// by reliable-transport drivers (e.g. `run_gossip_balancing` with
    /// reliability enabled); zero for best-effort-only runs.
    pub retransmits: u64,
    /// Standalone cumulative acks sent by the reliable sublayer
    /// (piggybacked acks ride data messages and are not counted here).
    pub acks: u64,
    /// Retransmit-timer firings in the reliable sublayer.
    pub rto_fired: u64,
    /// High-water mark of the event queue.
    pub max_queue_depth: usize,
    /// Per-kind breakdown, keyed by [`Message::kind`](crate::Message::kind).
    pub per_kind: BTreeMap<&'static str, KindCounts>,
}

impl NetStats {
    /// Fraction of transmissions lost (0 when nothing was sent).
    pub fn loss_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.dropped as f64 / self.sent as f64
        }
    }

    pub(crate) fn kind(&mut self, k: &'static str) -> &mut KindCounts {
        self.per_kind.entry(k).or_default()
    }
}

/// A replay transcript: a rolling FNV-1a digest over every event the
/// runtime processes (deliveries, drops, timer firings), plus optionally
/// the full event log. Two runs are *replay-identical* iff their digests
/// match; [`crate::Runtime::record_trace`] additionally keeps the
/// human-readable entries so tests can diff them.
#[derive(Debug, Clone)]
pub struct Transcript {
    digest: u64,
    entries: Option<Vec<String>>,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Transcript {
    fn default() -> Self {
        Transcript {
            digest: FNV_OFFSET,
            entries: None,
        }
    }
}

impl Transcript {
    /// A fresh transcript; pass `record = true` to keep full entries.
    pub fn new(record: bool) -> Self {
        Transcript {
            digest: FNV_OFFSET,
            entries: if record { Some(Vec::new()) } else { None },
        }
    }

    /// Fold one event record into the digest (and the log if recording).
    pub(crate) fn note(&mut self, entry: String) {
        for b in entry.as_bytes() {
            self.digest ^= *b as u64;
            self.digest = self.digest.wrapping_mul(FNV_PRIME);
        }
        // Separator so concatenation ambiguity can't collide entries.
        self.digest ^= 0xff;
        self.digest = self.digest.wrapping_mul(FNV_PRIME);
        if let Some(log) = &mut self.entries {
            log.push(entry);
        }
    }

    /// The rolling digest over all events so far.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The full event log, if recording was enabled.
    pub fn entries(&self) -> Option<&[String]> {
        self.entries.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = Transcript::new(false);
        a.note("x".into());
        a.note("y".into());
        let mut b = Transcript::new(false);
        b.note("y".into());
        b.note("x".into());
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_ignores_recording_flag() {
        let mut a = Transcript::new(false);
        let mut b = Transcript::new(true);
        for s in ["p", "q", "r"] {
            a.note(s.into());
            b.note(s.into());
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(b.entries().unwrap().len(), 3);
        assert!(a.entries().is_none());
    }

    #[test]
    fn separator_prevents_concatenation_collisions() {
        let mut a = Transcript::new(false);
        a.note("ab".into());
        let mut b = Transcript::new(false);
        b.note("a".into());
        b.note("b".into());
        assert_ne!(a.digest(), b.digest());
    }
}
