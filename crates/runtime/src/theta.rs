//! ΘALG as a fault-tolerant actor protocol (paper §2.1, hardened).
//!
//! The direct 3-round formulation (`adhoc_core::protocol`) assumes every
//! broadcast is heard. Here each round is a *time window* of `round_len`
//! ticks and the protocol survives lossy links by retransmission:
//!
//! * **Round 1** `[0, L)` — every node rebroadcasts its `Position` every
//!   `resend_every` ticks (unacknowledged flooding; receivers dedup).
//! * **Round 2** `[L, 2L)` — each node computes `N(u)` from the positions
//!   it heard and sends `Neighborhood` to each chosen neighbor,
//!   retransmitting until the matching `NbrAck` arrives or the window
//!   closes.
//! * **Round 3** `[2L, 3L)` — each node admits the nearest offer per
//!   sector and sends `Connection` (ack/retransmit again); the admitted
//!   sets are exactly the edges of `𝒩`.
//!
//! With loss rate `p` and `k = round_len / resend_every` transmissions
//! per message, a message misses its window with probability `pᵏ` — so
//! for any fixed seed and moderate `p`, the reconstructed topology equals
//! the direct `ThetaAlg::build` graph exactly; the test suite and
//! experiment E20 assert this across loss rates.

use crate::fault::FaultConfig;
use crate::node::{Actor, Ctx, Message};
use crate::runtime::Runtime;
use crate::stats::NetStats;
use adhoc_geom::{Point, SectorPartition};
use adhoc_graph::GraphBuilder;
use adhoc_proximity::SpatialGraph;

/// Timer ids used by [`ThetaNode`].
const TIMER_RESEND: u32 = 1;
const TIMER_ROUND2: u32 = 2;
const TIMER_ROUND3: u32 = 3;

/// Message alphabet of the hardened ΘALG protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ThetaMsg {
    /// Round-1 position beacon.
    Position {
        /// The sender's coordinates.
        pos: Point,
    },
    /// Round-2 neighborhood offer: "you are in my `N(u)`".
    Neighborhood,
    /// Acknowledges a [`ThetaMsg::Neighborhood`].
    NbrAck,
    /// Round-3 edge admission: "I admitted your offer".
    Connection,
    /// Acknowledges a [`ThetaMsg::Connection`].
    ConnAck,
}

impl Message for ThetaMsg {
    fn kind(&self) -> &'static str {
        match self {
            ThetaMsg::Position { .. } => "position",
            ThetaMsg::Neighborhood => "neighborhood",
            ThetaMsg::NbrAck => "nbr-ack",
            ThetaMsg::Connection => "connection",
            ThetaMsg::ConnAck => "conn-ack",
        }
    }
}

/// Protocol phase of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Broadcasting / collecting positions.
    Positions,
    /// Exchanging neighborhood offers.
    Offers,
    /// Exchanging connections.
    Connections,
}

/// Timing parameters of the hardened protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaTiming {
    /// Ticks per round window (`L`).
    pub round_len: u64,
    /// Retransmission period within a window.
    pub resend_every: u64,
}

impl Default for ThetaTiming {
    /// 64-tick rounds, retransmit every 4 ticks (16 tries per message).
    fn default() -> Self {
        ThetaTiming {
            round_len: 64,
            resend_every: 4,
        }
    }
}

impl ThetaTiming {
    /// Retransmission attempts available per message per round.
    pub fn budget(&self) -> u64 {
        self.round_len / self.resend_every.max(1)
    }

    fn validate(&self, faults: &FaultConfig) {
        assert!(self.resend_every >= 1, "resend_every must be ≥ 1");
        assert!(
            self.round_len > self.resend_every,
            "round_len must exceed resend_every"
        );
        assert!(
            faults.max_delay() < self.round_len / 2,
            "max link delay {} too close to round_len {}; late deliveries \
             would leak across round boundaries",
            faults.max_delay(),
            self.round_len
        );
    }
}

/// One ΘALG node as a local state machine.
#[derive(Debug, Clone)]
pub struct ThetaNode {
    id: u32,
    pos: Point,
    sectors: SectorPartition,
    timing: ThetaTiming,
    phase: Phase,
    /// Positions heard in round 1 (deduped by sender).
    heard: Vec<(u32, Point)>,
    /// Phase-1 output `N(u)`.
    chosen: Vec<u32>,
    /// Round-2 inbox: who offered me an edge (deduped).
    offers: Vec<u32>,
    /// Phase-2 output: admitted offers = this node's edges of `𝒩`.
    admitted: Vec<u32>,
    /// Connections received (the other endpoint's admissions) — edge
    /// awareness, not part of the graph definition.
    conn_received: Vec<u32>,
    unacked_nbr: Vec<u32>,
    unacked_conn: Vec<u32>,
}

impl ThetaNode {
    fn new(id: u32, pos: Point, sectors: SectorPartition, timing: ThetaTiming) -> Self {
        ThetaNode {
            id,
            pos,
            sectors,
            timing,
            phase: Phase::Positions,
            heard: Vec::new(),
            chosen: Vec::new(),
            offers: Vec::new(),
            admitted: Vec::new(),
            conn_received: Vec::new(),
            unacked_nbr: Vec::new(),
            unacked_conn: Vec::new(),
        }
    }

    /// The edges this node admitted (its directed contribution to `𝒩`).
    pub fn admitted(&self) -> &[u32] {
        &self.admitted
    }

    /// Connections received from the other endpoints.
    pub fn connections_received(&self) -> &[u32] {
        &self.conn_received
    }

    /// Position of a heard node, if its beacon ever arrived.
    fn heard_pos(&self, v: u32) -> Option<Point> {
        self.heard.iter().find(|(u, _)| *u == v).map(|&(_, p)| p)
    }

    /// Nearest heard node per sector — identical tie-breaking to the
    /// direct construction (smaller distance², then smaller id).
    fn nearest_per_sector(&self, candidates: impl Iterator<Item = (u32, Point)>) -> Vec<u32> {
        let k = self.sectors.count() as usize;
        let mut best: Vec<Option<(f64, u32)>> = vec![None; k];
        for (v, pv) in candidates {
            let s = self.sectors.sector_of(self.pos, pv) as usize;
            let d = self.pos.dist_sq(pv);
            let better = match best[s] {
                None => true,
                Some((bd, bv)) => d < bd || (d == bd && v < bv),
            };
            if better {
                best[s] = Some((d, v));
            }
        }
        best.iter().filter_map(|b| b.map(|(_, v)| v)).collect()
    }

    /// Re-arm the retransmit timer while it still fits inside `deadline`.
    fn rearm(&self, ctx: &mut Ctx<ThetaMsg>, deadline: u64) {
        if ctx.now() + self.timing.resend_every < deadline {
            ctx.set_timer(self.timing.resend_every, TIMER_RESEND);
        }
    }
}

impl Actor for ThetaNode {
    type Msg = ThetaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ThetaMsg>) {
        let l = self.timing.round_len;
        ctx.broadcast(ThetaMsg::Position { pos: self.pos });
        ctx.set_timer(self.timing.resend_every, TIMER_RESEND);
        ctx.set_timer(l, TIMER_ROUND2);
        ctx.set_timer(2 * l, TIMER_ROUND3);
    }

    fn on_message(&mut self, ctx: &mut Ctx<ThetaMsg>, from: u32, msg: ThetaMsg) {
        match msg {
            ThetaMsg::Position { pos } => {
                if self.heard_pos(from).is_none() {
                    self.heard.push((from, pos));
                }
            }
            ThetaMsg::Neighborhood => {
                // Always ack — the previous ack may have been lost.
                ctx.send(from, ThetaMsg::NbrAck);
                if !self.offers.contains(&from) {
                    self.offers.push(from);
                }
            }
            ThetaMsg::NbrAck => self.unacked_nbr.retain(|&v| v != from),
            ThetaMsg::Connection => {
                ctx.send(from, ThetaMsg::ConnAck);
                if !self.conn_received.contains(&from) {
                    self.conn_received.push(from);
                }
            }
            ThetaMsg::ConnAck => self.unacked_conn.retain(|&v| v != from),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<ThetaMsg>, timer: u32) {
        let l = self.timing.round_len;
        match timer {
            TIMER_ROUND2 => {
                self.phase = Phase::Offers;
                self.chosen = self.nearest_per_sector(self.heard.iter().copied());
                for &v in &self.chosen {
                    ctx.send(v, ThetaMsg::Neighborhood);
                }
                self.unacked_nbr = self.chosen.clone();
                if !self.unacked_nbr.is_empty() {
                    ctx.set_timer(self.timing.resend_every, TIMER_RESEND);
                }
            }
            TIMER_ROUND3 => {
                self.phase = Phase::Connections;
                // Admit the nearest offer per sector. An offer whose
                // Position beacon never arrived cannot be placed in a
                // sector; it is skipped (the lossless protocol can't hit
                // this: an offer implies the sender heard us, and we
                // retransmitted our beacon all round).
                let offers = std::mem::take(&mut self.offers);
                self.admitted = self.nearest_per_sector(
                    offers
                        .iter()
                        .filter_map(|&v| self.heard_pos(v).map(|p| (v, p))),
                );
                self.offers = offers;
                for &v in &self.admitted {
                    ctx.send(v, ThetaMsg::Connection);
                }
                self.unacked_conn = self.admitted.clone();
                if !self.unacked_conn.is_empty() {
                    ctx.set_timer(self.timing.resend_every, TIMER_RESEND);
                }
            }
            TIMER_RESEND => match self.phase {
                Phase::Positions => {
                    ctx.broadcast(ThetaMsg::Position { pos: self.pos });
                    self.rearm(ctx, l);
                }
                Phase::Offers => {
                    for &v in &self.unacked_nbr {
                        ctx.send(v, ThetaMsg::Neighborhood);
                    }
                    if !self.unacked_nbr.is_empty() {
                        self.rearm(ctx, 2 * l);
                    }
                }
                Phase::Connections => {
                    for &v in &self.unacked_conn {
                        ctx.send(v, ThetaMsg::Connection);
                    }
                    if !self.unacked_conn.is_empty() {
                        self.rearm(ctx, 3 * l);
                    }
                }
            },
            _ => unreachable!("unknown timer {timer}"),
        }
    }
}

/// Result of one hardened-protocol execution.
#[derive(Debug, Clone)]
pub struct ThetaRun {
    /// The reconstructed topology `𝒩` (union of admitted offers, exactly
    /// as the direct construction defines it).
    pub graph: SpatialGraph,
    /// Message/timer counters.
    pub stats: NetStats,
    /// Replay digest — equal digests ⇒ identical runs.
    pub digest: u64,
    /// Virtual time at quiescence.
    pub finished_at: u64,
    /// Fraction of admitted edges whose `Connection` message reached the
    /// other endpoint (1.0 on lossless links): how completely the nodes
    /// *know* the topology they built.
    pub edge_awareness: f64,
}

/// Execute the hardened ΘALG protocol over faulty links.
///
/// `sectors`/`range` are the ΘALG parameters (use
/// `adhoc_core::ThetaAlg::sectors` for a `θ`-derived partition);
/// `timing` sizes the round windows against the fault model.
pub fn run_theta_protocol(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
    timing: ThetaTiming,
    faults: FaultConfig,
    seed: u64,
) -> ThetaRun {
    run_theta_protocol_sharded(
        points,
        sectors,
        range,
        timing,
        faults,
        seed,
        crate::runtime::shard_threads_from_env(),
    )
}

/// [`run_theta_protocol`] on an explicit number of worker threads
/// (`<= 1` runs sequentially). The result — graph, stats, digest — is
/// bit-identical at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_theta_protocol_sharded(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
    timing: ThetaTiming,
    faults: FaultConfig,
    seed: u64,
    threads: usize,
) -> ThetaRun {
    timing.validate(&faults);
    assert!(range.is_finite() && range > 0.0, "range must be positive");
    if points.is_empty() {
        return ThetaRun {
            graph: SpatialGraph::new(Vec::new(), GraphBuilder::new(0).build(), range),
            stats: NetStats::default(),
            digest: crate::stats::Transcript::new(false).digest(),
            finished_at: 0,
            edge_awareness: 1.0,
        };
    }
    let nodes: Vec<ThetaNode> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| ThetaNode::new(i as u32, p, sectors, timing))
        .collect();
    let mut rt = Runtime::new(nodes, points, range, faults, seed);
    rt.start();
    let finished_at = if threads > 1 {
        rt.run_sharded(threads)
    } else {
        rt.run()
    };

    let mut builder = GraphBuilder::new(points.len());
    let mut admitted_total = 0u64;
    let mut aware = 0u64;
    for node in rt.nodes() {
        for &v in node.admitted() {
            builder.add_edge(node.id, v, node.pos.dist(points[v as usize]));
            admitted_total += 1;
            if rt.node(v).connections_received().contains(&node.id) {
                aware += 1;
            }
        }
    }
    ThetaRun {
        graph: SpatialGraph::new(points.to_vec(), builder.build(), range),
        stats: rt.stats().clone(),
        digest: rt.transcript().digest(),
        finished_at,
        edge_awareness: if admitted_total == 0 {
            1.0
        } else {
            aware as f64 / admitted_total as f64
        },
    }
}

/// Fraction of `reference`'s edges present in `candidate` (1.0 when every
/// reference edge was reconstructed; 1.0 for an empty reference).
pub fn edge_fidelity(reference: &SpatialGraph, candidate: &SpatialGraph) -> f64 {
    let total = reference.graph.num_edges();
    if total == 0 {
        return 1.0;
    }
    let present = reference
        .graph
        .edges()
        .filter(|&(u, v, _)| candidate.graph.has_edge(u, v))
        .count();
    present as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;
    use adhoc_core::ThetaAlg;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn lossless_matches_direct_construction() {
        for seed in [1u64, 2] {
            let points = uniform(80, seed);
            let range = 0.4;
            let alg = ThetaAlg::new(FRAC_PI_3, range);
            let direct = alg.build(&points);
            let run = run_theta_protocol(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                FaultConfig::ideal(),
                seed,
            );
            assert_eq!(direct.spatial.graph, run.graph.graph, "seed {seed}");
            assert_eq!(run.edge_awareness, 1.0);
        }
    }

    #[test]
    fn lossy_links_still_reconstruct_exactly() {
        let points = uniform(60, 5);
        let range = 0.4;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let direct = alg.build(&points);
        for loss in [0.05, 0.1, 0.2] {
            let run = run_theta_protocol(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                FaultConfig::lossy(loss),
                42,
            );
            assert_eq!(
                direct.spatial.graph, run.graph.graph,
                "loss {loss}: retransmit budget should absorb it"
            );
            assert!(run.stats.dropped > 0, "loss {loss} dropped nothing?");
        }
    }

    #[test]
    fn delays_and_duplicates_are_harmless() {
        let points = uniform(50, 9);
        let range = 0.45;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let direct = alg.build(&points);
        let faults = FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.2,
            delay: DelayDist::Uniform { min: 1, max: 8 },
        };
        let run = run_theta_protocol(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            faults,
            7,
        );
        assert_eq!(direct.spatial.graph, run.graph.graph);
        assert!(run.stats.duplicated > 0);
    }

    #[test]
    fn same_seed_same_digest_and_graph() {
        let points = uniform(40, 3);
        let alg = ThetaAlg::new(FRAC_PI_3, 0.5);
        let go = |seed| {
            run_theta_protocol(
                &points,
                alg.sectors(),
                0.5,
                ThetaTiming::default(),
                FaultConfig::lossy(0.15),
                seed,
            )
        };
        let (a, b) = (go(11), go(11));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.graph.graph, b.graph.graph);
        assert_eq!(a.stats, b.stats);
        assert_ne!(go(12).digest, a.digest);
    }

    #[test]
    fn starved_retransmit_budget_degrades_not_panics() {
        // One transmission per message and 60% loss: the graph will be
        // incomplete, but the run must finish and fidelity is measurable.
        let points = uniform(50, 8);
        let range = 0.4;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let direct = alg.build(&points);
        let timing = ThetaTiming {
            round_len: 4,
            resend_every: 3,
        };
        let run = run_theta_protocol(
            &points,
            alg.sectors(),
            range,
            timing,
            FaultConfig::lossy(0.6),
            2,
        );
        let f = edge_fidelity(&direct.spatial, &run.graph);
        assert!(f < 1.0, "a starved budget should lose edges (f = {f})");
        assert!(run.edge_awareness <= 1.0);
    }

    #[test]
    fn empty_input() {
        let run = run_theta_protocol(
            &[],
            SectorPartition::with_max_angle(FRAC_PI_3),
            1.0,
            ThetaTiming::default(),
            FaultConfig::ideal(),
            0,
        );
        assert!(run.graph.is_empty());
    }

    #[test]
    fn fidelity_measure_sane() {
        let points = uniform(30, 4);
        let alg = ThetaAlg::new(FRAC_PI_3, 0.5);
        let direct = alg.build(&points);
        assert_eq!(edge_fidelity(&direct.spatial, &direct.spatial), 1.0);
        let empty = SpatialGraph::new(points.clone(), GraphBuilder::new(points.len()).build(), 0.5);
        assert_eq!(edge_fidelity(&direct.spatial, &empty), 0.0);
        assert_eq!(edge_fidelity(&empty, &direct.spatial), 1.0);
    }
}
