//! ΘALG as a fault-tolerant actor protocol (paper §2.1, hardened).
//!
//! The direct 3-round formulation (`adhoc_core::protocol`) assumes every
//! broadcast is heard. Here each round is a *time window* of `round_len`
//! ticks and the protocol survives lossy links by retransmission:
//!
//! * **Round 1** `[0, L)` — every node rebroadcasts its `Position` every
//!   `resend_every` ticks (unacknowledged flooding; receivers dedup).
//! * **Round 2** `[L, 2L)` — each node computes `N(u)` from the positions
//!   it heard and sends `Neighborhood` to each chosen neighbor,
//!   retransmitting until the matching `NbrAck` arrives or the window
//!   closes.
//! * **Round 3** `[2L, 3L)` — each node admits the nearest offer per
//!   sector and sends `Connection` (ack/retransmit again); the admitted
//!   sets are exactly the edges of `𝒩`.
//!
//! With loss rate `p` and `k = round_len / resend_every` transmissions
//! per message, a message misses its window with probability `pᵏ` — so
//! for any fixed seed and moderate `p`, the reconstructed topology equals
//! the direct `ThetaAlg::build` graph exactly; the test suite and
//! experiment E20 assert this across loss rates.
//!
//! # Re-convergence under churn
//!
//! ΘALG is *local*: each node's cone construction reads only one-hop
//! information, so when the neighborhood changes
//! ([`Actor::on_neighborhood_change`]) the node re-runs the two-phase
//! construction in a fresh **epoch** — state is retained for surviving
//! neighbors (their positions and offers are still valid), the beacon /
//! offer / admit rounds replay on a new `round_base`, and timers carry
//! their epoch in the id so a stale round boundary can't fire into the
//! new epoch. Two repair paths keep *settled* bystanders exact without
//! restarting them: a node whose re-run drops a previously offered edge
//! sends [`ThetaMsg::Retract`] (the receiver re-admits without it), and
//! an offer arriving after a receiver settled triggers the same
//! re-admission. [`run_theta_churn`] drives a [`ChurnPlan`] through the
//! runtime and measures topology-repair latency — perturbation to the
//! last admitted-set change — against the direct offline construction on
//! the final live positions (experiment E21).

use crate::fault::FaultConfig;
use crate::node::{Actor, Ctx, Message};
use crate::runtime::Runtime;
use crate::stats::NetStats;
use crate::{ChurnPlan, MemberState};
use adhoc_geom::{Point, SectorPartition};
use adhoc_graph::GraphBuilder;
use adhoc_proximity::SpatialGraph;

/// Timer-id bases used by [`ThetaNode`]; the full id is
/// `epoch * 4 + base`, so a timer armed before a neighborhood change can
/// never fire into the node's next epoch (base 0 is never armed).
const TIMER_RESEND: u32 = 1;
const TIMER_ROUND2: u32 = 2;
const TIMER_ROUND3: u32 = 3;

/// Message alphabet of the hardened ΘALG protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum ThetaMsg {
    /// Round-1 position beacon.
    Position {
        /// The sender's coordinates.
        pos: Point,
    },
    /// Round-2 neighborhood offer: "you are in my `N(u)`".
    Neighborhood,
    /// Acknowledges a [`ThetaMsg::Neighborhood`].
    NbrAck,
    /// Round-3 edge admission: "I admitted your offer".
    Connection,
    /// Acknowledges a [`ThetaMsg::Connection`].
    ConnAck,
    /// Withdraws an earlier [`ThetaMsg::Neighborhood`]: a re-convergence
    /// epoch recomputed `N(u)` and the receiver is no longer in it.
    Retract,
    /// Acknowledges a [`ThetaMsg::Retract`].
    RetractAck,
}

impl Message for ThetaMsg {
    fn kind(&self) -> &'static str {
        match self {
            ThetaMsg::Position { .. } => "position",
            ThetaMsg::Neighborhood => "neighborhood",
            ThetaMsg::NbrAck => "nbr-ack",
            ThetaMsg::Connection => "connection",
            ThetaMsg::ConnAck => "conn-ack",
            ThetaMsg::Retract => "retract",
            ThetaMsg::RetractAck => "retract-ack",
        }
    }
}

/// Protocol phase of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Broadcasting / collecting positions.
    Positions,
    /// Exchanging neighborhood offers.
    Offers,
    /// Exchanging connections.
    Connections,
}

/// Timing parameters of the hardened protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaTiming {
    /// Ticks per round window (`L`).
    pub round_len: u64,
    /// Retransmission period within a window.
    pub resend_every: u64,
}

impl Default for ThetaTiming {
    /// 64-tick rounds, retransmit every 4 ticks (16 tries per message).
    fn default() -> Self {
        ThetaTiming {
            round_len: 64,
            resend_every: 4,
        }
    }
}

impl ThetaTiming {
    /// Retransmission attempts available per message per round.
    pub fn budget(&self) -> u64 {
        self.round_len / self.resend_every.max(1)
    }

    fn validate(&self, faults: &FaultConfig) {
        assert!(self.resend_every >= 1, "resend_every must be ≥ 1");
        assert!(
            self.round_len > self.resend_every,
            "round_len must exceed resend_every"
        );
        assert!(
            faults.max_delay() < self.round_len / 2,
            "max link delay {} too close to round_len {}; late deliveries \
             would leak across round boundaries",
            faults.max_delay(),
            self.round_len
        );
    }
}

/// One ΘALG node as a local state machine.
#[derive(Debug, Clone)]
pub struct ThetaNode {
    id: u32,
    pos: Point,
    sectors: SectorPartition,
    timing: ThetaTiming,
    phase: Phase,
    /// Positions heard in round 1 (deduped by sender).
    heard: Vec<(u32, Point)>,
    /// Phase-1 output `N(u)`.
    chosen: Vec<u32>,
    /// Round-2 inbox: who offered me an edge (deduped).
    offers: Vec<u32>,
    /// Phase-2 output: admitted offers = this node's edges of `𝒩`.
    admitted: Vec<u32>,
    /// Connections received (the other endpoint's admissions) — edge
    /// awareness, not part of the graph definition.
    conn_received: Vec<u32>,
    unacked_nbr: Vec<u32>,
    unacked_conn: Vec<u32>,
    /// Retracted offers awaiting [`ThetaMsg::RetractAck`].
    unacked_retract: Vec<u32>,
    /// Re-convergence epoch: bumped by every neighborhood change; timer
    /// ids are `epoch * 4 + base` so stale timers are silently dropped.
    epoch: u32,
    /// Virtual time the current epoch's round 1 began.
    round_base: u64,
    /// Virtual time this node last (re)computed its admitted set — the
    /// per-node settle point that repair latency is measured from.
    settled_at: u64,
    /// Deadline bounding connection/retract resends in the current epoch
    /// (extended when a late re-admission sends fresh connections).
    conn_deadline: u64,
}

impl ThetaNode {
    fn new(id: u32, pos: Point, sectors: SectorPartition, timing: ThetaTiming) -> Self {
        ThetaNode {
            id,
            pos,
            sectors,
            timing,
            phase: Phase::Positions,
            heard: Vec::new(),
            chosen: Vec::new(),
            offers: Vec::new(),
            admitted: Vec::new(),
            conn_received: Vec::new(),
            unacked_nbr: Vec::new(),
            unacked_conn: Vec::new(),
            unacked_retract: Vec::new(),
            epoch: 0,
            round_base: 0,
            settled_at: 0,
            conn_deadline: 0,
        }
    }

    /// The edges this node admitted (its directed contribution to `𝒩`).
    pub fn admitted(&self) -> &[u32] {
        &self.admitted
    }

    /// Connections received from the other endpoints.
    pub fn connections_received(&self) -> &[u32] {
        &self.conn_received
    }

    /// Virtual time this node last (re)computed its admitted set.
    pub fn settled_at(&self) -> u64 {
        self.settled_at
    }

    /// Re-convergence epochs this node went through (0 = never perturbed).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Position of a heard node, if its beacon ever arrived.
    fn heard_pos(&self, v: u32) -> Option<Point> {
        self.heard.iter().find(|(u, _)| *u == v).map(|&(_, p)| p)
    }

    /// Nearest heard node per sector — identical tie-breaking to the
    /// direct construction (smaller distance², then smaller id).
    fn nearest_per_sector(&self, candidates: impl Iterator<Item = (u32, Point)>) -> Vec<u32> {
        nearest_per_sector_at(&self.sectors, self.pos, candidates)
    }

    /// Timer id for `base` in the current epoch.
    fn tid(&self, base: u32) -> u32 {
        self.epoch * 4 + base
    }

    /// Re-arm the retransmit timer while it still fits inside `deadline`.
    fn rearm(&self, ctx: &mut Ctx<ThetaMsg>, deadline: u64) {
        if ctx.now() + self.timing.resend_every < deadline {
            ctx.set_timer(self.timing.resend_every, self.tid(TIMER_RESEND));
        }
    }

    /// Recompute the admitted set from the current offers, after an offer
    /// arrived late or was retracted while this node was already settled.
    /// Newly admitted neighbors get a `Connection` (with a retransmit
    /// window of their own); an unchanged set is a no-op.
    fn readmit(&mut self, ctx: &mut Ctx<ThetaMsg>) {
        let offers = std::mem::take(&mut self.offers);
        let new_admitted = self.nearest_per_sector(
            offers
                .iter()
                .filter_map(|&v| self.heard_pos(v).map(|p| (v, p))),
        );
        self.offers = offers;
        let mut old = self.admitted.clone();
        let mut new = new_admitted.clone();
        old.sort_unstable();
        new.sort_unstable();
        if old == new {
            self.admitted = new_admitted;
            return;
        }
        self.unacked_conn.retain(|v| new_admitted.contains(v));
        for &v in &new_admitted {
            if !self.admitted.contains(&v) {
                ctx.send(v, ThetaMsg::Connection);
                if !self.unacked_conn.contains(&v) {
                    self.unacked_conn.push(v);
                }
            }
        }
        self.admitted = new_admitted;
        self.settled_at = ctx.now();
        self.conn_deadline = self.conn_deadline.max(ctx.now() + self.timing.round_len);
        if !self.unacked_conn.is_empty() || !self.unacked_retract.is_empty() {
            ctx.set_timer(self.timing.resend_every, self.tid(TIMER_RESEND));
        }
    }
}

/// Nearest candidate per sector as seen from `origin` — the selection
/// rule of the direct construction (smaller distance², then smaller id).
/// Shared by the in-protocol computation and the offline reference that
/// churn runs are scored against.
fn nearest_per_sector_at(
    sectors: &SectorPartition,
    origin: Point,
    candidates: impl Iterator<Item = (u32, Point)>,
) -> Vec<u32> {
    let k = sectors.count() as usize;
    let mut best: Vec<Option<(f64, u32)>> = vec![None; k];
    for (v, pv) in candidates {
        let s = sectors.sector_of(origin, pv) as usize;
        let d = origin.dist_sq(pv);
        let better = match best[s] {
            None => true,
            Some((bd, bv)) => d < bd || (d == bd && v < bv),
        };
        if better {
            best[s] = Some((d, v));
        }
    }
    best.iter().filter_map(|b| b.map(|(_, v)| v)).collect()
}

impl Actor for ThetaNode {
    type Msg = ThetaMsg;

    fn on_start(&mut self, ctx: &mut Ctx<ThetaMsg>) {
        let l = self.timing.round_len;
        ctx.broadcast(ThetaMsg::Position { pos: self.pos });
        ctx.set_timer(self.timing.resend_every, self.tid(TIMER_RESEND));
        ctx.set_timer(l, self.tid(TIMER_ROUND2));
        ctx.set_timer(2 * l, self.tid(TIMER_ROUND3));
    }

    fn on_message(&mut self, ctx: &mut Ctx<ThetaMsg>, from: u32, msg: ThetaMsg) {
        match msg {
            ThetaMsg::Position { pos } => {
                // Upsert: a re-beaconing drifter overwrites its old
                // coordinates (no-op for a repeated static beacon).
                if let Some(entry) = self.heard.iter_mut().find(|(u, _)| *u == from) {
                    entry.1 = pos;
                } else {
                    self.heard.push((from, pos));
                }
            }
            ThetaMsg::Neighborhood => {
                // Always ack — the previous ack may have been lost.
                ctx.send(from, ThetaMsg::NbrAck);
                if !self.offers.contains(&from) {
                    self.offers.push(from);
                    // An offer landing after this node settled (the
                    // sender re-converged in a later epoch): re-admit
                    // instead of restarting.
                    if self.phase == Phase::Connections {
                        self.readmit(ctx);
                    }
                }
            }
            ThetaMsg::NbrAck => self.unacked_nbr.retain(|&v| v != from),
            ThetaMsg::Connection => {
                ctx.send(from, ThetaMsg::ConnAck);
                if !self.conn_received.contains(&from) {
                    self.conn_received.push(from);
                }
            }
            ThetaMsg::ConnAck => self.unacked_conn.retain(|&v| v != from),
            ThetaMsg::Retract => {
                ctx.send(from, ThetaMsg::RetractAck);
                let before = self.offers.len();
                self.offers.retain(|&v| v != from);
                if self.offers.len() != before && self.phase == Phase::Connections {
                    self.readmit(ctx);
                }
            }
            ThetaMsg::RetractAck => self.unacked_retract.retain(|&v| v != from),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<ThetaMsg>, timer: u32) {
        let l = self.timing.round_len;
        // A timer armed before a neighborhood change belongs to a dead
        // epoch: ignore it.
        if timer / 4 != self.epoch {
            return;
        }
        match timer % 4 {
            TIMER_ROUND2 => {
                self.phase = Phase::Offers;
                let new_chosen = self.nearest_per_sector(self.heard.iter().copied());
                // Offers from a previous epoch that the re-run no longer
                // makes are withdrawn so settled receivers re-admit.
                let retracts: Vec<u32> = self
                    .chosen
                    .iter()
                    .copied()
                    .filter(|v| !new_chosen.contains(v))
                    .collect();
                for &v in &retracts {
                    ctx.send(v, ThetaMsg::Retract);
                }
                self.unacked_retract = retracts;
                self.chosen = new_chosen;
                for &v in &self.chosen {
                    ctx.send(v, ThetaMsg::Neighborhood);
                }
                self.unacked_nbr = self.chosen.clone();
                if !self.unacked_nbr.is_empty() || !self.unacked_retract.is_empty() {
                    ctx.set_timer(self.timing.resend_every, self.tid(TIMER_RESEND));
                }
            }
            TIMER_ROUND3 => {
                self.phase = Phase::Connections;
                // Admit the nearest offer per sector. An offer whose
                // Position beacon never arrived cannot be placed in a
                // sector; it is skipped (the lossless protocol can't hit
                // this: an offer implies the sender heard us, and we
                // retransmitted our beacon all round).
                let offers = std::mem::take(&mut self.offers);
                self.admitted = self.nearest_per_sector(
                    offers
                        .iter()
                        .filter_map(|&v| self.heard_pos(v).map(|p| (v, p))),
                );
                self.offers = offers;
                for &v in &self.admitted {
                    ctx.send(v, ThetaMsg::Connection);
                }
                self.unacked_conn = self.admitted.clone();
                self.settled_at = ctx.now();
                self.conn_deadline = self.round_base + 3 * l;
                if !self.unacked_conn.is_empty() || !self.unacked_retract.is_empty() {
                    ctx.set_timer(self.timing.resend_every, self.tid(TIMER_RESEND));
                }
            }
            TIMER_RESEND => match self.phase {
                Phase::Positions => {
                    ctx.broadcast(ThetaMsg::Position { pos: self.pos });
                    self.rearm(ctx, self.round_base + l);
                }
                Phase::Offers => {
                    for &v in &self.unacked_nbr {
                        ctx.send(v, ThetaMsg::Neighborhood);
                    }
                    for &v in &self.unacked_retract {
                        ctx.send(v, ThetaMsg::Retract);
                    }
                    if !self.unacked_nbr.is_empty() || !self.unacked_retract.is_empty() {
                        self.rearm(ctx, self.round_base + 2 * l);
                    }
                }
                Phase::Connections => {
                    for &v in &self.unacked_conn {
                        ctx.send(v, ThetaMsg::Connection);
                    }
                    for &v in &self.unacked_retract {
                        ctx.send(v, ThetaMsg::Retract);
                    }
                    if !self.unacked_conn.is_empty() || !self.unacked_retract.is_empty() {
                        self.rearm(ctx, self.conn_deadline);
                    }
                }
            },
            _ => unreachable!("unknown timer {timer}"),
        }
    }

    fn on_neighborhood_change(&mut self, ctx: &mut Ctx<ThetaMsg>, neighbors: &[u32], pos: Point) {
        self.pos = pos;
        self.epoch += 1;
        self.round_base = ctx.now();
        // Keep what is still valid: surviving neighbors' positions and
        // offers carry over (a drifter's position is refreshed by its
        // round-1 beacon upsert); everything else re-derives.
        self.heard
            .retain(|&(v, _)| neighbors.binary_search(&v).is_ok());
        self.chosen.retain(|&v| neighbors.binary_search(&v).is_ok());
        self.offers.retain(|&v| neighbors.binary_search(&v).is_ok());
        self.admitted
            .retain(|&v| neighbors.binary_search(&v).is_ok());
        self.conn_received
            .retain(|&v| neighbors.binary_search(&v).is_ok());
        self.unacked_nbr.clear();
        self.unacked_conn.clear();
        self.unacked_retract.clear();
        self.phase = Phase::Positions;
        if neighbors.is_empty() {
            // Isolated or departed: nothing to build, nothing to arm —
            // the retains above already emptied all protocol state.
            self.settled_at = ctx.now();
            return;
        }
        let l = self.timing.round_len;
        ctx.broadcast(ThetaMsg::Position { pos: self.pos });
        ctx.set_timer(self.timing.resend_every, self.tid(TIMER_RESEND));
        ctx.set_timer(l, self.tid(TIMER_ROUND2));
        ctx.set_timer(2 * l, self.tid(TIMER_ROUND3));
    }
}

/// Result of one hardened-protocol execution.
#[derive(Debug, Clone)]
pub struct ThetaRun {
    /// The reconstructed topology `𝒩` (union of admitted offers, exactly
    /// as the direct construction defines it).
    pub graph: SpatialGraph,
    /// Message/timer counters.
    pub stats: NetStats,
    /// Replay digest — equal digests ⇒ identical runs.
    pub digest: u64,
    /// Virtual time at quiescence.
    pub finished_at: u64,
    /// Fraction of admitted edges whose `Connection` message reached the
    /// other endpoint (1.0 on lossless links): how completely the nodes
    /// *know* the topology they built.
    pub edge_awareness: f64,
}

/// Execute the hardened ΘALG protocol over faulty links.
///
/// `sectors`/`range` are the ΘALG parameters (use
/// `adhoc_core::ThetaAlg::sectors` for a `θ`-derived partition);
/// `timing` sizes the round windows against the fault model.
pub fn run_theta_protocol(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
    timing: ThetaTiming,
    faults: FaultConfig,
    seed: u64,
) -> ThetaRun {
    run_theta_protocol_sharded(
        points,
        sectors,
        range,
        timing,
        faults,
        seed,
        crate::runtime::shard_threads_from_env(),
    )
}

/// [`run_theta_protocol`] on an explicit number of worker threads
/// (`<= 1` runs sequentially). The result — graph, stats, digest — is
/// bit-identical at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_theta_protocol_sharded(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
    timing: ThetaTiming,
    faults: FaultConfig,
    seed: u64,
    threads: usize,
) -> ThetaRun {
    timing.validate(&faults);
    assert!(range.is_finite() && range > 0.0, "range must be positive");
    if points.is_empty() {
        return ThetaRun {
            graph: SpatialGraph::new(Vec::new(), GraphBuilder::new(0).build(), range),
            stats: NetStats::default(),
            digest: crate::stats::Transcript::new(false).digest(),
            finished_at: 0,
            edge_awareness: 1.0,
        };
    }
    let nodes: Vec<ThetaNode> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| ThetaNode::new(i as u32, p, sectors, timing))
        .collect();
    let mut rt = Runtime::new(nodes, points, range, faults, seed);
    rt.start();
    let finished_at = if threads > 1 {
        rt.run_sharded(threads)
    } else {
        rt.run()
    };

    let mut builder = GraphBuilder::new(points.len());
    let mut admitted_total = 0u64;
    let mut aware = 0u64;
    for node in rt.nodes() {
        for &v in node.admitted() {
            builder.add_edge(node.id, v, node.pos.dist(points[v as usize]));
            admitted_total += 1;
            if rt.node(v).connections_received().contains(&node.id) {
                aware += 1;
            }
        }
    }
    ThetaRun {
        graph: SpatialGraph::new(points.to_vec(), builder.build(), range),
        stats: rt.stats().clone(),
        digest: rt.transcript().digest(),
        finished_at,
        edge_awareness: if admitted_total == 0 {
            1.0
        } else {
            aware as f64 / admitted_total as f64
        },
    }
}

/// Result of one churn/mobility execution of the hardened protocol
/// ([`run_theta_churn`]).
#[derive(Debug, Clone)]
pub struct ThetaChurnRun {
    /// The live-node topology at quiescence: admitted edges between nodes
    /// still alive, weighted by distance at the final positions.
    pub graph: SpatialGraph,
    /// Message/timer/churn counters.
    pub stats: NetStats,
    /// Replay digest — identical across executors and thread counts.
    pub digest: u64,
    /// Virtual time at quiescence.
    pub finished_at: u64,
    /// Nodes alive at the end of the run (id order).
    pub live: Vec<u32>,
    /// Fraction of live nodes whose admitted set exactly matches the
    /// direct offline ΘALG construction on the final live positions —
    /// 1.0 means every survivor fully repaired its cone neighborhood.
    pub fidelity: f64,
    /// Topology-repair latency: ticks from the last perturbation to the
    /// moment the slowest live node last settled its admitted set. (With
    /// an empty plan this is the initial convergence time, `2·round_len`.)
    pub repair_latency: u64,
}

/// Execute the hardened ΘALG protocol under a [`ChurnPlan`]: nodes join,
/// leave, crash, and drift mid-run; survivors re-converge locally (see
/// the module docs). The result is scored against the direct offline
/// construction on the final live positions and is bit-identical across
/// executors (`threads <= 1` runs sequentially).
#[allow(clippy::too_many_arguments)]
pub fn run_theta_churn(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
    timing: ThetaTiming,
    faults: FaultConfig,
    seed: u64,
    plan: &ChurnPlan,
    threads: usize,
) -> ThetaChurnRun {
    timing.validate(&faults);
    assert!(range.is_finite() && range > 0.0, "range must be positive");
    if points.is_empty() {
        return ThetaChurnRun {
            graph: SpatialGraph::new(Vec::new(), GraphBuilder::new(0).build(), range),
            stats: NetStats::default(),
            digest: crate::stats::Transcript::new(false).digest(),
            finished_at: 0,
            live: Vec::new(),
            fidelity: 1.0,
            repair_latency: 0,
        };
    }
    let nodes: Vec<ThetaNode> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| ThetaNode::new(i as u32, p, sectors, timing))
        .collect();
    let mut rt = Runtime::new(nodes, points, range, faults, seed);
    rt.set_churn_plan(plan);
    rt.start();
    let finished_at = if threads > 1 {
        rt.run_sharded(threads)
    } else {
        rt.run()
    };

    let n = points.len();
    let live: Vec<u32> = (0..n as u32)
        .filter(|&u| rt.member_state(u) == MemberState::Alive)
        .collect();
    let positions = rt.positions().to_vec();
    // Direct offline ΘALG on the final live topology: every live node
    // chooses the nearest live radio neighbor per sector, offers
    // transpose, and each node admits the nearest offer per sector.
    let mut offers_off: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &u in &live {
        let chosen = nearest_per_sector_at(
            &sectors,
            positions[u as usize],
            rt.radio_neighbors(u)
                .iter()
                .map(|&v| (v, positions[v as usize])),
        );
        for &v in &chosen {
            offers_off[v as usize].push(u);
        }
    }
    let mut matching = 0usize;
    let mut settled = 0u64;
    let mut builder = GraphBuilder::new(n);
    for &u in &live {
        let mut want = nearest_per_sector_at(
            &sectors,
            positions[u as usize],
            offers_off[u as usize]
                .iter()
                .map(|&v| (v, positions[v as usize])),
        );
        let node = rt.node(u);
        let mut got: Vec<u32> = node.admitted().to_vec();
        got.sort_unstable();
        want.sort_unstable();
        if got == want {
            matching += 1;
        }
        for &v in node.admitted() {
            if rt.member_state(v) == MemberState::Alive {
                builder.add_edge(u, v, positions[u as usize].dist(positions[v as usize]));
            }
        }
        settled = settled.max(node.settled_at());
    }
    ThetaChurnRun {
        graph: SpatialGraph::new(positions, builder.build(), range),
        stats: rt.stats().clone(),
        digest: rt.transcript().digest(),
        finished_at,
        fidelity: if live.is_empty() {
            1.0
        } else {
            matching as f64 / live.len() as f64
        },
        repair_latency: settled.saturating_sub(rt.last_churn_time()),
        live,
    }
}

/// Fraction of `reference`'s edges present in `candidate` (1.0 when every
/// reference edge was reconstructed; 1.0 for an empty reference).
pub fn edge_fidelity(reference: &SpatialGraph, candidate: &SpatialGraph) -> f64 {
    let total = reference.graph.num_edges();
    if total == 0 {
        return 1.0;
    }
    let present = reference
        .graph
        .edges()
        .filter(|&(u, v, _)| candidate.graph.has_edge(u, v))
        .count();
    present as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;
    use adhoc_core::ThetaAlg;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn lossless_matches_direct_construction() {
        for seed in [1u64, 2] {
            let points = uniform(80, seed);
            let range = 0.4;
            let alg = ThetaAlg::new(FRAC_PI_3, range);
            let direct = alg.build(&points);
            let run = run_theta_protocol(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                FaultConfig::ideal(),
                seed,
            );
            assert_eq!(direct.spatial.graph, run.graph.graph, "seed {seed}");
            assert_eq!(run.edge_awareness, 1.0);
        }
    }

    #[test]
    fn lossy_links_still_reconstruct_exactly() {
        let points = uniform(60, 5);
        let range = 0.4;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let direct = alg.build(&points);
        for loss in [0.05, 0.1, 0.2] {
            let run = run_theta_protocol(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                FaultConfig::lossy(loss),
                42,
            );
            assert_eq!(
                direct.spatial.graph, run.graph.graph,
                "loss {loss}: retransmit budget should absorb it"
            );
            assert!(run.stats.dropped > 0, "loss {loss} dropped nothing?");
        }
    }

    #[test]
    fn delays_and_duplicates_are_harmless() {
        let points = uniform(50, 9);
        let range = 0.45;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let direct = alg.build(&points);
        let faults = FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.2,
            delay: DelayDist::Uniform { min: 1, max: 8 },
        };
        let run = run_theta_protocol(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            faults,
            7,
        );
        assert_eq!(direct.spatial.graph, run.graph.graph);
        assert!(run.stats.duplicated > 0);
    }

    #[test]
    fn same_seed_same_digest_and_graph() {
        let points = uniform(40, 3);
        let alg = ThetaAlg::new(FRAC_PI_3, 0.5);
        let go = |seed| {
            run_theta_protocol(
                &points,
                alg.sectors(),
                0.5,
                ThetaTiming::default(),
                FaultConfig::lossy(0.15),
                seed,
            )
        };
        let (a, b) = (go(11), go(11));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.graph.graph, b.graph.graph);
        assert_eq!(a.stats, b.stats);
        assert_ne!(go(12).digest, a.digest);
    }

    #[test]
    fn starved_retransmit_budget_degrades_not_panics() {
        // One transmission per message and 60% loss: the graph will be
        // incomplete, but the run must finish and fidelity is measurable.
        let points = uniform(50, 8);
        let range = 0.4;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let direct = alg.build(&points);
        let timing = ThetaTiming {
            round_len: 4,
            resend_every: 3,
        };
        let run = run_theta_protocol(
            &points,
            alg.sectors(),
            range,
            timing,
            FaultConfig::lossy(0.6),
            2,
        );
        let f = edge_fidelity(&direct.spatial, &run.graph);
        assert!(f < 1.0, "a starved budget should lose edges (f = {f})");
        assert!(run.edge_awareness <= 1.0);
    }

    #[test]
    fn empty_input() {
        let run = run_theta_protocol(
            &[],
            SectorPartition::with_max_angle(FRAC_PI_3),
            1.0,
            ThetaTiming::default(),
            FaultConfig::ideal(),
            0,
        );
        assert!(run.graph.is_empty());
    }

    #[test]
    fn lossless_churn_reconverges_to_offline_construction() {
        // Four well-separated perturbations (≥ 3·round_len apart): a
        // join, a drift, a graceful leave, and a crash. On lossless links
        // every survivor must end with exactly the admitted set the
        // offline ΘALG computes on the final live positions.
        let mut points = uniform(40, 6);
        points.push(Point::new(2.0, 2.0)); // placeholder, respawned on join
        let range = 0.45;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let plan = ChurnPlan::new()
            .join(200, 40, Point::new(0.5, 0.5))
            .drift(400, 3, Point::new(0.25, 0.6))
            .leave(600, 7)
            .crash(800, 11);
        let run = run_theta_churn(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            FaultConfig::ideal(),
            6,
            &plan,
            1,
        );
        assert_eq!(run.fidelity, 1.0, "run {:?}", run.stats);
        assert_eq!(run.live.len(), 39, "41 nodes − leaver − crasher");
        assert!(!run.live.contains(&7) && !run.live.contains(&11));
        assert!(run.live.contains(&40), "joiner must be live");
        let rl = ThetaTiming::default().round_len;
        assert!(
            run.repair_latency > 0 && run.repair_latency <= 3 * rl,
            "repair latency {} outside (0, {}]",
            run.repair_latency,
            3 * rl
        );
        assert_eq!(run.stats.joins, 1);
        assert_eq!(run.stats.leaves, 1);
        assert_eq!(run.stats.crashes, 1);
        assert_eq!(run.stats.drifts, 1);
        assert!(run.stats.reconvergences > 0);
    }

    #[test]
    fn lossy_churn_still_reconverges_exactly() {
        // Retransmission budgets absorb moderate loss during repair just
        // as they do during initial construction.
        let points = uniform(50, 12);
        let range = 0.45;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let plan = ChurnPlan::new()
            .crash(200, 5)
            .drift(500, 17, Point::new(0.4, 0.3));
        let run = run_theta_churn(
            &points,
            alg.sectors(),
            range,
            ThetaTiming::default(),
            FaultConfig::lossy(0.1),
            9,
            &plan,
            1,
        );
        assert_eq!(run.fidelity, 1.0, "10% loss must be absorbed by retries");
        assert!(run.stats.dropped > 0);
    }

    #[test]
    fn churn_digest_identical_sequential_vs_sharded() {
        let points = uniform(48, 21);
        let range = 0.45;
        let alg = ThetaAlg::new(FRAC_PI_3, range);
        let plan =
            ChurnPlan::new()
                .crash(130, 2)
                .leave(260, 9)
                .drift(400, 14, Point::new(0.7, 0.1));
        let faults = FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.05,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let go = |threads| {
            run_theta_churn(
                &points,
                alg.sectors(),
                range,
                ThetaTiming::default(),
                faults,
                33,
                &plan,
                threads,
            )
        };
        let seq = go(1);
        for threads in [4, 8] {
            let sh = go(threads);
            assert_eq!(sh.digest, seq.digest, "threads={threads}");
            assert_eq!(sh.stats, seq.stats, "threads={threads}");
            assert_eq!(sh.graph.graph, seq.graph.graph, "threads={threads}");
            assert_eq!(sh.fidelity, seq.fidelity, "threads={threads}");
            assert_eq!(sh.repair_latency, seq.repair_latency, "threads={threads}");
        }
    }

    #[test]
    fn empty_churn_plan_matches_plain_protocol_run() {
        let points = uniform(40, 3);
        let alg = ThetaAlg::new(FRAC_PI_3, 0.5);
        let faults = FaultConfig::lossy(0.15);
        let plain = run_theta_protocol(
            &points,
            alg.sectors(),
            0.5,
            ThetaTiming::default(),
            faults,
            11,
        );
        let churn = run_theta_churn(
            &points,
            alg.sectors(),
            0.5,
            ThetaTiming::default(),
            faults,
            11,
            &ChurnPlan::default(),
            1,
        );
        assert_eq!(plain.digest, churn.digest);
        assert_eq!(plain.graph.graph, churn.graph.graph);
        assert_eq!(churn.live.len(), 40);
        assert_eq!(churn.fidelity, 1.0);
    }

    #[test]
    fn fidelity_measure_sane() {
        let points = uniform(30, 4);
        let alg = ThetaAlg::new(FRAC_PI_3, 0.5);
        let direct = alg.build(&points);
        assert_eq!(edge_fidelity(&direct.spatial, &direct.spatial), 1.0);
        let empty = SpatialGraph::new(points.clone(), GraphBuilder::new(points.len()).build(), 0.5);
        assert_eq!(edge_fidelity(&direct.spatial, &empty), 0.0);
        assert_eq!(edge_fidelity(&empty, &direct.spatial), 1.0);
    }
}
