//! The `(T, γ)`-balancing router as a distributed actor protocol with
//! height gossip (paper §3.2 and its control-traffic remark).
//!
//! The centralized `BalancingRouter` (crate `adhoc-routing`) reads both
//! endpoints' buffer heights when deciding a send. Distributed nodes
//! cannot: they know their own column of the height matrix and whatever
//! their neighbors last *gossiped*. This module makes that explicit:
//!
//! * every `refresh_every` routing steps a node sends a `Heights` message
//!   to each topology neighbor (the `StaleBalancingRouter` ablation's
//!   refresh period, now a real message that can be lost or delayed);
//! * send decisions use the freshest cached neighbor heights;
//! * data packets are `Packet` messages over the same faulty links —
//!   sequence-numbered so duplicated deliveries are idempotent, and
//!   accounted so lost packets are visible instead of silently vanishing.
//!
//! Conservation therefore holds in ledger form:
//! `injected = absorbed + buffered + overflow_dropped + link_lost`,
//! asserted by [`GossipRun::conserved`] after every run.

use crate::adversary::{AdversarialActor, AdversaryPlan, AdversaryTarget, Attack, Custody};
use crate::fault::FaultConfig;
use crate::node::{Actor, Ctx, Message};
use crate::reliable::{ReliableActor, ReliableConfig};
use crate::runtime::Runtime;
use crate::stats::NetStats;
use crate::ChurnPlan;
use adhoc_geom::Point;
use adhoc_proximity::SpatialGraph;
use adhoc_routing::BalancingConfig;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Timer id for the per-step tick.
const TIMER_STEP: u32 = 1;

/// Messages of the distributed balancing protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum GossipMsg {
    /// Height gossip: the sender's buffer heights, one per destination
    /// (indexed like the shared destination list), stamped with the
    /// sender's routing step so reordered deliveries can't roll a cache
    /// back to staler values.
    Heights {
        /// The sender's routing step when the gossip was emitted.
        step: u64,
        /// The sender's buffer heights at that step.
        heights: Vec<u32>,
    },
    /// One data packet bound for `dest`; `seq` is unique per sender so
    /// receivers can discard duplicated deliveries.
    Packet {
        /// Final destination node.
        dest: u32,
        /// Sender-local sequence number.
        seq: u32,
    },
    /// Defense-layer attestation (sent only with
    /// [`GossipConfig::with_defense`]): the sender's sworn record of the
    /// height frames it last observed, one `(peer, peer's gossip step,
    /// FNV-1a digest of the heights vector)` triple per heard neighbor.
    /// The digest stands in for a signature over the frame: a receiver
    /// that cached a *different* frame from `peer` for the same step has
    /// caught `peer` equivocating — honest nodes send one frame per step
    /// to everyone, so two signed, same-step digests can only differ if
    /// `peer` forged at least one of them.
    Attest {
        /// `(peer, step, heights digest)` per cached neighbor.
        frames: Vec<(u32, u64, u64)>,
    },
}

impl Message for GossipMsg {
    fn kind(&self) -> &'static str {
        match self {
            GossipMsg::Heights { .. } => "heights",
            GossipMsg::Packet { .. } => "packet",
            GossipMsg::Attest { .. } => "attest",
        }
    }
}

impl AdversaryTarget for GossipMsg {
    fn is_control(&self) -> bool {
        matches!(self, GossipMsg::Heights { .. })
    }

    fn is_data(&self) -> bool {
        matches!(self, GossipMsg::Packet { .. })
    }

    fn data_seq(&self) -> Option<u32> {
        match self {
            GossipMsg::Packet { seq, .. } => Some(*seq),
            _ => None,
        }
    }

    fn forged(&self, attack: &Attack, to: u32) -> Option<Self> {
        let GossipMsg::Heights { step, heights } = self else {
            return None;
        };
        let lie = |h: u32| GossipMsg::Heights {
            step: *step,
            heights: vec![h; heights.len()],
        };
        match attack {
            Attack::Deflate { .. } => Some(lie(0)),
            Attack::Inflate => Some(lie(u32::MAX)),
            // Equivocation differentiates *unicast* receivers by parity;
            // broadcasts (`to == u32::MAX`) fall in the odd bucket.
            Attack::Equivocate => Some(lie(if to.is_multiple_of(2) { 0 } else { u32::MAX })),
            Attack::Replay | Attack::SelectiveDrop { .. } => None,
        }
    }

    fn restamped(&self, frozen: &Self) -> Self {
        match (self, frozen) {
            (GossipMsg::Heights { step, .. }, GossipMsg::Heights { heights, .. }) => {
                GossipMsg::Heights {
                    step: *step,
                    heights: heights.clone(),
                }
            }
            _ => self.clone(),
        }
    }

    fn consumed(&self, attack: &Attack, from: u32) -> Option<Custody> {
        if !matches!(self, GossipMsg::Packet { .. }) {
            return None;
        }
        match attack {
            Attack::Deflate { blackhole: true } => Some(Custody::Stolen),
            Attack::SelectiveDrop { sources } if sources.contains(&from) => {
                Some(Custody::Blackholed)
            }
            _ => None,
        }
    }
}

/// Observed height frames remembered per peer for attestation. Small:
/// just deep enough to match neighbors' sworn records, which trail our
/// own first-hand observations by a gossip frame or two.
const OBSERVED_WINDOW: usize = 4;

/// FNV-1a over a heights vector — the attestation layer's stand-in for
/// a signature binding `(peer, step)` to the advertised frame.
fn heights_digest(heights: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &v in heights {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

/// Reliability predicate for the balancing protocol: data packets ride
/// the reliable sublayer, heights gossip stays best-effort — a stale
/// height retransmitted late is worth less than the next periodic
/// refresh, and §3.2's guarantee only needs the *packets* to survive.
fn needs_reliability(msg: &GossipMsg) -> bool {
    matches!(msg, GossipMsg::Packet { .. })
}

/// Parameters of a gossip-balancing run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GossipConfig {
    /// The `(T, γ, H)` balancing parameters (shared with the centralized
    /// router).
    pub balancing: BalancingConfig,
    /// Routing steps between height gossips; 1 = gossip every step
    /// (the `StaleBalancingRouter` refresh-period knob as real traffic).
    pub refresh_every: u64,
    /// Number of routing steps to simulate.
    pub steps: u64,
    /// Virtual ticks per routing step; link delays shorter than this keep
    /// gossip one step stale, longer delays increase staleness.
    pub step_len: u64,
    /// When set, `Packet` traffic rides the per-link reliable-delivery
    /// sublayer ([`crate::reliable`]) with these parameters; heights
    /// gossip stays best-effort either way. `None` = fire-and-forget.
    pub reliability: Option<ReliableConfig>,
    /// When set, every node runs the Byzantine defense layer
    /// ([`DefenseConfig`]): height plausibility checks, starvation
    /// probing, and cross-neighbor attestation feeding a suspicion score
    /// that quarantines lying peers. `None` (the default) changes
    /// nothing — honest runs stay byte-identical.
    pub defense: Option<DefenseConfig>,
}

/// Knobs of the Byzantine defense layer each node runs locally when
/// [`GossipConfig::with_defense`] is set. Three detectors feed one
/// per-peer `suspicion` score:
///
/// 1. **Plausibility** — an accepted `Heights` frame is implausible if
///    any entry exceeds the buffer capacity (honest heights cannot), or
///    if it differs from the previously cached frame by more than
///    [`DefenseConfig::max_height_rate`] per elapsed gossip step (a
///    buffer's drain/fill rate is bounded by the node's degree times the
///    per-edge capacity, the quantity `γ` prices). Implausible frames
///    are refused and raise suspicion by 1.
/// 2. **Starvation probe** — a peer that keeps advertising all-zero
///    heights *while we keep feeding it packets* is a deflation
///    attractor: an honest relay's gossip runs before its sends, so fed
///    packets are visible in its next frame, and only a traffic sink
///    (a node in the destination list, which absorbs) legitimately
///    stays at zero. Every [`DefenseConfig::probe_packets`] fed packets
///    answered by an all-zero frame raise suspicion by 1.
/// 3. **Attestation** — every [`DefenseConfig::attest_every`] steps each
///    node swears to its neighbors which `(peer, step, frame digest)` it
///    last observed ([`GossipMsg::Attest`]) — observed, not trusted, so
///    a lie refused by plausibility still testifies. A receiver holding
///    a different digest for the same `(peer, step)` has proof of
///    equivocation and raises suspicion straight to the quarantine
///    threshold.
///
/// At [`DefenseConfig::quarantine_at`] the peer is quarantined: its
/// routing edge and cached heights are pruned exactly as churn erodes a
/// departed neighbor, its future gossip is ignored (its data packets —
/// innocent bystanders — still deliver), and the topology layer can
/// re-converge around it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseConfig {
    /// Maximum plausible per-gossip-step change of one height entry.
    pub max_height_rate: u32,
    /// Packets fed to an all-zero-advertising peer before one suspicion
    /// point accrues.
    pub probe_packets: u64,
    /// Suspicion score at which a peer is quarantined.
    pub quarantine_at: u32,
    /// Routing steps between attestation rounds.
    pub attest_every: u64,
}

impl Default for DefenseConfig {
    /// Defaults sized for the E22 geometry: a generous height-rate bound
    /// (node degree bounds the true fill rate), an 8-packet starvation
    /// probe, quarantine at 3 strikes, attestation every 4 steps.
    fn default() -> Self {
        DefenseConfig {
            max_height_rate: 12,
            probe_packets: 8,
            quarantine_at: 3,
            attest_every: 4,
        }
    }
}

impl DefenseConfig {
    fn validate(&self) {
        assert!(self.max_height_rate >= 1, "max_height_rate must be ≥ 1");
        assert!(self.probe_packets >= 1, "probe_packets must be ≥ 1");
        assert!(self.quarantine_at >= 1, "quarantine_at must be ≥ 1");
        assert!(self.attest_every >= 1, "attest_every must be ≥ 1");
    }
}

impl GossipConfig {
    /// Sensible defaults: gossip every step, 8-tick steps,
    /// fire-and-forget links, no defense layer.
    pub fn new(balancing: BalancingConfig, steps: u64) -> Self {
        GossipConfig {
            balancing,
            refresh_every: 1,
            steps,
            step_len: 8,
            reliability: None,
            defense: None,
        }
    }

    /// Route `Packet` traffic through the reliable sublayer.
    pub fn with_reliability(mut self, reliability: ReliableConfig) -> Self {
        self.reliability = Some(reliability);
        self
    }

    /// Run the Byzantine defense layer on every node.
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = Some(defense);
        self
    }

    fn validate(&self) {
        assert!(self.refresh_every >= 1, "refresh_every must be ≥ 1");
        assert!(self.step_len >= 2, "step_len must be ≥ 2");
        if let Some(r) = &self.reliability {
            r.validate();
        }
        if let Some(d) = &self.defense {
            d.validate();
        }
    }
}

/// One balancing node: its own height column, cached neighbor heights,
/// and a dedup set for at-most-once packet accounting.
#[derive(Debug, Clone)]
pub struct GossipNode {
    id: u32,
    /// `(neighbor, edge cost)` pairs from the topology.
    nbrs: Vec<(u32, f64)>,
    dests: Vec<u32>,
    /// Own buffer heights, one per destination.
    heights: Vec<u32>,
    /// Freshest gossiped heights per neighbor, tagged with the sender
    /// step that produced them — the tag is what lets `on_message` refuse
    /// reordered (older) gossip instead of overwriting fresher state.
    cached: BTreeMap<u32, (u64, Vec<u32>)>,
    /// Bounded per-sender duplicate suppression (O(1) per neighbor,
    /// regardless of run length — see [`DedupWindow`]).
    seen: BTreeMap<u32, DedupWindow>,
    /// Injections scheduled for this node: `(step, dest)`, sorted by step.
    schedule: Vec<(u64, u32)>,
    next_inj: usize,
    cfg: GossipConfig,
    step: u64,
    seq: u32,
    /// Defense: per-peer suspicion score (empty with defense off).
    suspicion: BTreeMap<u32, u32>,
    /// Defense: packets fed to a peer since its last non-zero frame.
    fed: BTreeMap<u32, u64>,
    /// Defense: recent *observed* frames per peer, `(step, digest)`,
    /// newest-last and capped at [`OBSERVED_WINDOW`]. Kept separately
    /// from `cached` because attestation must cover frames plausibility
    /// refused to trust (an equivocator whose lie to *us* was
    /// implausible is convicted by what it told the neighbors it was
    /// attracting), and kept as a short history because a neighbor's
    /// sworn record lags our own observations by a frame.
    observed: BTreeMap<u32, Vec<(u64, u64)>>,
    /// Defense: quarantined peers — routing edge and gossip severed.
    quarantined: BTreeSet<u32>,
    /// Whether the per-step tick is currently armed. Joiners receive no
    /// `on_start`; their first `on_neighborhood_change` bootstraps the
    /// tick instead, and this flag keeps that idempotent.
    ticking: bool,
    /// Local ledger.
    counts: NodeCounts,
}

/// Per-node packet ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeCounts {
    /// Packets admitted at this node.
    pub injected: u64,
    /// Injections refused by admission control (full buffer).
    pub admission_dropped: u64,
    /// Packets absorbed here (this node was the destination).
    pub absorbed: u64,
    /// Packets arriving to a full buffer and discarded.
    pub overflow_dropped: u64,
    /// Packet transmissions originated here (each decrements a buffer).
    pub packets_sent: u64,
    /// Distinct packets accepted from neighbors (duplicates excluded).
    pub packets_received: u64,
    /// Height gossips sent.
    pub gossips_sent: u64,
    /// Reordered (out-of-date) height gossips discarded on receipt.
    pub stale_gossip_dropped: u64,
    /// Defense: height frames refused as implausible.
    pub implausible_gossip: u64,
    /// Defense: equivocations proven by attestation mismatch.
    pub equivocations: u64,
    /// Defense: attestation messages sent.
    pub attests_sent: u64,
    /// Defense: peers this node quarantined.
    pub quarantines: u64,
}

/// Duplicate suppression for one sender in O(1) space: the highest
/// accepted sequence number plus a 64-wide bitmask of recently accepted
/// seqs below it. `seq` is monotone per sender, so only copies delayed
/// past the window can be misjudged — anything more than 63 behind the
/// high-water mark is conservatively treated as a duplicate (the ledger
/// then books the packet as link-lost rather than double-counting it).
/// The previous implementation kept every `(sender, seq)` pair ever
/// accepted in a `HashSet`, which grows without bound in long runs.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct DedupWindow {
    /// Highest accepted seq (meaningful iff `any`).
    hi: u32,
    /// Bit `k` set ⇔ seq `hi − k` was accepted (bit 0 is `hi` itself).
    mask: u64,
    any: bool,
}

impl DedupWindow {
    /// Record `seq`; returns true iff it was not seen before.
    pub(crate) fn accept(&mut self, seq: u32) -> bool {
        if !self.any {
            (self.any, self.hi, self.mask) = (true, seq, 1);
            return true;
        }
        if seq > self.hi {
            let shift = seq - self.hi;
            self.mask = if shift >= 64 { 0 } else { self.mask << shift };
            self.mask |= 1;
            self.hi = seq;
            return true;
        }
        let back = self.hi - seq;
        if back >= 64 || self.mask & (1 << back) != 0 {
            return false;
        }
        self.mask |= 1 << back;
        true
    }
}

impl GossipNode {
    fn col(&self, dest: u32) -> Option<usize> {
        self.dests.iter().position(|&d| d == dest)
    }

    /// Inject one packet for `dest` (admission control applies).
    fn inject(&mut self, dest: u32) {
        if dest == self.id {
            self.counts.injected += 1;
            self.counts.absorbed += 1;
            return;
        }
        let Some(c) = self.col(dest) else {
            // Not a registered destination: refuse.
            self.counts.admission_dropped += 1;
            return;
        };
        if self.heights[c] < self.cfg.balancing.capacity {
            self.heights[c] += 1;
            self.counts.injected += 1;
        } else {
            self.counts.admission_dropped += 1;
        }
    }

    /// The paper's step-1 rule for the directed edge `self → (w, cost)`,
    /// using gossiped heights for `w`: the destination maximizing
    /// `h_v,d − ĥ_w,d − c·γ` if that value exceeds `T` — and, since the
    /// sender is authoritative for its own buffers, only if `h_v,d > 0`.
    fn best_send(&self, w: u32, cost: f64) -> Option<usize> {
        let cached = self.cached.get(&w);
        let mut best: Option<(f64, usize)> = None;
        for (c, &d) in self.dests.iter().enumerate() {
            if self.heights[c] == 0 || d == self.id {
                continue;
            }
            let hw = if w == d {
                0
            } else {
                cached.map_or(0, |(_, h)| h[c])
            };
            let value = self.heights[c] as f64 - hw as f64 - cost * self.cfg.balancing.gamma;
            if value > self.cfg.balancing.threshold && best.is_none_or(|(bv, _)| value > bv) {
                best = Some((value, c));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Executed once per routing step: inject scheduled packets, gossip
    /// heights if due, attest if due, then decide one send per outgoing
    /// edge direction.
    fn run_step(&mut self, ctx: &mut Ctx<GossipMsg>) {
        while self.next_inj < self.schedule.len() && self.schedule[self.next_inj].0 == self.step {
            let dest = self.schedule[self.next_inj].1;
            self.next_inj += 1;
            self.inject(dest);
        }
        if self.step.is_multiple_of(self.cfg.refresh_every) {
            for &(w, _) in &self.nbrs {
                ctx.send(
                    w,
                    GossipMsg::Heights {
                        step: self.step,
                        heights: self.heights.clone(),
                    },
                );
                self.counts.gossips_sent += 1;
            }
        }
        if let Some(def) = self.cfg.defense {
            if self.step.is_multiple_of(def.attest_every) && !self.observed.is_empty() {
                let frames: Vec<(u32, u64, u64)> = self
                    .observed
                    .iter()
                    .filter_map(|(&peer, hist)| {
                        hist.iter()
                            .max_by_key(|&&(step, _)| step)
                            .map(|&(step, digest)| (peer, step, digest))
                    })
                    .collect();
                for &(w, _) in &self.nbrs {
                    ctx.send(
                        w,
                        GossipMsg::Attest {
                            frames: frames.clone(),
                        },
                    );
                    self.counts.attests_sent += 1;
                }
            }
        }
        for i in 0..self.nbrs.len() {
            let (w, cost) = self.nbrs[i];
            if let Some(c) = self.best_send(w, cost) {
                self.heights[c] -= 1;
                self.counts.packets_sent += 1;
                let seq = self.seq;
                self.seq += 1;
                // Starvation-probe bookkeeping: count what we feed each
                // peer (sinks absorb legitimately, so they are exempt).
                if self.cfg.defense.is_some() && !self.dests.contains(&w) {
                    *self.fed.entry(w).or_default() += 1;
                }
                ctx.send(
                    w,
                    GossipMsg::Packet {
                        dest: self.dests[c],
                        seq,
                    },
                );
            }
        }
        self.step += 1;
        if self.step < self.cfg.steps {
            ctx.set_timer(self.cfg.step_len, TIMER_STEP);
        } else {
            self.ticking = false;
        }
    }

    /// Raise `peer`'s suspicion by `weight`; quarantine at the threshold.
    fn suspect(&mut self, peer: u32, weight: u32) {
        let Some(def) = self.cfg.defense else { return };
        let s = self.suspicion.entry(peer).or_default();
        *s += weight;
        if *s >= def.quarantine_at {
            self.quarantine(peer);
        }
    }

    /// Sever `peer`: drop the routing edge and cached heights exactly as
    /// churn erodes a departed neighbor, and ignore its future gossip.
    /// Its data packets — innocent traffic it merely relayed — still
    /// deliver, and the dedup window survives so late duplicate copies
    /// stay refused.
    fn quarantine(&mut self, peer: u32) {
        if !self.quarantined.insert(peer) {
            return;
        }
        self.nbrs.retain(|&(w, _)| w != peer);
        self.cached.remove(&peer);
        self.suspicion.remove(&peer);
        self.fed.remove(&peer);
        self.observed.remove(&peer);
        self.counts.quarantines += 1;
    }

    /// Defense checks on a fresh (non-stale) height frame from `from`.
    /// Returns true when the frame is plausible and may be cached.
    fn vet_heights(&mut self, from: u32, step: u64, heights: &[u32]) -> bool {
        let Some(def) = self.cfg.defense else {
            return true;
        };
        // Capacity bound: honest buffers cannot exceed the configured
        // capacity, so any larger advertisement is a fabrication
        // (catches inflation on the very first frame).
        let mut implausible = heights.iter().any(|&h| h > self.cfg.balancing.capacity);
        // Rate bound: a buffer drains/fills at most `max_height_rate`
        // per gossip step (degree × per-edge capacity, the γ-priced
        // quantity), so a jump past that over the elapsed steps is a lie.
        if !implausible {
            if let Some((old_step, old)) = self.cached.get(&from) {
                let allowed =
                    u64::from(def.max_height_rate) * step.saturating_sub(*old_step).max(1);
                implausible = heights
                    .iter()
                    .zip(old)
                    .any(|(&h, &o)| u64::from(h.abs_diff(o)) > allowed);
            }
        }
        if implausible {
            self.counts.implausible_gossip += 1;
            self.suspect(from, 1);
            return false;
        }
        // Starvation probe: an honest relay gossips *before* it sends,
        // so packets we fed it show in its next frame — all-zero answers
        // under sustained feeding are the deflation-attractor signature.
        if heights.iter().any(|&h| h > 0) {
            self.fed.insert(from, 0);
        } else if !self.dests.contains(&from) {
            let fed = self.fed.get(&from).copied().unwrap_or(0);
            if fed >= def.probe_packets {
                self.fed.insert(from, 0);
                self.suspect(from, 1);
            }
        }
        true
    }
}

impl Actor for GossipNode {
    type Msg = GossipMsg;

    fn on_start(&mut self, ctx: &mut Ctx<GossipMsg>) {
        if self.cfg.steps > 0 {
            ctx.set_timer(self.cfg.step_len, TIMER_STEP);
            self.ticking = true;
        }
    }

    fn on_message(&mut self, _ctx: &mut Ctx<GossipMsg>, from: u32, msg: GossipMsg) {
        match msg {
            GossipMsg::Heights { step, heights } => {
                // A quarantined peer's word is worthless: ignore it.
                if self.quarantined.contains(&from) {
                    return;
                }
                // Reordered deliveries (any positive-width delay
                // distribution) must never roll the cache back: keep the
                // entry with the newest sender step.
                match self.cached.get(&from) {
                    Some(&(cached_step, _)) if cached_step > step => {
                        self.counts.stale_gossip_dropped += 1;
                    }
                    _ => {
                        // Record what the peer *said* regardless of
                        // whether we trust it: attestation compares
                        // observations, so a frame refused as
                        // implausible still convicts an equivocator.
                        if self.cfg.defense.is_some() {
                            let hist = self.observed.entry(from).or_default();
                            if !hist.iter().any(|&(s, _)| s == step) {
                                hist.push((step, heights_digest(&heights)));
                                if hist.len() > OBSERVED_WINDOW {
                                    hist.remove(0);
                                }
                            }
                        }
                        if self.vet_heights(from, step, &heights)
                            && !self.quarantined.contains(&from)
                        {
                            self.cached.insert(from, (step, heights));
                        }
                    }
                }
            }
            GossipMsg::Attest { frames } => {
                // Compare a neighbor's sworn record only against frames
                // *we* accepted first-hand — never third-party claims
                // against each other, so no attester can frame a peer
                // alone. Matching `(peer, step)` with differing digests
                // is proof of equivocation: quarantine immediately.
                if self.cfg.defense.is_none() || self.quarantined.contains(&from) {
                    return;
                }
                let mut caught: Vec<u32> = Vec::new();
                for (peer, step, digest) in frames {
                    if self.quarantined.contains(&peer) {
                        continue;
                    }
                    if let Some(hist) = self.observed.get(&peer) {
                        if let Some(&(_, my_digest)) = hist.iter().find(|&&(s, _)| s == step) {
                            if my_digest != digest {
                                caught.push(peer);
                            }
                        }
                    }
                }
                for peer in caught {
                    self.counts.equivocations += 1;
                    let threshold = self
                        .cfg
                        .defense
                        .expect("defense checked above")
                        .quarantine_at;
                    self.suspect(peer, threshold);
                }
            }
            GossipMsg::Packet { dest, seq } => {
                // Dedup is only needed against fault-layer duplicate
                // copies, whose arrival skew is bounded by the delay
                // distribution — well within the window. Under the
                // reliable sublayer the transport already delivers
                // exactly-once per sequence number, and retransmission
                // latency can legitimately push a packet further behind
                // the sender's newest seq than any bounded window, so
                // datagram dedup is skipped there.
                if self.cfg.reliability.is_none() && !self.seen.entry(from).or_default().accept(seq)
                {
                    return; // duplicated delivery
                }
                self.counts.packets_received += 1;
                if dest == self.id {
                    self.counts.absorbed += 1;
                    return;
                }
                match self.col(dest) {
                    Some(c) if self.heights[c] < self.cfg.balancing.capacity => {
                        self.heights[c] += 1;
                    }
                    _ => self.counts.overflow_dropped += 1,
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<GossipMsg>, timer: u32) {
        debug_assert_eq!(timer, TIMER_STEP);
        self.run_step(ctx);
    }

    fn on_neighborhood_change(&mut self, ctx: &mut Ctx<GossipMsg>, neighbors: &[u32], _pos: Point) {
        // Routing follows the live radio topology: edges to departed or
        // out-of-range peers vanish (gossip churn never *adds* edges — the
        // topology graph is the input contract, churn only erodes it).
        self.nbrs
            .retain(|(w, _)| neighbors.binary_search(w).is_ok());
        self.cached
            .retain(|w, _| neighbors.binary_search(w).is_ok());
        // `seen` is deliberately NOT pruned: a duplicated copy of an old
        // packet can still be in flight when the edge erodes, and dropping
        // the sender's dedup window would double-count it on arrival
        // (received > sent breaks the conservation ledger). Windows stay
        // O(1) per ever-neighbor, so state remains bounded by n.
        // A joiner got no on_start; bootstrap its step tick here. Nodes
        // that already ran out of steps stay stopped.
        if !self.ticking && self.step < self.cfg.steps {
            self.ticking = true;
            ctx.set_timer(self.cfg.step_len, TIMER_STEP);
        }
    }
}

/// Ledger and counters of one gossip-balancing run.
#[derive(Debug, Clone, PartialEq)]
pub struct GossipRun {
    /// Packets admitted across all nodes.
    pub injected: u64,
    /// Injections refused by admission control.
    pub admission_dropped: u64,
    /// Packets absorbed at their destinations.
    pub absorbed: u64,
    /// Packets discarded at full receive buffers.
    pub overflow_dropped: u64,
    /// Packets irrecoverably lost in transit: dropped by the fault model
    /// with nobody left retrying them (fire-and-forget: every wire drop;
    /// reliable mode: only retry-budget exhaustion).
    pub link_lost: u64,
    /// Packets still in reliable-transport custody (windowed or
    /// backlogged, awaiting (re)transmission or ack) when the run went
    /// quiescent. Always 0 in fire-and-forget mode.
    pub in_flight: u64,
    /// Reliable-transport give-ups (retry budget exhausted). This can
    /// exceed the packets actually lost: a packet whose acks were all
    /// dropped is delivered *and* given up.
    pub gave_up: u64,
    /// Packets still buffered at the end of the run.
    pub buffered: u64,
    /// Packet transmissions attempted.
    pub packets_sent: u64,
    /// Height gossips sent.
    pub gossips_sent: u64,
    /// Reordered height gossips discarded instead of overwriting fresher
    /// cached values.
    pub stale_gossip_dropped: u64,
    /// Packets eaten by deflating blackholes that attracted them
    /// (0 without an adversary).
    pub stolen: u64,
    /// Packets eaten by selective forwarders they merely passed
    /// (0 without an adversary).
    pub blackholed: u64,
    /// Defense: height frames refused as implausible.
    pub implausible_gossip: u64,
    /// Defense: equivocations proven by attestation mismatch.
    pub equivocations: u64,
    /// Defense: attestation messages sent.
    pub attests_sent: u64,
    /// Defense: quarantine events (each node quarantining a peer counts
    /// once).
    pub quarantines: u64,
    /// Defense: the distinct peers quarantined by at least one node,
    /// sorted — the set the topology layer re-converges around.
    pub quarantined_nodes: Vec<u32>,
    /// Runtime counters (transport-layer retransmits/acks/rto_fired are
    /// folded in for reliable runs).
    pub stats: NetStats,
    /// Replay digest.
    pub digest: u64,
}

impl GossipRun {
    /// The ledger identity every run must satisfy, extended for
    /// retransmissions and theft: packets in reliable-transport custody
    /// are still in the network, and packets an adversary ate are
    /// accounted, not vanished.
    pub fn conserved(&self) -> bool {
        self.injected
            == self.absorbed
                + self.buffered
                + self.overflow_dropped
                + self.link_lost
                + self.in_flight
                + self.stolen
                + self.blackholed
    }

    /// Delivered fraction of admitted packets.
    pub fn delivery_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.absorbed as f64 / self.injected as f64
        }
    }
}

/// A deterministic uniform workload: `per_step` packets per routing step,
/// each from a uniform source to a uniform destination in `dests`.
/// Returns `(step, source, dest)` triples.
pub fn uniform_workload(
    num_nodes: usize,
    dests: &[u32],
    steps: u64,
    per_step: u32,
    seed: u64,
) -> Vec<(u64, u32, u32)> {
    assert!(num_nodes > 0 && !dests.is_empty());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut plan = Vec::with_capacity((steps * per_step as u64) as usize);
    for step in 0..steps {
        for _ in 0..per_step {
            let src = rng.gen_range(0..num_nodes as u32);
            let dest = dests[rng.gen_range(0..dests.len())];
            plan.push((step, src, dest));
        }
    }
    plan
}

/// Build the node actors for one run (workload split per source,
/// sorted by step).
fn build_nodes(
    topology: &SpatialGraph,
    dests: &[u32],
    cfg: GossipConfig,
    workload: &[(u64, u32, u32)],
) -> Vec<GossipNode> {
    let n = topology.len();
    let mut schedules: Vec<Vec<(u64, u32)>> = vec![Vec::new(); n];
    for &(step, src, dest) in workload {
        schedules[src as usize].push((step, dest));
    }
    for s in schedules.iter_mut() {
        s.sort_unstable_by_key(|&(step, _)| step);
    }
    (0..n as u32)
        .map(|id| GossipNode {
            id,
            nbrs: topology
                .graph
                .neighbors(id)
                .iter()
                .map(|a| (a.to, a.weight))
                .collect(),
            dests: dests.to_vec(),
            heights: vec![0; dests.len()],
            cached: BTreeMap::new(),
            seen: BTreeMap::new(),
            schedule: std::mem::take(&mut schedules[id as usize]),
            next_inj: 0,
            cfg,
            step: 0,
            seq: 0,
            suspicion: BTreeMap::new(),
            fed: BTreeMap::new(),
            observed: BTreeMap::new(),
            quarantined: BTreeSet::new(),
            ticking: false,
            counts: NodeCounts::default(),
        })
        .collect()
}

/// Tally node ledgers into a [`GossipRun`]. `custody` is the number of
/// packets still held by reliable transports at quiescence, `gave_up`
/// their give-up count, `stolen`/`blackholed` the adversary-eaten packet
/// counts (all 0 for honest fire-and-forget runs).
fn finalize<'a>(
    nodes: impl Iterator<Item = &'a GossipNode>,
    stats: NetStats,
    digest: u64,
    custody: u64,
    gave_up: u64,
    stolen: u64,
    blackholed: u64,
) -> GossipRun {
    let mut run = GossipRun {
        injected: 0,
        admission_dropped: 0,
        absorbed: 0,
        overflow_dropped: 0,
        link_lost: 0,
        in_flight: 0,
        gave_up,
        buffered: 0,
        packets_sent: 0,
        gossips_sent: 0,
        stale_gossip_dropped: 0,
        stolen,
        blackholed,
        implausible_gossip: 0,
        equivocations: 0,
        attests_sent: 0,
        quarantines: 0,
        quarantined_nodes: Vec::new(),
        stats,
        digest,
    };
    let mut received = 0u64;
    for node in nodes {
        let c = node.counts;
        run.injected += c.injected;
        run.admission_dropped += c.admission_dropped;
        run.absorbed += c.absorbed;
        run.overflow_dropped += c.overflow_dropped;
        run.packets_sent += c.packets_sent;
        run.gossips_sent += c.gossips_sent;
        run.stale_gossip_dropped += c.stale_gossip_dropped;
        run.implausible_gossip += c.implausible_gossip;
        run.equivocations += c.equivocations;
        run.attests_sent += c.attests_sent;
        run.quarantines += c.quarantines;
        run.quarantined_nodes.extend(node.quarantined.iter());
        received += c.packets_received;
        run.buffered += node.heights.iter().map(|&h| h as u64).sum::<u64>();
    }
    run.quarantined_nodes.sort_unstable();
    run.quarantined_nodes.dedup();
    // The queue is drained, so every hop-level send was received exactly
    // once, eaten by an adversary, is still in transport custody, or is
    // gone for good. Custody is clamped to the honest outstanding count
    // because a delivered packet whose acks all died can be both
    // received and (briefly) in custody.
    let outstanding = run.packets_sent - received - stolen - blackholed;
    run.in_flight = custody.min(outstanding);
    run.link_lost = outstanding - run.in_flight;
    run
}

/// Run distributed `(T, γ)`-balancing over `topology` with height gossip,
/// routing the given workload (triples from e.g. [`uniform_workload`]).
/// All edges of the topology are active every step; edge cost is
/// Euclidean length. With [`GossipConfig::with_reliability`], `Packet`
/// traffic rides the per-link reliable sublayer while heights gossip
/// stays best-effort.
pub fn run_gossip_balancing(
    topology: &SpatialGraph,
    dests: &[u32],
    cfg: GossipConfig,
    workload: &[(u64, u32, u32)],
    faults: FaultConfig,
    seed: u64,
) -> GossipRun {
    run_gossip_balancing_sharded(
        topology,
        dests,
        cfg,
        workload,
        faults,
        seed,
        crate::runtime::shard_threads_from_env(),
    )
}

/// [`run_gossip_balancing`] on an explicit number of worker threads
/// (`<= 1` runs sequentially). The result — ledger, stats, digest — is
/// bit-identical at every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_gossip_balancing_sharded(
    topology: &SpatialGraph,
    dests: &[u32],
    cfg: GossipConfig,
    workload: &[(u64, u32, u32)],
    faults: FaultConfig,
    seed: u64,
    threads: usize,
) -> GossipRun {
    run_gossip_balancing_churn(
        topology,
        dests,
        cfg,
        workload,
        faults,
        seed,
        &ChurnPlan::default(),
        threads,
    )
}

/// [`run_gossip_balancing_sharded`] under a [`ChurnPlan`]: nodes join,
/// crash, gracefully leave, or drift mid-run, and every node's routing
/// edge set follows the live radio topology (churn only erodes the input
/// graph, never adds edges). The conservation ledger stays exact: a dead
/// node's buffered packets stay `buffered`, copies in flight to it become
/// `link_lost`, and the reliable sublayer's custody toward vanished peers
/// is abandoned rather than retried forever. Bit-identical at every
/// thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_gossip_balancing_churn(
    topology: &SpatialGraph,
    dests: &[u32],
    cfg: GossipConfig,
    workload: &[(u64, u32, u32)],
    faults: FaultConfig,
    seed: u64,
    plan: &ChurnPlan,
    threads: usize,
) -> GossipRun {
    cfg.validate();
    faults.validate();
    assert!(!dests.is_empty(), "need at least one destination");
    let nodes = build_nodes(topology, dests, cfg, workload);
    // The runtime's radio range only matters for broadcasts; this
    // protocol is purely unicast over topology edges, so any positive
    // range works.
    let range = topology.max_range.max(1e-9);

    match cfg.reliability {
        None => {
            let mut rt = Runtime::new(nodes, &topology.points, range, faults, seed);
            if !plan.is_empty() {
                rt.set_churn_plan(plan);
            }
            rt.start();
            if threads > 1 {
                rt.run_sharded(threads);
            } else {
                rt.run();
            }
            finalize(
                rt.nodes().iter(),
                rt.stats().clone(),
                rt.transcript().digest(),
                0,
                0,
                0,
                0,
            )
        }
        Some(rc) => {
            type Wrapped = ReliableActor<GossipNode, fn(&GossipMsg) -> bool>;
            let wrapped: Vec<Wrapped> = nodes
                .into_iter()
                .map(|node| {
                    ReliableActor::new(node, rc, needs_reliability as fn(&GossipMsg) -> bool)
                })
                .collect();
            let mut rt = Runtime::new(wrapped, &topology.points, range, faults, seed);
            if !plan.is_empty() {
                rt.set_churn_plan(plan);
            }
            rt.start();
            if threads > 1 {
                rt.run_sharded(threads);
            } else {
                rt.run();
            }
            let mut stats = rt.stats().clone();
            let mut custody = 0u64;
            let mut gave_up = 0u64;
            for actor in rt.nodes() {
                let c = actor.counters();
                stats.retransmits += c.retransmits;
                stats.acks += c.acks_sent;
                stats.rto_fired += c.rto_fired;
                gave_up += c.gave_up;
                custody += actor.pending_count();
            }
            finalize(
                rt.nodes().iter().map(|a| a.inner()),
                stats,
                rt.transcript().digest(),
                custody,
                gave_up,
                0,
                0,
            )
        }
    }
}

/// [`run_gossip_balancing_churn`] under an [`AdversaryPlan`]: the chosen
/// nodes' wire traffic is corrupted by their scheduled [`Attack`]s
/// through the [`AdversarialActor`] interposer, while every node
/// (compromised ones included — the adversary owns radios, not code)
/// runs the honest protocol, plus the defense layer when
/// [`GossipConfig::with_defense`] is set. Packets the adversary eats are
/// booked as `stolen`/`blackholed`, keeping the conservation ledger
/// exact. In reliable mode the interposer sits *inside* the transport —
/// a smart attacker acks what it steals, so reliability cannot recover
/// eaten packets. With an empty plan the wrapper is a true no-op:
/// byte-identical to [`run_gossip_balancing_churn`]. Bit-identical at
/// every thread count.
#[allow(clippy::too_many_arguments)]
pub fn run_gossip_balancing_adversarial(
    topology: &SpatialGraph,
    dests: &[u32],
    cfg: GossipConfig,
    workload: &[(u64, u32, u32)],
    faults: FaultConfig,
    seed: u64,
    plan: &ChurnPlan,
    adversary: &AdversaryPlan,
    threads: usize,
) -> GossipRun {
    cfg.validate();
    faults.validate();
    assert!(!dests.is_empty(), "need at least one destination");
    adversary.validate(topology.len());
    let nodes = build_nodes(topology, dests, cfg, workload);
    let dedup = cfg.reliability.is_none();
    let wrapped: Vec<AdversarialActor<GossipNode>> = nodes
        .into_iter()
        .map(|node| {
            let attacks = adversary.for_node(node.id);
            AdversarialActor::new(node, attacks, dedup)
        })
        .collect();
    let range = topology.max_range.max(1e-9);

    match cfg.reliability {
        None => {
            let mut rt = Runtime::new(wrapped, &topology.points, range, faults, seed);
            if !plan.is_empty() {
                rt.set_churn_plan(plan);
            }
            rt.start();
            if threads > 1 {
                rt.run_sharded(threads);
            } else {
                rt.run();
            }
            let (stolen, blackholed) = rt
                .nodes()
                .iter()
                .fold((0, 0), |(s, b), a| (s + a.stolen(), b + a.blackholed()));
            finalize(
                rt.nodes().iter().map(|a| a.inner()),
                rt.stats().clone(),
                rt.transcript().digest(),
                0,
                0,
                stolen,
                blackholed,
            )
        }
        Some(rc) => {
            type Wrapped = ReliableActor<AdversarialActor<GossipNode>, fn(&GossipMsg) -> bool>;
            let reliable: Vec<Wrapped> = wrapped
                .into_iter()
                .map(|actor| {
                    ReliableActor::new(actor, rc, needs_reliability as fn(&GossipMsg) -> bool)
                })
                .collect();
            let mut rt = Runtime::new(reliable, &topology.points, range, faults, seed);
            if !plan.is_empty() {
                rt.set_churn_plan(plan);
            }
            rt.start();
            if threads > 1 {
                rt.run_sharded(threads);
            } else {
                rt.run();
            }
            let mut stats = rt.stats().clone();
            let (mut custody, mut gave_up) = (0u64, 0u64);
            let (mut stolen, mut blackholed) = (0u64, 0u64);
            for actor in rt.nodes() {
                let c = actor.counters();
                stats.retransmits += c.retransmits;
                stats.acks += c.acks_sent;
                stats.rto_fired += c.rto_fired;
                gave_up += c.gave_up;
                custody += actor.pending_count();
                stolen += actor.inner().stolen();
                blackholed += actor.inner().blackholed();
            }
            finalize(
                rt.nodes().iter().map(|a| a.inner().inner()),
                stats,
                rt.transcript().digest(),
                custody,
                gave_up,
                stolen,
                blackholed,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::DelayDist;
    use adhoc_geom::Point;
    use adhoc_graph::GraphBuilder;
    use adhoc_routing::{ActiveEdge, BalancingRouter};

    fn chain(n: usize) -> SpatialGraph {
        let points: Vec<Point> = (0..n).map(|i| Point::new(i as f64 * 0.1, 0.0)).collect();
        let mut b = GraphBuilder::new(n);
        for i in 0..n - 1 {
            b.add_edge(i as u32, i as u32 + 1, 0.1);
        }
        SpatialGraph::new(points, b.build(), 0.15)
    }

    fn cfg(steps: u64) -> GossipConfig {
        GossipConfig::new(
            BalancingConfig {
                threshold: 0.5,
                gamma: 0.0,
                capacity: 50,
            },
            steps,
        )
    }

    #[test]
    fn dedup_window_accepts_once_within_window() {
        let mut w = DedupWindow::default();
        assert!(w.accept(5));
        assert!(!w.accept(5), "exact duplicate");
        assert!(w.accept(7), "forward jump");
        assert!(w.accept(6), "out-of-order within window");
        assert!(!w.accept(6) && !w.accept(5), "replays rejected");
        assert!(w.accept(7 + 63), "edge of the window");
        assert!(!w.accept(7), "63 behind: still remembered");
        assert!(!w.accept(5), "beyond the window: treated as duplicate");
    }

    #[test]
    fn dedup_window_survives_large_jumps() {
        let mut w = DedupWindow::default();
        assert!(w.accept(0));
        assert!(w.accept(1000), "shift ≥ 64 must not overflow");
        assert!(w.accept(999));
        assert!(!w.accept(1000) && !w.accept(999));
        assert!(!w.accept(0), "far-stale seq treated as duplicate");
    }

    /// Regression for the unbounded `seen: HashSet<(sender, seq)>`: over
    /// a long duplicate-heavy run, per-node dedup state must stay bounded
    /// by the neighbor count — not grow with the packet count — while
    /// accepting exactly the same packets (no drops ⇒ every transmission
    /// is accepted exactly once, duplicates discarded).
    #[test]
    fn dedup_state_stays_bounded_on_long_duplicate_heavy_runs() {
        let topo = chain(5);
        let wl = uniform_workload(5, &[4], 2000, 2, 11);
        let faults = FaultConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.4,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let nodes = build_nodes(&topo, &[4], cfg(2000), &wl);
        let mut rt = Runtime::new(nodes, &topo.points, topo.max_range.max(1e-9), faults, 11);
        rt.start();
        rt.run();

        let sent: u64 = rt.nodes().iter().map(|n| n.counts.packets_sent).sum();
        let received: u64 = rt.nodes().iter().map(|n| n.counts.packets_received).sum();
        assert_eq!(sent, received, "lossless links: accept each packet once");
        assert!(rt.stats().duplicated > 100, "run wasn't duplicate-heavy");
        assert!(sent > 1000, "run too short to expose unbounded growth");
        for node in rt.nodes() {
            assert!(
                node.seen.len() <= node.nbrs.len(),
                "node {} tracks {} dedup entries for {} neighbors",
                node.id,
                node.seen.len(),
                node.nbrs.len()
            );
        }
    }

    #[test]
    fn delivers_and_conserves_on_ideal_links() {
        let topo = chain(4);
        let wl = uniform_workload(4, &[3], 400, 1, 1);
        let run = run_gossip_balancing(&topo, &[3], cfg(400), &wl, FaultConfig::ideal(), 1);
        assert!(run.conserved(), "{run:?}");
        assert_eq!(run.link_lost, 0);
        assert_eq!(run.overflow_dropped, 0);
        assert!(run.absorbed > 100, "absorbed only {}", run.absorbed);
    }

    #[test]
    fn conserves_under_loss_and_duplication() {
        let topo = chain(5);
        let wl = uniform_workload(5, &[4], 300, 2, 2);
        let faults = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.15,
            ..FaultConfig::ideal()
        };
        let run = run_gossip_balancing(&topo, &[4], cfg(300), &wl, faults, 3);
        assert!(run.conserved(), "{run:?}");
        assert!(run.link_lost > 0, "20% loss lost nothing?");
        assert!(run.absorbed > 0);
        assert!(run.stats.duplicated > 0);
    }

    #[test]
    fn same_seed_identical_runs() {
        let topo = chain(6);
        let wl = uniform_workload(6, &[5], 200, 1, 7);
        let faults = FaultConfig::lossy(0.1);
        let go = |seed| run_gossip_balancing(&topo, &[5], cfg(200), &wl, faults, seed);
        let (a, b) = (go(5), go(5));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.absorbed, b.absorbed);
        assert_eq!(a.stats, b.stats);
        assert_ne!(go(6).digest, a.digest);
    }

    #[test]
    fn refresh_knob_trades_control_traffic_for_throughput() {
        let topo = chain(4);
        let wl = uniform_workload(4, &[3], 600, 1, 4);
        let go = |refresh| {
            let mut c = cfg(600);
            c.refresh_every = refresh;
            run_gossip_balancing(&topo, &[3], c, &wl, FaultConfig::ideal(), 9)
        };
        let fresh = go(1);
        let stale = go(10);
        assert!(fresh.conserved() && stale.conserved());
        // Control traffic scales inversely with the period...
        assert!(stale.gossips_sent * 5 < fresh.gossips_sent);
        // ...while delivery degrades gracefully, not catastrophically
        // (mirrors StaleBalancingRouter's ablation test).
        assert!(stale.absorbed * 4 >= fresh.absorbed);
        assert!(stale.absorbed > 0);
    }

    #[test]
    fn throughput_comparable_to_centralized_router_when_fresh() {
        // Same chain, same per-step injections: the distributed router
        // with per-step gossip and no faults should deliver a similar
        // count to the centralized BalancingRouter (not exactly equal —
        // gossip is one step stale by construction).
        let topo = chain(4);
        let steps = 600u64;
        let wl = uniform_workload(4, &[3], steps, 1, 11);
        let run = run_gossip_balancing(&topo, &[3], cfg(steps), &wl, FaultConfig::ideal(), 1);

        let mut central = BalancingRouter::new(
            4,
            &[3],
            BalancingConfig {
                threshold: 0.5,
                gamma: 0.0,
                capacity: 50,
            },
        );
        let edges: Vec<ActiveEdge> = topo
            .graph
            .edges()
            .map(|(u, v, c)| ActiveEdge::new(u, v, c))
            .collect();
        let mut w = 0usize;
        for step in 0..steps {
            while w < wl.len() && wl[w].0 == step {
                central.inject(wl[w].1, wl[w].2);
                w += 1;
            }
            central.step(&edges);
        }
        let c = central.metrics().delivered;
        let d = run.absorbed;
        assert!(
            d * 2 >= c && c * 2 >= d.max(1),
            "distributed {d} vs centralized {c} diverged too far"
        );
    }

    /// Regression (stale-gossip overwrite): with a positive-width delay
    /// distribution, `Heights` messages reorder in flight; the cache must
    /// keep the freshest gossip, never roll back to an older one. Before
    /// step-stamping, whichever copy arrived *last* won.
    #[test]
    fn reordered_gossip_never_rolls_cache_back() {
        // Node 0's heights grow monotonically: one injection per step for
        // a destination it can never send toward (threshold unreachable).
        let topo = chain(3);
        let steps = 60u64;
        let mut c = GossipConfig::new(
            BalancingConfig {
                threshold: 1e9,
                gamma: 0.0,
                capacity: 1000,
            },
            steps,
        );
        // Steps shorter than the maximum delay, so consecutive gossips'
        // arrival windows genuinely interleave.
        c.step_len = 2;
        let wl: Vec<(u64, u32, u32)> = (0..steps).map(|s| (s, 0, 2)).collect();
        let faults = FaultConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            delay: DelayDist::Uniform { min: 1, max: 8 },
        };
        // Seed 1 is chosen so that, pre-fix, the *final* cache state is
        // stale: the step-58 gossip overtakes the step-59 one in flight.
        let nodes = build_nodes(&topo, &[2], c, &wl);
        let mut rt = Runtime::new(nodes, &topo.points, topo.max_range, faults, 1);
        rt.start();
        rt.run();
        // The chosen seed must actually reorder — and the stale copies
        // must have been refused, not cached.
        let stale: u64 = rt
            .nodes()
            .iter()
            .map(|n| n.counts.stale_gossip_dropped)
            .sum();
        assert!(stale > 0, "seed 1 produced no reordering");
        // Node 1's cache of node 0 ends at the freshest gossip: step 59,
        // heights including all 60 injections.
        let col = rt.node(0).col(2).unwrap();
        let (step, heights) = rt.node(1).cached.get(&0).expect("gossip cached");
        assert_eq!(*step, steps - 1, "cache ended on a stale step");
        assert_eq!(heights[col], steps as u32);
        assert_eq!(heights, &rt.node(0).heights);
    }

    #[test]
    fn reliable_sublayer_restores_delivery_under_heavy_loss() {
        let topo = chain(5);
        let inject_steps = 300u64;
        // Injections stop early so buffers and windows can drain, and the
        // rate stays below the chain's 1-packet-per-step edge capacity —
        // we are measuring loss recovery, not queueing overload.
        let steps = inject_steps + 250;
        let wl = uniform_workload(5, &[4], inject_steps, 1, 2);
        let faults = FaultConfig::lossy(0.3);
        let ff = run_gossip_balancing(&topo, &[4], cfg(steps), &wl, faults, 3);
        let rel = run_gossip_balancing(
            &topo,
            &[4],
            cfg(steps).with_reliability(ReliableConfig::default()),
            &wl,
            faults,
            3,
        );
        assert!(ff.conserved(), "{ff:?}");
        assert!(rel.conserved(), "{rel:?}");
        // Fire-and-forget bleeds packets at 30% loss...
        assert!(ff.link_lost > 0);
        assert!(ff.delivery_rate() < 0.9, "ff rate {}", ff.delivery_rate());
        // ...the reliable sublayer wins them back with retransmissions.
        assert!(rel.stats.retransmits > 0);
        assert!(rel.stats.acks > 0);
        assert!(rel.stats.rto_fired > 0);
        assert!(
            rel.delivery_rate() >= 0.99,
            "reliable rate {} (run {rel:?})",
            rel.delivery_rate()
        );
        assert!(rel.delivery_rate() > ff.delivery_rate());
        // Heights gossip stays best-effort by design: still dropped on
        // the wire, never retransmitted.
        assert!(rel.stats.per_kind["heights"].dropped > 0);
        // Residual loss can only come from retry-budget exhaustion.
        assert!(rel.link_lost <= rel.gave_up);
    }

    #[test]
    fn reliable_same_seed_identical_runs() {
        let topo = chain(6);
        let wl = uniform_workload(6, &[5], 200, 1, 7);
        let faults = FaultConfig {
            drop_prob: 0.2,
            duplicate_prob: 0.1,
            delay: DelayDist::Uniform { min: 1, max: 5 },
        };
        let go = |seed| {
            run_gossip_balancing(
                &topo,
                &[5],
                cfg(200).with_reliability(ReliableConfig::default()),
                &wl,
                faults,
                seed,
            )
        };
        let (a, b) = (go(5), go(5));
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.absorbed, b.absorbed);
        assert_eq!(a.stats, b.stats);
        assert!(a.conserved(), "{a:?}");
        assert_ne!(go(6).digest, a.digest);
    }

    #[test]
    fn churn_conserves_the_packet_ledger_in_both_reliability_modes() {
        use crate::ChurnPlan;
        // A mid-chain crash plus a graceful edge leave while traffic is
        // flowing: the ledger identity must survive dead buffers (stay
        // `buffered`), copies in flight to the dead node (`link_lost`),
        // and — in reliable mode — custody abandoned toward vanished
        // peers.
        let topo = chain(6);
        let wl = uniform_workload(6, &[5], 200, 1, 7);
        let plan =
            ChurnPlan::new()
                .crash(400, 2)
                .leave(800, 0)
                .drift(1000, 1, Point::new(0.1, 0.05));
        let faults = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.05,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        for rel in [None, Some(ReliableConfig::default())] {
            let mut c = cfg(250);
            c.reliability = rel;
            let run = run_gossip_balancing_churn(&topo, &[5], c, &wl, faults, 9, &plan, 1);
            assert!(run.conserved(), "reliability={rel:?}: {run:?}");
            assert_eq!(run.stats.crashes, 1);
            assert_eq!(run.stats.leaves, 1);
            assert_eq!(run.stats.drifts, 1);
            assert!(run.stats.reconvergences > 0);
            assert!(run.absorbed > 0, "traffic still flows around the hole");
        }
    }

    #[test]
    fn churn_runs_are_digest_identical_across_thread_counts() {
        use crate::ChurnPlan;
        let topo = chain(6);
        let wl = uniform_workload(6, &[5], 150, 1, 3);
        let plan = ChurnPlan::new()
            .crash(300, 3)
            .drift(600, 1, Point::new(0.12, 0.02));
        let faults = FaultConfig {
            drop_prob: 0.1,
            duplicate_prob: 0.05,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let c = cfg(200).with_reliability(ReliableConfig::default());
        let go =
            |threads| run_gossip_balancing_churn(&topo, &[5], c, &wl, faults, 5, &plan, threads);
        let seq = go(1);
        assert!(seq.conserved(), "{seq:?}");
        for threads in [2, 4] {
            assert_eq!(go(threads), seq, "threads={threads}");
        }
    }

    #[test]
    fn empty_churn_plan_is_byte_identical_to_the_plain_runner() {
        let topo = chain(5);
        let wl = uniform_workload(5, &[4], 100, 1, 2);
        let faults = FaultConfig::lossy(0.1);
        let plain = run_gossip_balancing(&topo, &[4], cfg(100), &wl, faults, 4);
        let churn = run_gossip_balancing_churn(
            &topo,
            &[4],
            cfg(100),
            &wl,
            faults,
            4,
            &crate::ChurnPlan::default(),
            1,
        );
        assert_eq!(plain, churn);
    }

    #[test]
    fn full_loss_delivers_nothing_but_stays_conserved() {
        let topo = chain(3);
        let wl = uniform_workload(3, &[2], 100, 1, 5);
        let run = run_gossip_balancing(&topo, &[2], cfg(100), &wl, FaultConfig::lossy(1.0), 1);
        assert!(run.conserved(), "{run:?}");
        // Packets injected at the destination itself still absorb.
        assert_eq!(run.absorbed + run.buffered + run.link_lost, run.injected);
    }

    // ------------------- Byzantine adversary & defense -------------------

    /// Two node-disjoint 0→5 relay paths (0-1-2-5 and 0-3-4-5): an
    /// adversary on one path leaves the other intact, so quarantining it
    /// lets routing recover.
    fn diamond() -> SpatialGraph {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.05),
            Point::new(0.2, 0.05),
            Point::new(0.1, -0.05),
            Point::new(0.2, -0.05),
            Point::new(0.3, 0.0),
        ];
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 5), (0, 3), (3, 4), (4, 5)] {
            b.add_edge(u, v, 0.12);
        }
        SpatialGraph::new(points, b.build(), 0.15)
    }

    /// A triangle around node 0 (edges 0-1, 0-2, 1-2) plus a tail:
    /// attestation needs witnesses that share both the adversary and an
    /// edge with each other — a chain has no such pair.
    fn triangle_tail() -> SpatialGraph {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.05),
            Point::new(0.1, -0.05),
            Point::new(0.2, 0.0),
        ];
        let mut b = GraphBuilder::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v, 0.12);
        }
        SpatialGraph::new(points, b.build(), 0.15)
    }

    /// `per_step` packets injected at `src` for `dest`, every step.
    fn source_workload(steps: u64, per_step: u32, src: u32, dest: u32) -> Vec<(u64, u32, u32)> {
        (0..steps)
            .flat_map(|s| (0..per_step).map(move |_| (s, src, dest)))
            .collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn adversarial(
        topo: &SpatialGraph,
        dests: &[u32],
        c: GossipConfig,
        wl: &[(u64, u32, u32)],
        faults: FaultConfig,
        seed: u64,
        adv: &AdversaryPlan,
        threads: usize,
    ) -> GossipRun {
        run_gossip_balancing_adversarial(
            topo,
            dests,
            c,
            wl,
            faults,
            seed,
            &crate::ChurnPlan::default(),
            adv,
            threads,
        )
    }

    /// Satellite: an empty adversary plan is a true pass-through — the
    /// whole run record matches the plain runner byte for byte, in both
    /// fire-and-forget and reliable modes.
    #[test]
    fn empty_adversary_plan_is_byte_identical_to_the_plain_runner() {
        let topo = chain(5);
        let wl = uniform_workload(5, &[4], 100, 1, 2);
        let faults = FaultConfig::lossy(0.1);
        for c in [
            cfg(100),
            cfg(100).with_reliability(ReliableConfig::default()),
        ] {
            let plain = run_gossip_balancing_churn(
                &topo,
                &[4],
                c,
                &wl,
                faults,
                4,
                &crate::ChurnPlan::default(),
                1,
            );
            let adv = adversarial(&topo, &[4], c, &wl, faults, 4, &AdversaryPlan::default(), 1);
            assert_eq!(plain, adv);
        }
    }

    #[test]
    fn deflating_blackhole_steals_traffic_and_the_ledger_balances() {
        let topo = diamond();
        let wl = source_workload(300, 2, 0, 5);
        let adv = AdversaryPlan::default().deflate(5, 1, true);
        let run = adversarial(&topo, &[5], cfg(300), &wl, FaultConfig::ideal(), 8, &adv, 1);
        assert!(run.conserved(), "{run:?}");
        assert!(
            run.stolen > 50,
            "a zero-advertising blackhole should attract and eat traffic (stole {})",
            run.stolen
        );
        assert_eq!(run.quarantines, 0, "no defense layer configured");
    }

    #[test]
    fn defense_quarantines_the_blackhole_and_reroutes() {
        let topo = diamond();
        let wl = source_workload(300, 2, 0, 5);
        let adv = AdversaryPlan::default().deflate(5, 1, true);
        let go = |defense: Option<DefenseConfig>| {
            let mut c = cfg(400);
            if let Some(d) = defense {
                c = c.with_defense(d);
            }
            adversarial(&topo, &[5], c, &wl, FaultConfig::ideal(), 8, &adv, 1)
        };
        let off = go(None);
        let on = go(Some(DefenseConfig {
            probe_packets: 4,
            ..DefenseConfig::default()
        }));
        assert!(off.conserved(), "{off:?}");
        assert!(on.conserved(), "{on:?}");
        assert!(on.quarantines > 0, "{on:?}");
        assert!(
            on.quarantined_nodes.contains(&1),
            "expected the deflator in {:?}",
            on.quarantined_nodes
        );
        assert!(
            on.absorbed > off.absorbed,
            "defense must recover delivery: {} on vs {} off",
            on.absorbed,
            off.absorbed
        );
        assert!(on.stolen < off.stolen, "{} vs {}", on.stolen, off.stolen);
    }

    #[test]
    fn inflated_heights_are_implausible_and_quarantined() {
        let topo = diamond();
        let wl = source_workload(200, 2, 0, 5);
        let adv = AdversaryPlan::default().inflate(5, 3);
        let c = cfg(260).with_defense(DefenseConfig::default());
        let run = adversarial(&topo, &[5], c, &wl, FaultConfig::ideal(), 9, &adv, 1);
        assert!(run.conserved(), "{run:?}");
        assert!(run.implausible_gossip > 0, "{run:?}");
        assert!(
            run.quarantined_nodes.contains(&3),
            "expected the inflator in {:?}",
            run.quarantined_nodes
        );
    }

    /// The equivocator tells even-numbered neighbors "empty" and
    /// odd-numbered ones "full"; no data traffic is needed — the sworn
    /// digest exchange between its mutually adjacent witnesses convicts
    /// it on height frames alone. A high strike threshold keeps the
    /// plausibility detector slow, so the conviction demonstrably comes
    /// from attestation: the witness fed only plausible zeros could
    /// never condemn the liar on first-hand evidence.
    #[test]
    fn equivocation_is_caught_by_attestation_between_witnesses() {
        let topo = triangle_tail();
        let adv = AdversaryPlan::default().equivocate(5, 0);
        let c = cfg(60).with_defense(DefenseConfig {
            quarantine_at: 1000,
            ..DefenseConfig::default()
        });
        let run = adversarial(&topo, &[3], c, &[], FaultConfig::ideal(), 10, &adv, 1);
        assert!(run.equivocations > 0, "{run:?}");
        assert!(
            run.quarantined_nodes.contains(&0),
            "expected the equivocator in {:?}",
            run.quarantined_nodes
        );
        assert_eq!(
            run.quarantines, 2,
            "both mutually adjacent witnesses must convict ({run:?})"
        );
    }

    #[test]
    fn selective_dropper_blackholes_only_targeted_sources() {
        let topo = chain(4);
        // Node 1 drops what node 0 sends it but forwards everything else.
        let wl = source_workload(200, 1, 0, 3);
        let adv = AdversaryPlan::default().selective_drop(5, 1, vec![0]);
        let run = adversarial(
            &topo,
            &[3],
            cfg(260),
            &wl,
            FaultConfig::ideal(),
            11,
            &adv,
            1,
        );
        assert!(run.conserved(), "{run:?}");
        assert!(run.blackholed > 100, "{run:?}");
        assert_eq!(run.stolen, 0, "selective drop books as blackholed");
        assert_eq!(run.absorbed, 0, "node 0's only route runs through 1");
    }

    /// Stale replay freezes the adversary's advertised frame at
    /// activation time; the run must still balance its ledger and the
    /// lie, being self-consistent, must defeat attestation (it is
    /// detectable only once the frozen frame turns implausible).
    #[test]
    fn stale_replay_conserves_and_evades_attestation() {
        let topo = diamond();
        let wl = source_workload(200, 2, 0, 5);
        let adv = AdversaryPlan::default().replay(20, 1);
        let c = cfg(260).with_defense(DefenseConfig::default());
        let run = adversarial(&topo, &[5], c, &wl, FaultConfig::ideal(), 12, &adv, 1);
        assert!(run.conserved(), "{run:?}");
        assert_eq!(run.equivocations, 0, "a frozen frame is consistent");
    }

    #[test]
    fn adversarial_runs_conserve_under_loss_and_duplication() {
        let topo = diamond();
        let wl = source_workload(300, 2, 0, 5);
        let adv = AdversaryPlan::default()
            .deflate(5, 1, true)
            .selective_drop(9, 4, vec![3]);
        let faults = FaultConfig {
            drop_prob: 0.15,
            duplicate_prob: 0.25,
            delay: DelayDist::Uniform { min: 1, max: 4 },
        };
        let run = adversarial(&topo, &[5], cfg(400), &wl, faults, 13, &adv, 1);
        assert!(run.conserved(), "{run:?}");
        assert!(run.stolen > 0 && run.blackholed > 0, "{run:?}");
        assert!(run.stats.duplicated > 0, "run wasn't duplicate-heavy");
    }

    #[test]
    fn reliable_mode_cannot_recover_stolen_packets() {
        let topo = diamond();
        let wl = source_workload(200, 2, 0, 5);
        let adv = AdversaryPlan::default().deflate(5, 1, true);
        let c = cfg(300).with_reliability(ReliableConfig::default());
        let run = adversarial(&topo, &[5], c, &wl, FaultConfig::lossy(0.1), 14, &adv, 1);
        assert!(run.conserved(), "{run:?}");
        assert!(
            run.stolen > 0,
            "the interposer sits inside the transport: acked then eaten ({run:?})"
        );
    }

    #[test]
    fn adversarial_digest_identical_across_thread_counts() {
        let topo = diamond();
        let wl = source_workload(150, 2, 0, 5);
        let adv = AdversaryPlan::default()
            .deflate(5, 1, true)
            .inflate(7, 4)
            .equivocate(11, 2);
        let c = cfg(200).with_defense(DefenseConfig::default());
        let go = |threads| {
            adversarial(
                &topo,
                &[5],
                c,
                &wl,
                FaultConfig::lossy(0.05),
                15,
                &adv,
                threads,
            )
        };
        let one = go(1);
        for threads in [2, 4] {
            assert_eq!(one, go(threads), "thread count {threads} diverged");
        }
    }
}
