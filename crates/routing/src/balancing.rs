//! The `(T, γ)`-balancing algorithm (paper §3.2).
//!
//! In every time step, for every active edge `e = (v, w)` and each
//! direction:
//!
//! 1. find the destination `d` maximizing
//!    `h_{v,d} − h_{w,d} − c(e)·γ`, and if that value exceeds the
//!    threshold `T`, send one packet from `Q_{v,d}` to `Q_{w,d}`;
//! 2. receive incoming packets, absorb the ones at their destination,
//!    then accept newly injected packets, dropping any that find a full
//!    buffer.
//!
//! Theorem 3.1: with `T ≥ B + 2(δ−1)` and `γ ≥ (T + B + δ)·L̄/C̄`, this is
//! `(1−ε, 1 + 2(1 + (T+δ)/B)·L̄/ε, 1 + 2/ε)`-competitive: it delivers a
//! `(1−ε)` fraction of what any schedule with buffer size `B` and average
//! cost `C̄` can, using buffers a factor `≈ O(L̄/ε)` larger and average
//! cost at most `(1 + 2/ε)·C̄`.

use crate::buffers::BufferBank;
use crate::types::{ActiveEdge, Metrics, MoveOutcome, Send};
use serde::{Deserialize, Serialize};

/// Parameters of the balancing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalancingConfig {
    /// Send threshold `T`.
    pub threshold: f64,
    /// Cost weight `γ` (0 recovers the cost-oblivious algorithm of
    /// earlier work).
    pub gamma: f64,
    /// Buffer height bound `H` of the online algorithm.
    pub capacity: u32,
}

impl BalancingConfig {
    /// Instantiate the parameters the way Theorem 3.1 prescribes, given
    /// the optimal schedule's buffer size `B`, the maximum number `δ` of
    /// edges usable concurrently at one node, bounds `L̄` (average optimal
    /// path length) and `C̄` (average optimal cost), and the slack `ε`.
    pub fn from_theorem_3_1(b: u32, delta: u32, l_bar: f64, c_bar: f64, eps: f64) -> Self {
        assert!(eps > 0.0 && eps <= 1.0, "ε must be in (0,1], got {eps}");
        assert!(l_bar >= 1.0, "L̄ must be ≥ 1");
        assert!(c_bar > 0.0, "C̄ must be positive");
        let t = b as f64 + 2.0 * (delta.max(1) - 1) as f64;
        let gamma = (t + b as f64 + delta as f64) * l_bar / c_bar;
        // Buffer scale factor s = 1 + 2(1 + (T+δ)/B)·L̄/ε.
        let s = 1.0 + 2.0 * (1.0 + (t + delta as f64) / b.max(1) as f64) * l_bar / eps;
        BalancingConfig {
            threshold: t,
            gamma,
            capacity: (s * b as f64).ceil() as u32,
        }
    }
}

/// The `(T, γ)`-balancing router.
#[derive(Debug, Clone)]
pub struct BalancingRouter {
    cfg: BalancingConfig,
    bank: BufferBank,
    metrics: Metrics,
}

impl BalancingRouter {
    /// Router over `num_nodes` nodes and the given destination set.
    pub fn new(num_nodes: usize, dests: &[u32], cfg: BalancingConfig) -> Self {
        BalancingRouter {
            cfg,
            bank: BufferBank::new(num_nodes, dests, cfg.capacity),
            metrics: Metrics::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> BalancingConfig {
        self.cfg
    }

    /// Read-only view of the buffers.
    pub fn bank(&self) -> &BufferBank {
        &self.bank
    }

    /// Metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Admission control: inject a packet for `d` at `v`; full buffers
    /// drop (the paper's "only admit those packets for which there is
    /// still buffer space available").
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        if self.bank.inject(v, d) {
            self.metrics.injected += 1;
            if v == d {
                self.metrics.delivered += 1;
            }
            true
        } else {
            self.metrics.dropped += 1;
            false
        }
    }

    /// The pure decision rule: the sends step 1 would perform, given the
    /// current heights. One candidate per edge direction.
    pub fn decide(&self, active: &[ActiveEdge]) -> Vec<Send> {
        let mut sends = Vec::with_capacity(active.len());
        for e in active {
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                if let Some(s) = self.best_send(from, to, e.cost) {
                    sends.push(s);
                }
            }
        }
        sends
    }

    fn best_send(&self, from: u32, to: u32, cost: f64) -> Option<Send> {
        let mut best: Option<(f64, u32)> = None;
        for (col, &d) in self.bank.dests().iter().enumerate() {
            let hv = if from == d {
                0
            } else {
                self.bank.heights_at(from)[col]
            };
            let hw = if to == d {
                0
            } else {
                self.bank.heights_at(to)[col]
            };
            let value = hv as f64 - hw as f64 - cost * self.cfg.gamma;
            if value > self.cfg.threshold && best.is_none_or(|(bv, _)| value > bv) {
                best = Some((value, d));
            }
        }
        best.map(|(_, dest)| Send {
            from,
            to,
            dest,
            cost,
        })
    }

    /// Apply a set of send decisions. Sends whose source buffer has been
    /// drained by an earlier send this step, or whose receiver is full,
    /// are skipped (with `T > 0` and synchronous decisions this is rare;
    /// the guard keeps the simulation safe under any parameters).
    pub fn apply(&mut self, sends: &[Send]) {
        for s in sends {
            if self.bank.height(s.from, s.dest) == 0 || !self.bank.can_accept(s.to, s.dest) {
                continue;
            }
            match self.bank.transfer(s.from, s.to, s.dest) {
                MoveOutcome::Delivered => {
                    self.metrics.delivered += 1;
                }
                MoveOutcome::Buffered => {}
            }
            self.metrics.sends += 1;
            self.metrics.total_cost += s.cost;
        }
    }

    /// One full time step over the given active edges: decide, apply,
    /// advance the clock. Injections are performed by the caller (the
    /// adversary) after this returns, matching the paper's step order.
    pub fn step(&mut self, active: &[ActiveEdge]) -> Vec<Send> {
        let sends = self.decide(active);
        self.apply(&sends);
        self.metrics.steps += 1;
        sends
    }

    /// Advance the step counter without a decision round (used by
    /// wrappers — the `(T,γ,I)` and honeycomb routers — that drive
    /// `decide`/`apply` themselves).
    pub fn tick(&mut self) {
        self.metrics.steps += 1;
    }

    /// Conservation check: accepted = delivered + still buffered.
    pub fn conserved(&self) -> bool {
        self.metrics.injected == self.bank.total_absorbed() + self.bank.total_buffered()
    }

    /// The quadratic potential `Φ = Σ_{v,d} h²_{v,d}` that drives the
    /// Theorem 3.1 analysis: every send down a gradient of more than `T`
    /// decreases Φ, so bounded Φ certifies stability under feasible load.
    pub fn potential(&self) -> f64 {
        (0..self.bank.num_nodes() as u32)
            .flat_map(|v| {
                self.bank
                    .heights_at(v)
                    .iter()
                    .map(|&h| (h as f64) * (h as f64))
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(t: f64, gamma: f64, cap: u32) -> BalancingConfig {
        BalancingConfig {
            threshold: t,
            gamma,
            capacity: cap,
        }
    }

    #[test]
    fn theorem_parameters() {
        let c = BalancingConfig::from_theorem_3_1(4, 1, 3.0, 1.0, 0.5);
        assert_eq!(c.threshold, 4.0); // B + 2(δ-1) with δ=1
        assert!((c.gamma - (4.0 + 4.0 + 1.0) * 3.0).abs() < 1e-12);
        // s = 1 + 2(1 + (4+1)/4)·3/0.5 = 1 + 2·2.25·6 = 28 → H = 112
        assert_eq!(c.capacity, 112);
    }

    #[test]
    #[should_panic]
    fn theorem_rejects_bad_eps() {
        BalancingConfig::from_theorem_3_1(4, 1, 3.0, 1.0, 0.0);
    }

    #[test]
    fn sends_down_gradient_only_above_threshold() {
        let mut r = BalancingRouter::new(2, &[1], cfg(2.0, 0.0, 100));
        // height diff 2 ≤ T: no send
        r.inject(0, 1);
        r.inject(0, 1);
        let sends = r.decide(&[ActiveEdge::new(0, 1, 0.0)]);
        assert!(sends.is_empty());
        // height diff 3 > T: send
        r.inject(0, 1);
        let sends = r.step(&[ActiveEdge::new(0, 1, 0.0)]);
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dest, 1);
        assert_eq!(r.metrics().delivered, 1); // node 1 is the destination
    }

    #[test]
    fn gamma_penalizes_expensive_edges() {
        let mut r = BalancingRouter::new(2, &[1], cfg(0.0, 10.0, 100));
        for _ in 0..5 {
            r.inject(0, 1);
        }
        // diff 5, cost 1 ⇒ 5 - 10·1 = -5 ≤ 0: no send
        assert!(r.decide(&[ActiveEdge::new(0, 1, 1.0)]).is_empty());
        // cheap edge: 5 - 10·0.01 > 0: send
        assert_eq!(r.decide(&[ActiveEdge::new(0, 1, 0.01)]).len(), 1);
    }

    #[test]
    fn picks_destination_with_max_difference() {
        let mut r = BalancingRouter::new(3, &[1, 2], cfg(0.0, 0.0, 100));
        r.inject(0, 1);
        r.inject(0, 2);
        r.inject(0, 2);
        let sends = r.decide(&[ActiveEdge::new(0, 2, 0.0)]);
        // toward node 2: diff for dest 2 is 2 (beats dest 1's 1... note
        // h(2, dest1)=0, diff=1; dest 2: h(0,2)-0 = 2).
        assert_eq!(sends.len(), 1);
        assert_eq!(sends[0].dest, 2);
    }

    #[test]
    fn bidirectional_edge_can_carry_both_ways() {
        let mut r = BalancingRouter::new(2, &[0, 1], cfg(0.0, 0.0, 100));
        for _ in 0..3 {
            r.inject(0, 1); // packets for 1 at 0
            r.inject(1, 0); // packets for 0 at 1
        }
        let sends = r.step(&[ActiveEdge::new(0, 1, 0.0)]);
        assert_eq!(sends.len(), 2);
        assert_eq!(r.metrics().delivered, 2);
    }

    #[test]
    fn no_send_when_empty() {
        let r = BalancingRouter::new(2, &[1], cfg(0.0, 0.0, 10));
        assert!(r.decide(&[ActiveEdge::new(0, 1, 0.0)]).is_empty());
    }

    #[test]
    fn drops_when_full_and_conserves() {
        let mut r = BalancingRouter::new(2, &[1], cfg(0.0, 0.0, 3));
        for _ in 0..10 {
            r.inject(0, 1);
        }
        let m = r.metrics();
        assert_eq!(m.injected, 3);
        assert_eq!(m.dropped, 7);
        assert!(r.conserved());
    }

    #[test]
    fn relay_chain_delivers_under_backpressure() {
        // 0 - 1 - 2 (dest). Keep injecting at 0; packets must flow through
        // the chain once the gradient exceeds T at each hop.
        let mut r = BalancingRouter::new(3, &[2], cfg(1.0, 0.0, 50));
        let edges = [ActiveEdge::new(0, 1, 0.1), ActiveEdge::new(1, 2, 0.1)];
        for _ in 0..200 {
            r.inject(0, 2);
            r.step(&edges);
        }
        let m = r.metrics();
        assert!(m.delivered > 50, "only {} delivered", m.delivered);
        assert!(r.conserved());
        // Gradient property: h(0) ≥ h(1) ≥ h(2)=0 roughly
        assert!(r.bank().height(0, 2) >= r.bank().height(1, 2));
    }

    #[test]
    fn injection_at_destination_counts_delivered() {
        let mut r = BalancingRouter::new(2, &[1], cfg(0.0, 0.0, 10));
        assert!(r.inject(1, 1));
        assert_eq!(r.metrics().delivered, 1);
        assert!(r.conserved());
    }

    #[test]
    fn decide_is_pure() {
        let mut r = BalancingRouter::new(2, &[1], cfg(0.0, 0.0, 10));
        for _ in 0..5 {
            r.inject(0, 1);
        }
        let before = r.bank().clone();
        let _ = r.decide(&[ActiveEdge::new(0, 1, 0.0)]);
        assert_eq!(*r.bank(), before);
    }

    #[test]
    fn cost_accounting() {
        let mut r = BalancingRouter::new(2, &[1], cfg(0.0, 0.0, 10));
        for _ in 0..4 {
            r.inject(0, 1);
        }
        r.step(&[ActiveEdge::new(0, 1, 2.5)]);
        let m = r.metrics();
        assert_eq!(m.sends, 1);
        assert_eq!(m.total_cost, 2.5);
        assert_eq!(m.avg_cost_per_delivery(), Some(2.5));
    }

    #[test]
    fn potential_bounded_under_feasible_load() {
        // 0 - 1 - 2 (dest): inject 1 packet every 2 steps; the chain can
        // carry 1 per step, so Φ must plateau instead of growing without
        // bound (the stability half of the Theorem 3.1 analysis).
        let mut r = BalancingRouter::new(3, &[2], cfg(0.5, 0.0, 1_000));
        let edges = [ActiveEdge::new(0, 1, 0.0), ActiveEdge::new(1, 2, 0.0)];
        let mut mid_potential = 0.0;
        for s in 0..4000 {
            if s % 2 == 0 {
                r.inject(0, 2);
            }
            r.step(&edges);
            if s == 2000 {
                mid_potential = r.potential();
            }
        }
        let final_potential = r.potential();
        assert!(mid_potential > 0.0);
        assert!(
            final_potential <= mid_potential * 1.5 + 16.0,
            "potential kept growing: {mid_potential} -> {final_potential}"
        );
        assert!(r.conserved());
    }

    #[test]
    fn potential_counts_squares() {
        let mut r = BalancingRouter::new(2, &[1], cfg(10.0, 0.0, 10));
        assert_eq!(r.potential(), 0.0);
        r.inject(0, 1);
        r.inject(0, 1);
        r.inject(0, 1);
        assert_eq!(r.potential(), 9.0);
    }

    #[test]
    fn step_counts_advance() {
        let mut r = BalancingRouter::new(2, &[1], cfg(0.0, 0.0, 10));
        r.step(&[]);
        r.step(&[]);
        assert_eq!(r.metrics().steps, 2);
    }
}
