//! # adhoc-routing
//!
//! The routing layer of the SPAA'03 reproduction (paper §3).
//!
//! The model is fully adversarial (§3.1): in each synchronous time step an
//! adversary (or a MAC protocol) provides a set of concurrently usable
//! edges with per-step costs, and may inject an unbounded number of
//! packets. Every node `v` keeps one buffer `Q_{v,d}` per destination `d`
//! with bounded height `H`; packets reaching `Q_{d,d}` are absorbed
//! (*delivered*); injections into full buffers are dropped.
//!
//! * [`buffers::BufferBank`] — the per-(node, destination) height matrix
//!   with conservation accounting.
//! * [`balancing::BalancingRouter`] — the `(T, γ)`-balancing algorithm of
//!   §3.2: across each active edge, send toward the destination with the
//!   largest height difference minus `γ · c(e)`, whenever that exceeds
//!   `T`. Theorem 3.1 makes it `(1−ε, O(L̄/ε), O(1/ε))`-competitive.
//! * [`interference_routing::InterferenceRouter`] — the `(T, γ, I)`
//!   variant of §3.3: edges activate via the randomized MAC, and sends on
//!   mutually interfering edges fail (Theorem 3.3).
//! * [`honeycomb::HoneycombRouter`] — the fixed-transmission-strength
//!   algorithm of §3.4 (Theorem 3.8).
//! * [`greedy::GreedyRouter`] — a conventional shortest-path/FIFO baseline
//!   for the experiment tables.

pub mod anycast;
pub mod balancing;
pub mod buffers;
pub mod geographic;
pub mod greedy;
pub mod honeycomb;
pub mod interference_routing;
pub mod stale;
pub mod traced;
pub mod types;

pub use anycast::{AnycastRouter, Group};
pub use balancing::{BalancingConfig, BalancingRouter};
pub use buffers::BufferBank;
pub use geographic::GeoGreedyRouter;
pub use greedy::GreedyRouter;
pub use honeycomb::{HoneycombConfig, HoneycombRouter};
pub use interference_routing::InterferenceRouter;
pub use stale::StaleBalancingRouter;
pub use traced::{LatencyStats, TracedRouter};
pub use types::{ActiveEdge, Metrics, MoveOutcome, Send};
