//! The `(T, γ, I)`-balancing algorithm (paper §3.3).
//!
//! Medium access control is *not* given: each edge of the topology
//! becomes active with probability `1/(2 I_e)` (the randomized
//! symmetry-breaking MAC, Lemma 3.2), the active edges are handed to the
//! `(T, γ)`-balancing algorithm, and any two *used* edges that interfere
//! destroy each other's transmissions. Theorem 3.3: this combination is
//! `((1−ε)/(8I), …)`-competitive against an optimum restricted to the
//! same topology but free of interference.

use crate::balancing::{BalancingConfig, BalancingRouter};
use crate::types::{ActiveEdge, Metrics, Send};
use adhoc_interference::{ActivationRule, InterferenceModel, RandomizedMac};
use adhoc_proximity::SpatialGraph;
use rand::Rng;

/// Outcome of one `(T, γ, I)` step.
#[derive(Debug, Clone, PartialEq)]
pub struct InterferenceStep {
    /// Edge ids sampled active by the MAC.
    pub active: Vec<u32>,
    /// Sends the balancing rule attempted.
    pub attempted: usize,
    /// Sends that survived interference and were applied.
    pub succeeded: usize,
}

/// The combined MAC + routing protocol.
#[derive(Debug, Clone)]
pub struct InterferenceRouter {
    mac: RandomizedMac,
    router: BalancingRouter,
    /// Per-edge transmission cost (`|uv|^κ`).
    costs: Vec<f64>,
    failed_sends: u64,
}

impl InterferenceRouter {
    /// Bind the protocol to a topology. Edge costs are the `|uv|^κ`
    /// transmission energies.
    pub fn new(
        sg: &SpatialGraph,
        dests: &[u32],
        cfg: BalancingConfig,
        model: InterferenceModel,
        rule: ActivationRule,
        kappa: f64,
    ) -> Self {
        let mac = RandomizedMac::new(sg, model, rule);
        let costs = mac
            .edge_list()
            .lengths
            .iter()
            .map(|&l| l.powf(kappa))
            .collect();
        InterferenceRouter {
            mac,
            router: BalancingRouter::new(sg.len(), dests, cfg),
            costs,
            failed_sends: 0,
        }
    }

    /// The MAC in use (interference sets, activation probabilities).
    pub fn mac(&self) -> &RandomizedMac {
        &self.mac
    }

    /// The inner balancing router (buffers, config).
    pub fn router(&self) -> &BalancingRouter {
        &self.router
    }

    /// Inject a packet (admission-controlled).
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        self.router.inject(v, d)
    }

    /// Metrics, with interference failures folded in.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.router.metrics();
        m.failed_sends = self.failed_sends;
        m
    }

    /// One step: sample the MAC, balance over active edges, destroy
    /// transmissions on mutually interfering used edges, apply the rest.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> InterferenceStep {
        let active = self.mac.sample_active(rng);

        // Balancing decisions per active edge (≤ 2 sends each, one per
        // direction), remembering which edge each send uses.
        let mut edge_of_send: Vec<u32> = Vec::new();
        let mut sends: Vec<Send> = Vec::new();
        for &e_id in &active {
            let e = self.mac.edge_list().edges[e_id as usize];
            let ae = ActiveEdge::new(e.a, e.b, self.costs[e_id as usize]);
            for s in self.router.decide(&[ae]) {
                edge_of_send.push(e_id);
                sends.push(s);
            }
        }

        // An edge is "used" if it carries at least one send; two used
        // edges that interfere destroy each other's transmissions
        // (paper §3.3).
        let mut used: Vec<u32> = edge_of_send.clone();
        used.sort_unstable();
        used.dedup();
        let mut used_mask = vec![false; self.mac.edge_list().len()];
        for &e in &used {
            used_mask[e as usize] = true;
        }
        let edge_ok = |e_id: u32| -> bool {
            self.mac
                .interference_set(e_id)
                .iter()
                .all(|&f| !used_mask[f as usize])
        };

        let mut applied: Vec<Send> = Vec::with_capacity(sends.len());
        let mut failed = 0usize;
        for (s, &e_id) in sends.iter().zip(edge_of_send.iter()) {
            if edge_ok(e_id) {
                applied.push(*s);
            } else {
                failed += 1;
            }
        }
        self.failed_sends += failed as u64;
        let attempted = sends.len();
        let succeeded = applied.len();
        self.router.apply(&applied);
        self.router.tick();

        InterferenceStep {
            active,
            attempted,
            succeeded,
        }
    }

    /// Conservation invariant of the inner router.
    pub fn conserved(&self) -> bool {
        self.router.conserved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn cfg() -> BalancingConfig {
        BalancingConfig {
            threshold: 1.0,
            gamma: 0.1,
            capacity: 100,
        }
    }

    fn build(seed: u64) -> InterferenceRouter {
        let points = uniform(60, seed);
        let sg = unit_disk_graph(&points, 0.35);
        InterferenceRouter::new(
            &sg,
            &[0],
            cfg(),
            InterferenceModel::new(0.5),
            ActivationRule::Local,
            2.0,
        )
    }

    #[test]
    fn delivers_under_randomized_mac() {
        // Use a sparse topology (Euclidean MST) so the interference
        // number — and hence 1/(2 I_e) — stays moderate; on a dense UDG
        // the MAC activates each edge so rarely that observing deliveries
        // would need very long runs.
        let points = uniform(30, 3);
        let sg = adhoc_proximity::euclidean_mst(&points, 10.0);
        let mut r = InterferenceRouter::new(
            &sg,
            &[0],
            BalancingConfig {
                threshold: 1.0,
                gamma: 0.1,
                capacity: 30,
            },
            InterferenceModel::new(0.5),
            ActivationRule::Local,
            2.0,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..3000 {
            r.inject(15, 0);
            r.step(&mut rng);
        }
        let m = r.metrics();
        assert!(m.delivered > 10, "only {} delivered", m.delivered);
        assert!(r.conserved());
    }

    #[test]
    fn interfering_sends_fail() {
        // Dense cluster: every pair of edges interferes, so with many
        // simultaneous sends some must fail over enough steps.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.05, 0.0),
            Point::new(0.0, 0.05),
            Point::new(0.05, 0.05),
        ];
        let sg = unit_disk_graph(&points, 0.2);
        let mut r = InterferenceRouter::new(
            &sg,
            &[0],
            BalancingConfig {
                threshold: 0.0,
                gamma: 0.0,
                capacity: 1000,
            },
            InterferenceModel::new(1.0),
            ActivationRule::Local,
            2.0,
        );
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..400 {
            for v in 1..4 {
                r.inject(v, 0);
            }
            r.step(&mut rng);
        }
        let m = r.metrics();
        assert!(m.failed_sends > 0, "expected interference failures");
        assert!(m.delivered > 0);
        assert!(r.conserved());
    }

    #[test]
    fn no_activity_without_packets() {
        let mut r = build(5);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for _ in 0..50 {
            let out = r.step(&mut rng);
            assert_eq!(out.attempted, 0);
            assert_eq!(out.succeeded, 0);
        }
        assert_eq!(r.metrics().sends, 0);
    }

    #[test]
    fn succeeded_at_most_attempted() {
        let mut r = build(9);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..200 {
            r.inject(10, 0);
            r.inject(20, 0);
            let out = r.step(&mut rng);
            assert!(out.succeeded <= out.attempted);
        }
    }

    #[test]
    fn metrics_fold_failed_sends() {
        let mut r = build(21);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        for _ in 0..100 {
            for v in 5..15 {
                r.inject(v, 0);
            }
            r.step(&mut rng);
        }
        let m = r.metrics();
        assert_eq!(m.steps, 100);
        assert_eq!(
            m.failed_sends, r.failed_sends,
            "failed sends must surface in metrics"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut r = build(33);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..100 {
                r.inject(7, 0);
                r.step(&mut rng);
            }
            r.metrics()
        };
        assert_eq!(run(42), run(42));
    }
}
