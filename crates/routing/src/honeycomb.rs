//! The honeycomb algorithm for fixed transmission strength (paper §3.4).
//!
//! All nodes transmit at the same fixed power: any node within distance 1
//! can receive, and two exchanges conflict when any endpoint of one is
//! within `1 + Δ` of any endpoint of the other. The plane is tiled by
//! hexagons of side `3 + 2Δ` (Figure 5); each step:
//!
//! 1. every unit-range node pair computes its *benefit* — the maximum
//!    buffer-height difference over all destinations;
//! 2. within each hexagon the max-benefit pair with benefit > `T` becomes
//!    the *contestant* (Lemma 3.6: contestants capture a constant
//!    fraction of the best independent set's benefit);
//! 3. each contestant transmits with probability `p_t ≤ 1/6`
//!    (Lemma 3.7: it then collides with probability ≤ 1/2);
//! 4. surviving transmissions move one packet by the balancing rule.
//!
//! Theorem 3.8: the combination is
//! `((1−ε)/(24 c_b), 1 + (1 + T/B)L̄/ε, 1 + 2/ε)`-competitive.

use crate::balancing::{BalancingConfig, BalancingRouter};
use crate::types::{Metrics, Send};
use adhoc_geom::Point;
use adhoc_interference::hexmac::{Candidate, HoneycombMac};
use adhoc_interference::model::Transmission;
use adhoc_proximity::unit_disk_graph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Honeycomb algorithm parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoneycombConfig {
    /// Benefit threshold `T` (contestants need benefit > T).
    pub threshold: f64,
    /// Buffer height bound `H`.
    pub capacity: u32,
    /// Guard-zone parameter `Δ`.
    pub delta: f64,
    /// Transmission probability `p_t` (paper: ≤ 1/6).
    pub p_t: f64,
}

/// Outcome of one honeycomb step.
#[derive(Debug, Clone, PartialEq)]
pub struct HoneycombStep {
    pub contestants: usize,
    pub selected: usize,
    pub succeeded: usize,
}

/// The honeycomb router over a fixed-unit-range node set.
#[derive(Debug, Clone)]
pub struct HoneycombRouter {
    mac: HoneycombMac,
    router: BalancingRouter,
    positions: Vec<Point>,
    /// All unit-range pairs (the candidate links).
    links: Vec<Transmission>,
    delta: f64,
    failed_sends: u64,
}

impl HoneycombRouter {
    /// Build the router for nodes at `positions` (unit transmission
    /// range) and the given destination set.
    pub fn new(positions: &[Point], dests: &[u32], cfg: HoneycombConfig) -> Self {
        let sg = unit_disk_graph(positions, 1.0);
        let links = sg
            .graph
            .edges()
            .map(|(u, v, _)| Transmission::new(u, v))
            .collect();
        // Fixed strength ⇒ unit cost per hop; γ = 0 keeps the benefit
        // rule exactly "maximum height difference" as §3.4 specifies.
        let bal = BalancingConfig {
            threshold: cfg.threshold,
            gamma: 0.0,
            capacity: cfg.capacity,
        };
        HoneycombRouter {
            mac: HoneycombMac::new(cfg.delta, cfg.threshold, cfg.p_t),
            router: BalancingRouter::new(positions.len(), dests, bal),
            positions: positions.to_vec(),
            links,
            delta: cfg.delta,
            failed_sends: 0,
        }
    }

    /// The MAC (hexagon tiling) in use.
    pub fn mac(&self) -> &HoneycombMac {
        &self.mac
    }

    /// The inner balancing router.
    pub fn router(&self) -> &BalancingRouter {
        &self.router
    }

    /// Number of candidate unit-range links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Inject a packet (admission-controlled).
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        self.router.inject(v, d)
    }

    /// Metrics with collision failures folded in.
    pub fn metrics(&self) -> Metrics {
        let mut m = self.router.metrics();
        m.failed_sends = self.failed_sends;
        m
    }

    /// Benefit of the directed pair `s → t`: the best destination and the
    /// height difference, if positive.
    fn benefit(&self, s: u32, t: u32) -> Option<(u32, f64)> {
        let bank = self.router.bank();
        let mut best: Option<(u32, f64)> = None;
        for &d in bank.dests() {
            let diff = bank.height(s, d) as f64 - bank.height(t, d) as f64;
            if best.map_or(diff > 0.0, |(_, b)| diff > b) {
                best = Some((d, diff));
            }
        }
        best
    }

    /// One honeycomb step.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) -> HoneycombStep {
        // 1. candidates: for each unit-range link take the direction with
        //    the larger benefit.
        let mut candidates: Vec<Candidate> = Vec::new();
        for link in &self.links {
            let fwd = self.benefit(link.a, link.b);
            let rev = self.benefit(link.b, link.a);
            let cand = match (fwd, rev) {
                (Some((_, bf)), Some((_, br))) => {
                    if bf >= br {
                        Some((link.a, link.b, bf))
                    } else {
                        Some((link.b, link.a, br))
                    }
                }
                (Some((_, bf)), None) => Some((link.a, link.b, bf)),
                (None, Some((_, br))) => Some((link.b, link.a, br)),
                (None, None) => None,
            };
            if let Some((s, t, benefit)) = cand {
                candidates.push(Candidate {
                    link: Transmission::new(s, t),
                    benefit,
                });
            }
        }

        // 2 & 3. contest + probabilistic selection.
        let outcome = self.mac.contest(&self.positions, &candidates, rng);

        // 4. selected pairs that are mutually independent succeed; the
        //    rest collide.
        let sel: Vec<Transmission> = outcome
            .selected
            .iter()
            .map(|&i| candidates[i].link)
            .collect();
        let mut sends: Vec<Send> = Vec::new();
        let mut failed = 0usize;
        for (k, &i) in outcome.selected.iter().enumerate() {
            let me = candidates[i].link;
            let clean = sel.iter().enumerate().all(|(j, other)| {
                j == k || {
                    let mut far = true;
                    for &x in &[me.a, me.b] {
                        for &y in &[other.a, other.b] {
                            if self.positions[x as usize].dist(self.positions[y as usize])
                                <= 1.0 + self.delta
                            {
                                far = false;
                            }
                        }
                    }
                    far
                }
            });
            if !clean {
                failed += 1;
                continue;
            }
            // best destination for the winning direction
            if let Some((d, _)) = self.benefit(me.a, me.b) {
                sends.push(Send {
                    from: me.a,
                    to: me.b,
                    dest: d,
                    cost: 1.0, // fixed transmission strength: unit energy
                });
            }
        }
        self.failed_sends += failed as u64;
        let succeeded = sends.len();
        self.router.apply(&sends);
        self.router.tick();

        HoneycombStep {
            contestants: outcome.contestants.len(),
            selected: outcome.selected.len(),
            succeeded,
        }
    }

    /// Conservation invariant of the inner router.
    pub fn conserved(&self) -> bool {
        self.router.conserved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> HoneycombConfig {
        HoneycombConfig {
            threshold: 0.5,
            capacity: 100,
            delta: 0.5,
            p_t: 1.0 / 6.0,
        }
    }

    /// A chain of nodes 0.8 apart: unit-range links exist only between
    /// consecutive nodes.
    fn chain(n: usize) -> Vec<Point> {
        (0..n).map(|i| Point::new(0.8 * i as f64, 0.0)).collect()
    }

    #[test]
    fn links_are_unit_range() {
        let r = HoneycombRouter::new(&chain(10), &[9], cfg());
        assert_eq!(r.num_links(), 9);
    }

    #[test]
    fn delivers_along_chain() {
        // Small buffers make the backpressure gradient propagate quickly;
        // the whole chain shares one hexagon (side 4), so only one link
        // fires per step with probability p_t — throughput is limited to
        // ~p_t/hops, which the assertion accounts for.
        let positions = chain(6);
        let mut r = HoneycombRouter::new(
            &positions,
            &[5],
            HoneycombConfig {
                threshold: 0.5,
                capacity: 8,
                delta: 0.5,
                p_t: 1.0 / 6.0,
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..4000 {
            r.inject(0, 5);
            r.step(&mut rng);
        }
        let m = r.metrics();
        assert!(m.delivered > 50, "only {} delivered", m.delivered);
        assert!(r.conserved());
    }

    #[test]
    fn no_transmissions_without_packets() {
        let mut r = HoneycombRouter::new(&chain(6), &[5], cfg());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..50 {
            let out = r.step(&mut rng);
            assert_eq!(out.contestants, 0);
            assert_eq!(out.succeeded, 0);
        }
        assert_eq!(r.metrics().sends, 0);
    }

    #[test]
    fn far_hexagons_transmit_concurrently() {
        // Two independent 2-chains 100 apart: both can win and, when both
        // selected, both succeed.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.8, 0.0),
            Point::new(100.0, 0.0),
            Point::new(100.8, 0.0),
        ];
        let mut r = HoneycombRouter::new(&positions, &[1, 3], cfg());
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut both = false;
        for _ in 0..3000 {
            r.inject(0, 1);
            r.inject(2, 3);
            let out = r.step(&mut rng);
            if out.succeeded == 2 {
                both = true;
            }
            assert_eq!(out.contestants.min(2), out.contestants, "≤ 1 per hexagon");
        }
        assert!(both, "concurrent distant transmissions never happened");
        assert!(r.conserved());
    }

    #[test]
    fn collisions_counted() {
        // Two adjacent pairs within interference range, in different
        // hexagons: when both are selected simultaneously they collide.
        // Hexagon side is 4, so senders 4.2 apart on a row can land in
        // different cells while endpoints stay within 1+Δ? No — 4.2 > 1.5.
        // Instead, straddle a cell boundary: sender at x=3.9 and x=4.3
        // (different hexagons for side-4 pointy-top tiling is not
        // guaranteed, so find two nearby senders in distinct cells).
        let g = adhoc_geom::HexGrid::for_guard_zone(0.5);
        let mut a = Point::new(0.0, 0.0);
        let mut b = Point::new(0.0, 0.0);
        'outer: for i in 0..2000 {
            let x = i as f64 * 0.01;
            let p = Point::new(x, 0.0);
            let q = Point::new(x + 1.2, 0.0);
            if g.hex_of(p) != g.hex_of(q) {
                a = p;
                b = q;
                break 'outer;
            }
        }
        assert_ne!(g.hex_of(a), g.hex_of(b), "failed to find straddling pair");
        // Receivers 0.9 beyond each sender, pointing away from each other.
        let positions = vec![a, Point::new(a.x - 0.9, a.y), b, Point::new(b.x + 0.9, b.y)];
        let mut r = HoneycombRouter::new(
            &positions,
            &[1, 3],
            HoneycombConfig {
                threshold: 0.0,
                capacity: 100,
                delta: 0.5,
                p_t: 0.5, // raise p_t to force frequent simultaneous picks
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..1000 {
            r.inject(0, 1);
            r.inject(2, 3);
            r.step(&mut rng);
        }
        let m = r.metrics();
        assert!(
            m.failed_sends > 0,
            "expected collisions between adjacent-cell contestants"
        );
        assert!(m.delivered > 0);
        assert!(r.conserved());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let mut r = HoneycombRouter::new(&chain(5), &[4], cfg());
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            for _ in 0..300 {
                r.inject(0, 4);
                r.step(&mut rng);
            }
            r.metrics()
        };
        assert_eq!(run(9), run(9));
    }
}
