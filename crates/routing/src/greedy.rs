//! Shortest-path greedy baseline router.
//!
//! A conventional (non-adversarial) protocol for the comparison tables:
//! next hops follow a shortest-path tree toward each destination,
//! computed once on the static topology; each active edge direction
//! forwards at most one packet per step (highest-backlog destination
//! first); buffers drop on overflow at injection. It has no threshold and
//! no cost-awareness beyond the initial path metric — exactly the kind of
//! protocol the `(T, γ)`-balancing analysis outperforms under adversarial
//! cost changes.

use crate::buffers::BufferBank;
use crate::types::{ActiveEdge, Metrics, MoveOutcome};
use adhoc_graph::{dijkstra, Graph};

/// The baseline router.
#[derive(Debug, Clone)]
pub struct GreedyRouter {
    /// `next_hop[col][v]` = next node from `v` toward destination column
    /// `col` (`u32::MAX` if unreachable or at the destination).
    next_hop: Vec<Vec<u32>>,
    bank: BufferBank,
    metrics: Metrics,
}

impl GreedyRouter {
    /// Precompute shortest-path next hops on `graph` (weights = costs)
    /// for every destination.
    pub fn new(graph: &Graph, dests: &[u32], capacity: u32) -> Self {
        let n = graph.num_nodes();
        let mut next_hop = Vec::with_capacity(dests.len());
        for &d in dests {
            // Shortest-path tree rooted at the destination: the parent of
            // v in that tree is v's next hop toward d.
            let sp = dijkstra(graph, d);
            let mut hops = vec![u32::MAX; n];
            for v in 0..n as u32 {
                if v != d && sp.reachable(v) {
                    hops[v as usize] = sp.parent[v as usize];
                }
            }
            next_hop.push(hops);
        }
        GreedyRouter {
            next_hop,
            bank: BufferBank::new(n, dests, capacity),
            metrics: Metrics::default(),
        }
    }

    /// Read-only buffer view.
    pub fn bank(&self) -> &BufferBank {
        &self.bank
    }

    /// Metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Next hop from `v` toward `d` (`None` at the destination or if
    /// unreachable).
    pub fn next_hop(&self, v: u32, d: u32) -> Option<u32> {
        let col = self.bank.col_of(d)?;
        let h = self.next_hop[col][v as usize];
        (h != u32::MAX).then_some(h)
    }

    /// Inject with admission control.
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        if self.bank.inject(v, d) {
            self.metrics.injected += 1;
            if v == d {
                self.metrics.delivered += 1;
            }
            true
        } else {
            self.metrics.dropped += 1;
            false
        }
    }

    /// One step: each active edge direction forwards at most one packet
    /// whose shortest path uses that edge, preferring the destination
    /// with the largest backlog.
    pub fn step(&mut self, active: &[ActiveEdge]) {
        // Decide synchronously, then apply.
        let mut moves: Vec<(u32, u32, u32, f64)> = Vec::new();
        for e in active {
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                let mut best: Option<(u32, u32)> = None; // (height, dest)
                for &d in self.bank.dests() {
                    if self.next_hop(from, d) == Some(to) {
                        let h = self.bank.height(from, d);
                        if h > 0 && best.is_none_or(|(bh, _)| h > bh) {
                            best = Some((h, d));
                        }
                    }
                }
                if let Some((_, d)) = best {
                    moves.push((from, to, d, e.cost));
                }
            }
        }
        for (from, to, d, cost) in moves {
            if self.bank.height(from, d) == 0 || !self.bank.can_accept(to, d) {
                continue;
            }
            match self.bank.transfer(from, to, d) {
                MoveOutcome::Delivered => self.metrics.delivered += 1,
                MoveOutcome::Buffered => {}
            }
            self.metrics.sends += 1;
            self.metrics.total_cost += cost;
        }
        self.metrics.steps += 1;
    }

    /// Conservation invariant.
    pub fn conserved(&self) -> bool {
        self.metrics.injected == self.bank.total_absorbed() + self.bank.total_buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::GraphBuilder;

    /// 0 -1- 1 -1- 2 and a costly shortcut 0 -5- 2.
    fn diamond() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(0, 2, 5.0);
        b.build()
    }

    #[test]
    fn next_hops_follow_shortest_paths() {
        let r = GreedyRouter::new(&diamond(), &[2], 10);
        assert_eq!(r.next_hop(0, 2), Some(1)); // via the cheap path
        assert_eq!(r.next_hop(1, 2), Some(2));
        assert_eq!(r.next_hop(2, 2), None);
    }

    #[test]
    fn unreachable_has_no_next_hop() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let r = GreedyRouter::new(&b.build(), &[2], 10);
        assert_eq!(r.next_hop(0, 2), None);
    }

    #[test]
    fn forwards_and_delivers() {
        let g = diamond();
        let mut r = GreedyRouter::new(&g, &[2], 10);
        r.inject(0, 2);
        let edges: Vec<ActiveEdge> = g
            .edges()
            .map(|(u, v, w)| ActiveEdge::new(u, v, w))
            .collect();
        r.step(&edges);
        r.step(&edges);
        let m = r.metrics();
        assert_eq!(m.delivered, 1);
        assert_eq!(m.sends, 2);
        assert_eq!(m.total_cost, 2.0); // took the cheap 2-hop path
        assert!(r.conserved());
    }

    #[test]
    fn one_packet_per_edge_direction_per_step() {
        let g = diamond();
        let mut r = GreedyRouter::new(&g, &[2], 10);
        for _ in 0..5 {
            r.inject(1, 2);
        }
        r.step(&[ActiveEdge::new(1, 2, 1.0)]);
        assert_eq!(r.metrics().sends, 1);
        assert_eq!(r.bank().height(1, 2), 4);
    }

    #[test]
    fn inactive_edges_unused() {
        let g = diamond();
        let mut r = GreedyRouter::new(&g, &[2], 10);
        r.inject(0, 2);
        r.step(&[]); // nothing active
        assert_eq!(r.metrics().sends, 0);
        assert_eq!(r.bank().height(0, 2), 1);
    }

    #[test]
    fn largest_backlog_dest_preferred() {
        // Two destinations share the next hop; the fuller buffer goes
        // first.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(1, 3, 1.0);
        let g = b.build();
        let mut r = GreedyRouter::new(&g, &[2, 3], 10);
        r.inject(0, 2);
        r.inject(0, 3);
        r.inject(0, 3);
        r.step(&[ActiveEdge::new(0, 1, 1.0)]);
        assert_eq!(r.bank().height(1, 3), 1); // dest 3 had backlog 2
        assert_eq!(r.bank().height(1, 2), 0);
    }

    #[test]
    fn drops_on_overflow() {
        let g = diamond();
        let mut r = GreedyRouter::new(&g, &[2], 2);
        for _ in 0..5 {
            r.inject(0, 2);
        }
        assert_eq!(r.metrics().dropped, 3);
        assert!(r.conserved());
    }
}
