//! Per-(node, destination) packet buffers (paper §3.1).
//!
//! Every node `v` has one buffer `Q_{v,d}` per destination `d`, of bounded
//! height `H`. The destination's own buffer `Q_{d,d}` absorbs instantly,
//! so its height is always 0. Packets are fungible within a buffer (the
//! balancing analysis only tracks heights), so the bank stores a dense
//! `n × |dests|` height matrix.

use crate::types::MoveOutcome;

/// Dense height matrix with absorption and conservation accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferBank {
    num_nodes: usize,
    /// The declared destinations, in column order.
    dests: Vec<u32>,
    /// `dest_col[v]` = column of destination `v`, or `u16::MAX`.
    dest_col: Vec<u16>,
    heights: Vec<u32>,
    capacity: u32,
    /// Total packets absorbed at destinations.
    absorbed: u64,
}

impl BufferBank {
    /// A bank for `num_nodes` nodes and the given destination set, each
    /// buffer holding at most `capacity` packets.
    ///
    /// # Panics
    /// Panics if a destination id is out of range, duplicated, or there
    /// are more than `u16::MAX - 1` destinations.
    pub fn new(num_nodes: usize, dests: &[u32], capacity: u32) -> Self {
        assert!(dests.len() < u16::MAX as usize, "too many destinations");
        let mut dest_col = vec![u16::MAX; num_nodes];
        for (i, &d) in dests.iter().enumerate() {
            assert!((d as usize) < num_nodes, "destination {d} out of range");
            assert!(
                dest_col[d as usize] == u16::MAX,
                "duplicate destination {d}"
            );
            dest_col[d as usize] = i as u16;
        }
        BufferBank {
            num_nodes,
            dests: dests.to_vec(),
            dest_col,
            heights: vec![0; num_nodes * dests.len()],
            capacity,
            absorbed: 0,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The destination set (column order).
    pub fn dests(&self) -> &[u32] {
        &self.dests
    }

    /// Buffer capacity `H`.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Column of destination `d`, if `d` is a declared destination.
    pub fn col_of(&self, d: u32) -> Option<usize> {
        let c = self.dest_col[d as usize];
        (c != u16::MAX).then_some(c as usize)
    }

    #[inline]
    fn idx(&self, v: u32, col: usize) -> usize {
        v as usize * self.dests.len() + col
    }

    /// Height of `Q_{v,d}` (0 for the destination's own buffer).
    ///
    /// # Panics
    /// Panics if `d` is not a declared destination.
    pub fn height(&self, v: u32, d: u32) -> u32 {
        if v == d {
            return 0;
        }
        let col = self.col_of(d).expect("undeclared destination");
        self.heights[self.idx(v, col)]
    }

    /// Heights of all buffers at node `v`, in destination column order.
    pub fn heights_at(&self, v: u32) -> &[u32] {
        let d = self.dests.len();
        &self.heights[v as usize * d..(v as usize + 1) * d]
    }

    /// Can `Q_{v,d}` accept one more packet? (Destinations always can.)
    pub fn can_accept(&self, v: u32, d: u32) -> bool {
        v == d || self.height(v, d) < self.capacity
    }

    /// Inject a new packet for destination `d` at node `v`. Returns
    /// `false` (drop) when the buffer is full. Injecting at the
    /// destination itself is an immediate delivery.
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        if v == d {
            self.absorbed += 1;
            return true;
        }
        let col = self.col_of(d).expect("undeclared destination");
        let i = self.idx(v, col);
        if self.heights[i] >= self.capacity {
            return false;
        }
        self.heights[i] += 1;
        true
    }

    /// Move one packet for destination `d` from `v` to `w`.
    ///
    /// # Panics
    /// Panics if `Q_{v,d}` is empty; callers must check heights first.
    pub fn transfer(&mut self, v: u32, w: u32, d: u32) -> MoveOutcome {
        let col = self.col_of(d).expect("undeclared destination");
        let iv = self.idx(v, col);
        assert!(self.heights[iv] > 0, "transfer from empty buffer");
        self.heights[iv] -= 1;
        if w == d {
            self.absorbed += 1;
            MoveOutcome::Delivered
        } else {
            let iw = self.idx(w, col);
            self.heights[iw] += 1;
            MoveOutcome::Buffered
        }
    }

    /// Discard one packet from `Q_{v,d}` without delivering it (TTL
    /// expiry, void drops). Returns `false` if the buffer was empty.
    pub fn discard(&mut self, v: u32, d: u32) -> bool {
        let col = self.col_of(d).expect("undeclared destination");
        let i = self.idx(v, col);
        if self.heights[i] == 0 {
            return false;
        }
        self.heights[i] -= 1;
        true
    }

    /// Total packets currently buffered anywhere.
    pub fn total_buffered(&self) -> u64 {
        self.heights.iter().map(|&h| h as u64).sum()
    }

    /// Total packets absorbed at destinations so far.
    pub fn total_absorbed(&self) -> u64 {
        self.absorbed
    }

    /// Maximum buffer height currently in use.
    pub fn max_height(&self) -> u32 {
        self.heights.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank() -> BufferBank {
        BufferBank::new(4, &[2, 3], 2)
    }

    #[test]
    fn construction() {
        let b = bank();
        assert_eq!(b.num_nodes(), 4);
        assert_eq!(b.dests(), &[2, 3]);
        assert_eq!(b.capacity(), 2);
        assert_eq!(b.col_of(2), Some(0));
        assert_eq!(b.col_of(3), Some(1));
        assert_eq!(b.col_of(0), None);
    }

    #[test]
    #[should_panic]
    fn duplicate_dest_panics() {
        BufferBank::new(4, &[1, 1], 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_dest_panics() {
        BufferBank::new(4, &[9], 2);
    }

    #[test]
    fn inject_and_height() {
        let mut b = bank();
        assert!(b.inject(0, 2));
        assert!(b.inject(0, 2));
        assert_eq!(b.height(0, 2), 2);
        assert!(!b.inject(0, 2)); // full → drop
        assert_eq!(b.height(0, 2), 2);
        assert_eq!(b.height(0, 3), 0);
        assert_eq!(b.total_buffered(), 2);
    }

    #[test]
    fn inject_at_destination_delivers() {
        let mut b = bank();
        assert!(b.inject(2, 2));
        assert_eq!(b.total_absorbed(), 1);
        assert_eq!(b.total_buffered(), 0);
    }

    #[test]
    fn destination_height_is_zero() {
        let b = bank();
        assert_eq!(b.height(2, 2), 0);
        assert!(b.can_accept(2, 2));
    }

    #[test]
    fn transfer_moves_and_delivers() {
        let mut b = bank();
        b.inject(0, 2);
        assert_eq!(b.transfer(0, 1, 2), MoveOutcome::Buffered);
        assert_eq!(b.height(0, 2), 0);
        assert_eq!(b.height(1, 2), 1);
        assert_eq!(b.transfer(1, 2, 2), MoveOutcome::Delivered);
        assert_eq!(b.total_absorbed(), 1);
        assert_eq!(b.total_buffered(), 0);
    }

    #[test]
    #[should_panic]
    fn transfer_from_empty_panics() {
        let mut b = bank();
        b.transfer(0, 1, 2);
    }

    #[test]
    fn conservation_invariant() {
        // injected = buffered + absorbed + dropped, tracked externally:
        // here we just confirm the bank's two counters add up.
        let mut b = bank();
        let mut accepted = 0u64;
        for v in 0..2u32 {
            for _ in 0..3 {
                if b.inject(v, 3) {
                    accepted += 1;
                }
            }
        }
        assert_eq!(accepted, 4); // capacity 2 each at nodes 0 and 1
        b.transfer(0, 3, 3);
        b.transfer(1, 0, 3);
        assert_eq!(b.total_buffered() + b.total_absorbed(), accepted);
    }

    #[test]
    fn heights_at_slice() {
        let mut b = bank();
        b.inject(1, 2);
        b.inject(1, 3);
        b.inject(1, 3);
        assert_eq!(b.heights_at(1), &[1, 2]);
        assert_eq!(b.heights_at(0), &[0, 0]);
    }

    #[test]
    fn max_height_tracks() {
        let mut b = bank();
        assert_eq!(b.max_height(), 0);
        b.inject(0, 2);
        b.inject(0, 2);
        assert_eq!(b.max_height(), 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut b = BufferBank::new(2, &[1], 0);
        assert!(!b.inject(0, 1));
        assert!(b.inject(1, 1)); // destination absorbs regardless
    }
}
