//! Stale-heights ablation of the balancing algorithm.
//!
//! §3.2 remark: *"In the above algorithm, we assume that nodes
//! continuously exchange the buffer height values. In a practical
//! implementation, we can reduce the amount of control information
//! exchange for this purpose."*
//!
//! [`StaleBalancingRouter`] quantifies that trade: neighbors' heights are
//! only refreshed every `refresh_every` steps, and send decisions use the
//! cached snapshot. With period 1 it is exactly the `(T,γ)`-balancing
//! algorithm; larger periods cut control traffic proportionally at a
//! measurable throughput cost (ablation experiment E12).

use crate::balancing::{BalancingConfig, BalancingRouter};
use crate::types::{ActiveEdge, Metrics, Send};

/// Balancing with periodically-refreshed height snapshots.
#[derive(Debug, Clone)]
pub struct StaleBalancingRouter {
    inner: BalancingRouter,
    /// Snapshot of all heights, refreshed every `refresh_every` steps.
    snapshot: Vec<u32>,
    dests_len: usize,
    refresh_every: u64,
    steps_since_refresh: u64,
    /// Control messages "sent" (one per node per refresh).
    pub control_messages: u64,
}

impl StaleBalancingRouter {
    /// Wrap a fresh balancing router; `refresh_every ≥ 1`.
    pub fn new(num_nodes: usize, dests: &[u32], cfg: BalancingConfig, refresh_every: u64) -> Self {
        assert!(refresh_every >= 1, "refresh period must be ≥ 1");
        let inner = BalancingRouter::new(num_nodes, dests, cfg);
        let dests_len = dests.len();
        StaleBalancingRouter {
            snapshot: vec![0; num_nodes * dests_len],
            inner,
            dests_len,
            refresh_every,
            steps_since_refresh: u64::MAX, // force refresh on first step
            control_messages: 0,
        }
    }

    /// The wrapped router (buffers, metrics).
    pub fn inner(&self) -> &BalancingRouter {
        &self.inner
    }

    /// Metrics of the wrapped router.
    pub fn metrics(&self) -> Metrics {
        self.inner.metrics()
    }

    /// Inject with admission control (uses *true* local state — admission
    /// is a local decision, no control traffic involved).
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        self.inner.inject(v, d)
    }

    fn refresh(&mut self) {
        let n = self.inner.bank().num_nodes();
        for v in 0..n {
            let hs = self.inner.bank().heights_at(v as u32);
            self.snapshot[v * self.dests_len..(v + 1) * self.dests_len].copy_from_slice(hs);
        }
        self.control_messages += n as u64;
        self.steps_since_refresh = 0;
    }

    fn snap_height(&self, v: u32, col: usize) -> u32 {
        self.snapshot[v as usize * self.dests_len + col]
    }

    /// One step deciding from the (possibly stale) snapshot; transfers
    /// are still guarded by true buffer state, so safety is unaffected.
    pub fn step(&mut self, active: &[ActiveEdge]) -> Vec<Send> {
        if self.steps_since_refresh >= self.refresh_every - 1 {
            self.refresh();
        } else {
            self.steps_since_refresh += 1;
        }
        let cfg = self.inner.config();
        let dests: Vec<u32> = self.inner.bank().dests().to_vec();
        let mut sends = Vec::new();
        for e in active {
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                let mut best: Option<(f64, u32)> = None;
                for (col, &d) in dests.iter().enumerate() {
                    let hv = if from == d {
                        0
                    } else {
                        self.snap_height(from, col)
                    };
                    let hw = if to == d {
                        0
                    } else {
                        self.snap_height(to, col)
                    };
                    let value = hv as f64 - hw as f64 - e.cost * cfg.gamma;
                    if value > cfg.threshold && best.is_none_or(|(bv, _)| value > bv) {
                        best = Some((value, d));
                    }
                }
                if let Some((_, dest)) = best {
                    sends.push(Send {
                        from,
                        to,
                        dest,
                        cost: e.cost,
                    });
                }
            }
        }
        self.inner.apply(&sends);
        self.inner.tick();
        sends
    }

    /// Conservation invariant of the wrapped router.
    pub fn conserved(&self) -> bool {
        self.inner.conserved()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn cfg() -> BalancingConfig {
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.0,
            capacity: 50,
        }
    }

    fn chain_edges() -> Vec<ActiveEdge> {
        vec![
            ActiveEdge::new(0, 1, 0.1),
            ActiveEdge::new(1, 2, 0.1),
            ActiveEdge::new(2, 3, 0.1),
        ]
    }

    #[test]
    #[should_panic]
    fn zero_period_rejected() {
        StaleBalancingRouter::new(2, &[1], cfg(), 0);
    }

    #[test]
    fn period_one_matches_fresh_balancing() {
        let mut fresh = BalancingRouter::new(4, &[3], cfg());
        let mut stale = StaleBalancingRouter::new(4, &[3], cfg(), 1);
        let edges = chain_edges();
        for s in 0..300 {
            if s % 2 == 0 {
                fresh.inject(0, 3);
                stale.inject(0, 3);
            }
            fresh.step(&edges);
            stale.step(&edges);
        }
        assert_eq!(fresh.metrics().delivered, stale.metrics().delivered);
        assert_eq!(fresh.metrics().sends, stale.metrics().sends);
    }

    #[test]
    fn stale_heights_still_deliver_and_conserve() {
        for period in [2u64, 5, 20] {
            let mut r = StaleBalancingRouter::new(4, &[3], cfg(), period);
            let edges = chain_edges();
            for s in 0..600 {
                if s % 2 == 0 {
                    r.inject(0, 3);
                }
                r.step(&edges);
            }
            let m = r.metrics();
            assert!(m.delivered > 20, "period {period}: only {}", m.delivered);
            assert!(r.conserved(), "period {period}");
        }
    }

    #[test]
    fn control_traffic_scales_inversely_with_period() {
        let run = |period: u64| {
            let mut r = StaleBalancingRouter::new(4, &[3], cfg(), period);
            let edges = chain_edges();
            for _ in 0..100 {
                r.inject(0, 3);
                r.step(&edges);
            }
            r.control_messages
        };
        let c1 = run(1);
        let c10 = run(10);
        assert_eq!(c1, 4 * 100);
        assert_eq!(c10, 4 * 10);
    }

    #[test]
    fn throughput_degrades_gracefully_not_catastrophically() {
        let run = |period: u64| {
            let mut r = StaleBalancingRouter::new(4, &[3], cfg(), period);
            let edges = chain_edges();
            let mut rng = ChaCha8Rng::seed_from_u64(5);
            for _ in 0..800 {
                if rng.gen_bool(0.5) {
                    r.inject(0, 3);
                }
                r.step(&edges);
            }
            r.metrics().delivered
        };
        let fresh = run(1);
        let stale = run(10);
        assert!(stale > 0);
        assert!(
            stale * 4 >= fresh,
            "period-10 throughput collapsed: {stale} vs {fresh}"
        );
    }

    #[test]
    fn no_send_from_empty_buffer_despite_stale_view() {
        // The snapshot says node 0 has packets, but they were all sent
        // already: apply() must skip rather than fabricate packets.
        let mut r = StaleBalancingRouter::new(2, &[1], cfg(), 100);
        for _ in 0..3 {
            r.inject(0, 1);
        }
        let e = [ActiveEdge::new(0, 1, 0.0)];
        // Refresh happens at first step; subsequent steps reuse the stale
        // snapshot claiming height 3 even as the buffer drains.
        for _ in 0..10 {
            r.step(&e);
        }
        assert_eq!(r.metrics().delivered, 3);
        assert_eq!(r.metrics().sends, 3, "must not send from empty buffers");
        assert!(r.conserved());
    }
}
