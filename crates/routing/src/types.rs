//! Shared routing-layer types.

use serde::{Deserialize, Serialize};

/// An edge usable in the current time step, with its current cost
/// (the adversary may change costs every step — §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveEdge {
    pub u: u32,
    pub v: u32,
    /// Transmission cost `c(e)` for this step (e.g. `|uv|^κ` energy).
    pub cost: f64,
}

impl ActiveEdge {
    pub fn new(u: u32, v: u32, cost: f64) -> Self {
        ActiveEdge { u, v, cost }
    }
}

/// A send decision: move one packet for destination `dest` from `from` to
/// `to` at cost `cost`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Send {
    pub from: u32,
    pub to: u32,
    pub dest: u32,
    pub cost: f64,
}

/// What happened to a moved packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MoveOutcome {
    /// The packet reached its destination buffer and was absorbed.
    Delivered,
    /// The packet now sits in the receiving node's buffer.
    Buffered,
}

/// Aggregate routing metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Packets accepted into a source buffer.
    pub injected: u64,
    /// Packets the source had to drop (full buffer — admission control).
    pub dropped: u64,
    /// Packets absorbed at their destination.
    pub delivered: u64,
    /// Individual packet transmissions performed.
    pub sends: u64,
    /// Transmissions attempted but destroyed by interference.
    pub failed_sends: u64,
    /// Total cost over all successful transmissions.
    pub total_cost: f64,
    /// Time steps executed.
    pub steps: u64,
}

impl Metrics {
    /// Average cost per delivered packet (`None` before any delivery).
    pub fn avg_cost_per_delivery(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.total_cost / self.delivered as f64)
    }

    /// Throughput = deliveries per step (`None` before any step).
    pub fn throughput(&self) -> Option<f64> {
        (self.steps > 0).then(|| self.delivered as f64 / self.steps as f64)
    }

    /// Fraction of offered packets that were accepted.
    pub fn admission_rate(&self) -> Option<f64> {
        let offered = self.injected + self.dropped;
        (offered > 0).then(|| self.injected as f64 / offered as f64)
    }

    /// Average hops per delivered packet.
    pub fn avg_path_length(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.sends as f64 / self.delivered as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_ratios() {
        let m = Metrics {
            injected: 90,
            dropped: 10,
            delivered: 45,
            sends: 180,
            failed_sends: 5,
            total_cost: 90.0,
            steps: 100,
        };
        assert_eq!(m.avg_cost_per_delivery(), Some(2.0));
        assert_eq!(m.throughput(), Some(0.45));
        assert_eq!(m.admission_rate(), Some(0.9));
        assert_eq!(m.avg_path_length(), Some(4.0));
    }

    #[test]
    fn metrics_empty_guards() {
        let m = Metrics::default();
        assert_eq!(m.avg_cost_per_delivery(), None);
        assert_eq!(m.throughput(), None);
        assert_eq!(m.admission_rate(), None);
        assert_eq!(m.avg_path_length(), None);
    }

    #[test]
    fn active_edge_construction() {
        let e = ActiveEdge::new(1, 2, 0.5);
        assert_eq!((e.u, e.v, e.cost), (1, 2, 0.5));
    }
}
