//! Greedy geographic forwarding — the position-based baseline (the paper
//! cites GPSR and "routing protocols that exploit the underlying geometry
//! of the network" in §1.2).
//!
//! Each node forwards a packet to the neighbor strictly closest to the
//! destination's position; if no neighbor improves on the current node
//! (a *local minimum* — the void problem), the packet is stuck and, after
//! a patience budget, dropped. The experiment value of this baseline is
//! the contrast: greedy forwarding needs no buffers or height exchange,
//! but it silently fails on voids, while the balancing algorithm is
//! void-oblivious (backpressure flows around anything) at the price of
//! state.

use crate::buffers::BufferBank;
use crate::types::{ActiveEdge, Metrics, MoveOutcome};
use adhoc_geom::Point;

/// Greedy geographic router over a fixed node embedding.
#[derive(Debug, Clone)]
pub struct GeoGreedyRouter {
    positions: Vec<Point>,
    bank: BufferBank,
    metrics: Metrics,
    /// Packets discarded at a local minimum.
    pub stuck_drops: u64,
    /// Steps a buffered packet may wait at a local minimum before being
    /// discarded (models TTL).
    patience: u32,
    /// wait[v][dest_col] — steps the head-of-buffer packet has been stuck.
    wait: Vec<u32>,
}

impl GeoGreedyRouter {
    /// Router for nodes at `positions` toward the given destinations.
    pub fn new(positions: &[Point], dests: &[u32], capacity: u32, patience: u32) -> Self {
        let bank = BufferBank::new(positions.len(), dests, capacity);
        GeoGreedyRouter {
            wait: vec![0; positions.len() * dests.len()],
            positions: positions.to_vec(),
            bank,
            metrics: Metrics::default(),
            stuck_drops: 0,
            patience,
        }
    }

    /// Read-only buffer view.
    pub fn bank(&self) -> &BufferBank {
        &self.bank
    }

    /// Metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    /// Inject with admission control.
    pub fn inject(&mut self, v: u32, d: u32) -> bool {
        if self.bank.inject(v, d) {
            self.metrics.injected += 1;
            if v == d {
                self.metrics.delivered += 1;
            }
            true
        } else {
            self.metrics.dropped += 1;
            false
        }
    }

    /// One step: each active edge direction `(u → v)` may carry one packet
    /// whose destination is strictly closer to `v` than to `u` AND for
    /// which `v` is `u`'s best active next hop.
    pub fn step(&mut self, active: &[ActiveEdge]) {
        let dests: Vec<u32> = self.bank.dests().to_vec();
        // adjacency view of this step's active edges
        let mut moves: Vec<(u32, u32, u32)> = Vec::new();
        for (col, &d) in dests.iter().enumerate() {
            let pd = self.positions[d as usize];
            // For each node holding packets for d, find its best active
            // neighbor this step.
            let mut best: std::collections::HashMap<u32, (f64, u32)> =
                std::collections::HashMap::new();
            for e in active {
                for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                    if self.bank.height(from, d) == 0 {
                        continue;
                    }
                    let dist_to = self.positions[to as usize].dist(pd);
                    let cur = best.entry(from).or_insert((f64::INFINITY, u32::MAX));
                    if dist_to < cur.0 {
                        *cur = (dist_to, to);
                    }
                }
            }
            for (from, (dist_to, to)) in best {
                let here = self.positions[from as usize].dist(pd);
                let w_idx = from as usize * dests.len() + col;
                if dist_to < here {
                    moves.push((from, to, d));
                    self.wait[w_idx] = 0;
                } else {
                    // local minimum: all active neighbors are farther
                    self.wait[w_idx] += 1;
                    if self.wait[w_idx] > self.patience {
                        // TTL expiry: discard one stuck packet
                        if self.bank.discard(from, d) {
                            self.stuck_drops += 1;
                        }
                        self.wait[w_idx] = 0;
                    }
                }
            }
        }
        for (from, to, d) in moves {
            if self.bank.height(from, d) == 0 || !self.bank.can_accept(to, d) {
                continue;
            }
            match self.bank.transfer(from, to, d) {
                MoveOutcome::Delivered => self.metrics.delivered += 1,
                MoveOutcome::Buffered => {}
            }
            self.metrics.sends += 1;
        }
        self.metrics.steps += 1;
    }

    /// Conservation: injected = delivered + buffered + stuck-dropped.
    pub fn conserved(&self) -> bool {
        self.metrics.injected
            == self.bank.total_absorbed() + self.bank.total_buffered() + self.stuck_drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, spacing: f64) -> Vec<Point> {
        (0..n)
            .map(|i| Point::new(spacing * i as f64, 0.0))
            .collect()
    }

    fn chain_edges(n: usize) -> Vec<ActiveEdge> {
        (0..n as u32 - 1)
            .map(|i| ActiveEdge::new(i, i + 1, 0.1))
            .collect()
    }

    #[test]
    fn forwards_greedily_along_a_line() {
        let positions = line(5, 1.0);
        let mut r = GeoGreedyRouter::new(&positions, &[4], 10, 5);
        r.inject(0, 4);
        let edges = chain_edges(5);
        for _ in 0..4 {
            r.step(&edges);
        }
        let m = r.metrics();
        assert_eq!(m.delivered, 1);
        assert_eq!(m.sends, 4); // exactly the hop count: geometric progress
        assert!(r.conserved());
    }

    #[test]
    fn never_moves_away_from_destination() {
        // Destination at node 0; packet at node 2; only edge (2,3) active
        // points AWAY — greedy must refuse to use it.
        let positions = line(4, 1.0);
        let mut r = GeoGreedyRouter::new(&positions, &[0], 10, 100);
        r.inject(2, 0);
        r.step(&[ActiveEdge::new(2, 3, 0.1)]);
        assert_eq!(r.metrics().sends, 0);
        assert_eq!(r.bank().height(2, 0), 1);
        assert!(r.conserved());
    }

    #[test]
    fn void_drops_after_patience() {
        // A dead-end: the only neighbor is farther from the destination,
        // so the packet is stuck and eventually TTL-discarded.
        let positions = vec![
            Point::new(0.0, 0.0), // dest
            Point::new(5.0, 0.0), // stuck holder
            Point::new(6.0, 0.0), // its only neighbor, farther from dest
        ];
        let mut r = GeoGreedyRouter::new(&positions, &[0], 10, 3);
        r.inject(1, 0);
        let edges = [ActiveEdge::new(1, 2, 0.1)];
        for _ in 0..10 {
            r.step(&edges);
        }
        assert_eq!(r.stuck_drops, 1);
        assert_eq!(r.metrics().delivered, 0);
        assert!(r.conserved());
    }

    #[test]
    fn picks_the_closest_active_neighbor() {
        // Node 0 holds a packet for node 3; neighbors 1 (closer) and 2
        // (closest) both active: must pick 2.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(3.0, 0.0),
        ];
        let mut r = GeoGreedyRouter::new(&positions, &[3], 10, 5);
        r.inject(0, 3);
        r.step(&[ActiveEdge::new(0, 1, 0.1), ActiveEdge::new(0, 2, 0.1)]);
        assert_eq!(r.bank().height(2, 3), 1);
        assert_eq!(r.bank().height(1, 3), 0);
    }

    #[test]
    fn conservation_under_mixed_traffic() {
        let positions = line(6, 1.0);
        let mut r = GeoGreedyRouter::new(&positions, &[0, 5], 4, 2);
        let edges = chain_edges(6);
        for s in 0..200u32 {
            r.inject(s % 6, if s % 2 == 0 { 0 } else { 5 });
            r.step(&edges);
        }
        assert!(r.conserved());
        assert!(r.metrics().delivered > 50);
    }
}
