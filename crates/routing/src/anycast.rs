//! Anycast balancing — the generalization of Awerbuch, Brinkmann and
//! Scheideler that §1.2/§3 build on ("extended these results to arbitrary
//! anycasting situations and showed that simple balancing strategies
//! achieve a throughput that can be brought arbitrarily close to a best
//! possible throughput").
//!
//! A packet is addressed to a destination *group*; reaching **any**
//! member absorbs it. The balancing rule is unchanged — per active edge,
//! send toward the group with the largest height difference minus
//! `γ·c(e)` — with every group member's buffer pinned at height 0.

use crate::types::{ActiveEdge, Metrics, Send};
use serde::{Deserialize, Serialize};

/// A destination group (anycast address).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    /// Group id (index into the router's group table).
    pub id: u32,
    /// Member node ids; reaching any of them delivers.
    pub members: Vec<u32>,
}

/// The anycast `(T,γ)`-balancing router.
#[derive(Debug, Clone)]
pub struct AnycastRouter {
    threshold: f64,
    gamma: f64,
    capacity: u32,
    groups: Vec<Vec<u32>>,
    /// `is_member[g][v]`
    is_member: Vec<Vec<bool>>,
    /// heights[v * groups + g]
    heights: Vec<u32>,
    metrics: Metrics,
    absorbed: u64,
}

impl AnycastRouter {
    /// Router over `num_nodes` nodes with the given destination groups.
    ///
    /// # Panics
    /// Panics on empty groups or out-of-range members.
    pub fn new(
        num_nodes: usize,
        groups: &[Vec<u32>],
        threshold: f64,
        gamma: f64,
        capacity: u32,
    ) -> Self {
        let mut is_member = vec![vec![false; num_nodes]; groups.len()];
        for (g, members) in groups.iter().enumerate() {
            assert!(!members.is_empty(), "group {g} is empty");
            for &m in members {
                assert!((m as usize) < num_nodes, "member {m} out of range");
                is_member[g][m as usize] = true;
            }
        }
        AnycastRouter {
            threshold,
            gamma,
            capacity,
            groups: groups.to_vec(),
            is_member,
            heights: vec![0; num_nodes * groups.len()],
            metrics: Metrics::default(),
            absorbed: 0,
        }
    }

    /// Number of destination groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Members of group `g`.
    pub fn members(&self, g: u32) -> &[u32] {
        &self.groups[g as usize]
    }

    /// Metrics so far.
    pub fn metrics(&self) -> Metrics {
        self.metrics
    }

    #[inline]
    fn idx(&self, v: u32, g: usize) -> usize {
        v as usize * self.groups.len() + g
    }

    /// Height of the group-`g` buffer at `v` (0 at members).
    pub fn height(&self, v: u32, g: u32) -> u32 {
        if self.is_member[g as usize][v as usize] {
            0
        } else {
            self.heights[self.idx(v, g as usize)]
        }
    }

    /// Inject a packet for group `g` at node `v`; injecting at a member
    /// is an instant delivery; full buffers drop.
    pub fn inject(&mut self, v: u32, g: u32) -> bool {
        if self.is_member[g as usize][v as usize] {
            self.absorbed += 1;
            self.metrics.injected += 1;
            self.metrics.delivered += 1;
            return true;
        }
        let i = self.idx(v, g as usize);
        if self.heights[i] >= self.capacity {
            self.metrics.dropped += 1;
            return false;
        }
        self.heights[i] += 1;
        self.metrics.injected += 1;
        true
    }

    /// One synchronous balancing step over the active edges.
    pub fn step(&mut self, active: &[ActiveEdge]) -> Vec<Send> {
        // Decide from a consistent snapshot.
        let mut sends: Vec<Send> = Vec::new();
        for e in active {
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                let mut best: Option<(f64, u32)> = None;
                for g in 0..self.groups.len() as u32 {
                    let value = self.height(from, g) as f64
                        - self.height(to, g) as f64
                        - e.cost * self.gamma;
                    if value > self.threshold && best.is_none_or(|(bv, _)| value > bv) {
                        best = Some((value, g));
                    }
                }
                if let Some((_, g)) = best {
                    sends.push(Send {
                        from,
                        to,
                        dest: g, // dest field carries the group id
                        cost: e.cost,
                    });
                }
            }
        }
        // Apply with true-state guards.
        for s in &sends {
            let g = s.dest as usize;
            let from_i = self.idx(s.from, g);
            if self.is_member[g][s.from as usize] || self.heights[from_i] == 0 {
                continue;
            }
            if self.is_member[g][s.to as usize] {
                self.heights[from_i] -= 1;
                self.absorbed += 1;
                self.metrics.delivered += 1;
            } else {
                let to_i = self.idx(s.to, g);
                if self.heights[to_i] >= self.capacity {
                    continue;
                }
                self.heights[from_i] -= 1;
                self.heights[to_i] += 1;
            }
            self.metrics.sends += 1;
            self.metrics.total_cost += s.cost;
        }
        self.metrics.steps += 1;
        sends
    }

    /// Total packets currently buffered.
    pub fn total_buffered(&self) -> u64 {
        self.heights.iter().map(|&h| h as u64).sum()
    }

    /// Conservation: injected = absorbed + buffered.
    pub fn conserved(&self) -> bool {
        self.metrics.injected == self.absorbed + self.total_buffered()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path 0-1-2-3-4; group = {3, 4}.
    fn edges() -> Vec<ActiveEdge> {
        (0..4).map(|i| ActiveEdge::new(i, i + 1, 0.1)).collect()
    }

    fn router() -> AnycastRouter {
        AnycastRouter::new(5, &[vec![3, 4]], 0.5, 0.0, 50)
    }

    #[test]
    #[should_panic]
    fn empty_group_rejected() {
        AnycastRouter::new(3, &[vec![]], 0.0, 0.0, 10);
    }

    #[test]
    #[should_panic]
    fn out_of_range_member_rejected() {
        AnycastRouter::new(3, &[vec![7]], 0.0, 0.0, 10);
    }

    #[test]
    fn delivers_to_nearest_member() {
        let mut r = router();
        let e = edges();
        for _ in 0..100 {
            r.inject(0, 0);
            r.step(&e);
        }
        let m = r.metrics();
        assert!(m.delivered > 30, "delivered {}", m.delivered);
        assert!(r.conserved());
        // Packets absorb at node 3 (first member on the path) — node 4's
        // buffers never fill because member heights are pinned at 0.
        assert_eq!(r.height(3, 0), 0);
        assert_eq!(r.height(4, 0), 0);
    }

    #[test]
    fn injection_at_member_is_instant_delivery() {
        let mut r = router();
        assert!(r.inject(4, 0));
        assert_eq!(r.metrics().delivered, 1);
        assert!(r.conserved());
    }

    #[test]
    fn anycast_beats_unicast_to_far_member() {
        // Unicast to node 4 must cross 4 hops; anycast absorbs at node 3
        // after 3 hops — strictly fewer sends per delivery.
        let mut any = router();
        let mut uni = crate::balancing::BalancingRouter::new(
            5,
            &[4],
            crate::balancing::BalancingConfig {
                threshold: 0.5,
                gamma: 0.0,
                capacity: 50,
            },
        );
        let e = edges();
        for _ in 0..400 {
            any.inject(0, 0);
            uni.inject(0, 4);
            any.step(&e);
            uni.step(&e);
        }
        let (ma, mu) = (any.metrics(), uni.metrics());
        assert!(ma.delivered >= mu.delivered);
        let hops_any = ma.sends as f64 / ma.delivered.max(1) as f64;
        let hops_uni = mu.sends as f64 / mu.delivered.max(1) as f64;
        assert!(
            hops_any < hops_uni,
            "anycast {hops_any} hops vs unicast {hops_uni}"
        );
    }

    #[test]
    fn multiple_groups_independent() {
        let mut r = AnycastRouter::new(5, &[vec![4], vec![0]], 0.0, 0.0, 50);
        let e = edges();
        for _ in 0..200 {
            r.inject(0, 0); // toward node 4
            r.inject(4, 1); // toward node 0
            r.step(&e);
        }
        let m = r.metrics();
        assert!(m.delivered > 100);
        assert!(r.conserved());
    }

    #[test]
    fn capacity_drops() {
        let mut r = AnycastRouter::new(3, &[vec![2]], 10.0, 0.0, 2);
        for _ in 0..5 {
            r.inject(0, 0);
        }
        let m = r.metrics();
        assert_eq!(m.injected, 2);
        assert_eq!(m.dropped, 3);
        assert!(r.conserved());
    }

    #[test]
    fn member_queries() {
        let r = router();
        assert_eq!(r.num_groups(), 1);
        assert_eq!(r.members(0), &[3, 4]);
    }
}
