//! Packet-level tracing variant of the balancing router.
//!
//! The height-based router treats packets as fungible (all the analysis
//! needs); for latency studies we additionally track packet identities:
//! each buffer is a FIFO queue of `(packet id, injection step)`, moves
//! pick the oldest packet, and deliveries record end-to-end latency.
//! Heights — and therefore every send decision — are identical to
//! [`crate::BalancingRouter`] by construction.

use crate::balancing::BalancingConfig;
use crate::types::{ActiveEdge, Send};
use std::collections::VecDeque;

/// Latency statistics over delivered packets.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencyStats {
    pub delivered: u64,
    pub mean: f64,
    pub p50: u64,
    pub p95: u64,
    pub max: u64,
}

/// Balancing router with per-packet FIFO queues and latency tracing.
#[derive(Debug, Clone)]
pub struct TracedRouter {
    cfg: BalancingConfig,
    dests: Vec<u32>,
    /// FIFO queue per (node, dest-column): (packet id, injected at step).
    queues: Vec<VecDeque<(u64, u64)>>,
    now: u64,
    next_packet: u64,
    injected: u64,
    dropped: u64,
    latencies: Vec<u64>,
}

impl TracedRouter {
    /// New traced router.
    pub fn new(num_nodes: usize, dests: &[u32], cfg: BalancingConfig) -> Self {
        TracedRouter {
            cfg,
            dests: dests.to_vec(),
            queues: vec![VecDeque::new(); num_nodes * dests.len()],
            now: 0,
            next_packet: 0,
            injected: 0,
            dropped: 0,
            latencies: Vec::new(),
        }
    }

    fn col_of(&self, d: u32) -> Option<usize> {
        self.dests.iter().position(|&x| x == d)
    }

    #[inline]
    fn idx(&self, v: u32, col: usize) -> usize {
        v as usize * self.dests.len() + col
    }

    fn height(&self, v: u32, d: u32) -> u32 {
        if v == d {
            return 0;
        }
        let col = self.col_of(d).expect("undeclared destination");
        self.queues[self.idx(v, col)].len() as u32
    }

    /// Inject a packet; returns its id, or `None` if dropped / instantly
    /// delivered at its own destination.
    pub fn inject(&mut self, v: u32, d: u32) -> Option<u64> {
        if v == d {
            self.injected += 1;
            self.latencies.push(0);
            return None;
        }
        let col = self.col_of(d).expect("undeclared destination");
        let i = self.idx(v, col);
        if self.queues[i].len() as u32 >= self.cfg.capacity {
            self.dropped += 1;
            return None;
        }
        let id = self.next_packet;
        self.next_packet += 1;
        self.injected += 1;
        self.queues[i].push_back((id, self.now));
        Some(id)
    }

    /// One balancing step (same decision rule as the fungible router).
    pub fn step(&mut self, active: &[ActiveEdge]) -> Vec<Send> {
        let mut sends: Vec<Send> = Vec::new();
        for e in active {
            for (from, to) in [(e.u, e.v), (e.v, e.u)] {
                let mut best: Option<(f64, u32)> = None;
                for &d in &self.dests {
                    let value = self.height(from, d) as f64
                        - self.height(to, d) as f64
                        - e.cost * self.cfg.gamma;
                    if value > self.cfg.threshold && best.is_none_or(|(bv, _)| value > bv) {
                        best = Some((value, d));
                    }
                }
                if let Some((_, dest)) = best {
                    sends.push(Send {
                        from,
                        to,
                        dest,
                        cost: e.cost,
                    });
                }
            }
        }
        for s in &sends {
            let col = self.col_of(s.dest).unwrap();
            let fi = self.idx(s.from, col);
            if self.queues[fi].is_empty() {
                continue;
            }
            if s.to == s.dest {
                let (_, t0) = self.queues[fi].pop_front().unwrap();
                self.latencies.push(self.now - t0);
            } else {
                let ti = self.idx(s.to, col);
                if self.queues[ti].len() as u32 >= self.cfg.capacity {
                    continue;
                }
                let pkt = self.queues[fi].pop_front().unwrap();
                self.queues[ti].push_back(pkt);
            }
        }
        self.now += 1;
        sends
    }

    /// Packets currently in flight.
    pub fn in_flight(&self) -> u64 {
        self.queues.iter().map(|q| q.len() as u64).sum()
    }

    /// Conservation: injected = delivered + in flight (drops never enter).
    pub fn conserved(&self) -> bool {
        self.injected == self.latencies.len() as u64 + self.in_flight()
    }

    /// Latency statistics over all deliveries so far.
    pub fn latency_stats(&self) -> LatencyStats {
        if self.latencies.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = self.latencies.clone();
        sorted.sort_unstable();
        let n = sorted.len();
        LatencyStats {
            delivered: n as u64,
            mean: sorted.iter().sum::<u64>() as f64 / n as f64,
            p50: sorted[n / 2],
            p95: sorted[(n * 95 / 100).min(n - 1)],
            max: *sorted.last().unwrap(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BalancingConfig {
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.0,
            capacity: 50,
        }
    }

    fn chain() -> Vec<ActiveEdge> {
        vec![
            ActiveEdge::new(0, 1, 0.1),
            ActiveEdge::new(1, 2, 0.1),
            ActiveEdge::new(2, 3, 0.1),
        ]
    }

    #[test]
    fn latency_reflects_path_length() {
        let mut r = TracedRouter::new(4, &[3], cfg());
        let e = chain();
        for s in 0..400 {
            if s % 2 == 0 {
                r.inject(0, 3);
            }
            r.step(&e);
        }
        let stats = r.latency_stats();
        assert!(stats.delivered > 50);
        // 3 hops minimum, plus queueing.
        assert!(stats.p50 >= 3, "p50 {} below hop count", stats.p50);
        assert!(stats.p95 >= stats.p50);
        assert!(stats.max >= stats.p95);
        assert!(stats.mean >= 3.0);
        assert!(r.conserved());
    }

    #[test]
    fn fifo_order_within_buffer() {
        // Two packets injected in order must deliver in order (single
        // path, single destination ⇒ FIFO end-to-end).
        let mut r = TracedRouter::new(2, &[1], cfg());
        let e = [ActiveEdge::new(0, 1, 0.0)];
        let id0 = r.inject(0, 1).unwrap();
        let id1 = r.inject(0, 1).unwrap();
        assert!(id0 < id1);
        r.step(&e);
        r.step(&e);
        let stats = r.latency_stats();
        assert_eq!(stats.delivered, 2);
        // first packet waited 0 steps, second 1 step
        assert_eq!(stats.max, 1);
        assert!((stats.mean - 0.5).abs() < 1e-12);
    }

    #[test]
    fn same_decisions_as_fungible_router() {
        use crate::balancing::BalancingRouter;
        let mut traced = TracedRouter::new(4, &[3], cfg());
        let mut fungible = BalancingRouter::new(4, &[3], cfg());
        let e = chain();
        for s in 0..300 {
            if s % 3 == 0 {
                traced.inject(0, 3);
                fungible.inject(0, 3);
            }
            let st = traced.step(&e);
            let sf = fungible.step(&e);
            assert_eq!(st, sf, "step {s}: decisions diverged");
        }
        assert_eq!(
            traced.latency_stats().delivered,
            fungible.metrics().delivered
        );
    }

    #[test]
    fn drops_and_instant_delivery() {
        let mut r = TracedRouter::new(
            2,
            &[1],
            BalancingConfig {
                threshold: 0.0,
                gamma: 0.0,
                capacity: 1,
            },
        );
        assert!(r.inject(0, 1).is_some());
        assert!(r.inject(0, 1).is_none()); // dropped, full
        assert!(r.inject(1, 1).is_none()); // instant delivery
        assert_eq!(r.latency_stats().delivered, 1);
        assert!(r.conserved());
    }

    #[test]
    fn empty_stats() {
        let r = TracedRouter::new(2, &[1], cfg());
        assert_eq!(r.latency_stats(), LatencyStats::default());
        assert!(r.conserved());
    }
}
