//! E4 bench (Lemma 2.10): interference-set construction and interference
//! number on 𝒩 and on G*, swept over n. Table rows: `report -- e4`.

use adhoc_bench::uniform_points;
use adhoc_core::ThetaAlg;
use adhoc_interference::{interference_number, interference_sets, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_interference");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    let model = InterferenceModel::new(0.5);
    for n in [100usize, 400, 1600] {
        let points = uniform_points(n, 11);
        let range = adhoc_geom::default_max_range(n);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        g.bench_with_input(BenchmarkId::new("sets_on_theta", n), &n, |b, _| {
            b.iter(|| black_box(interference_sets(&topo.spatial, model)));
        });
        g.bench_with_input(BenchmarkId::new("number_on_theta", n), &n, |b, _| {
            b.iter(|| black_box(interference_number(&topo.spatial, model)));
        });
    }
    // G* comparison at a smaller size (quadratically more edges).
    for n in [100usize, 400] {
        let points = uniform_points(n, 11);
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        g.bench_with_input(BenchmarkId::new("sets_on_gstar", n), &n, |b, _| {
            b.iter(|| black_box(interference_sets(&gstar, model)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
