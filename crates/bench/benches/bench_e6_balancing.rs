//! E6 bench (Theorem 3.1): OPT-by-construction schedule building and the
//! (T,γ)-balancing replay, plus the greedy baseline under the same
//! adversary. Table rows: `report -- e6`.

use adhoc_bench::uniform_points;
use adhoc_proximity::unit_disk_graph;
use adhoc_routing::{BalancingConfig, BalancingRouter, GreedyRouter};
use adhoc_sim::runner::{run_balancing_on_schedule, run_greedy_on_schedule};
use adhoc_sim::workloads::Workload;
use adhoc_sim::{build_schedule_hops, Schedule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn make_schedule(n: usize, volume: usize) -> (adhoc_proximity::SpatialGraph, Schedule) {
    let points = uniform_points(n, 17);
    let sg = unit_disk_graph(&points, 0.5);
    let mut rng = ChaCha8Rng::seed_from_u64(19);
    let flows = Workload::RandomPairs.pairs(n, 6, &mut rng);
    let mut pairs = Vec::new();
    for _ in 0..volume {
        pairs.extend(flows.iter().copied());
    }
    let schedule = build_schedule_hops(&sg, &pairs);
    (sg, schedule)
}

fn dests_of(schedule: &Schedule) -> Vec<u32> {
    let mut d: Vec<u32> = schedule
        .injections
        .iter()
        .flat_map(|v| v.iter().map(|&(_, d)| d))
        .collect();
    d.sort_unstable();
    d.dedup();
    d
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_balancing");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for volume in [40usize, 160] {
        let (sg, schedule) = make_schedule(60, volume);
        let dests = dests_of(&schedule);
        g.bench_with_input(
            BenchmarkId::new("build_schedule", volume),
            &volume,
            |b, &v| {
                let points = uniform_points(60, 17);
                let sg2 = unit_disk_graph(&points, 0.5);
                let mut rng = ChaCha8Rng::seed_from_u64(19);
                let flows = Workload::RandomPairs.pairs(60, 6, &mut rng);
                let mut pairs = Vec::new();
                for _ in 0..v {
                    pairs.extend(flows.iter().copied());
                }
                b.iter(|| black_box(build_schedule_hops(&sg2, &pairs)));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("balancing_replay", volume),
            &volume,
            |b, _| {
                b.iter(|| {
                    let mut cfg = BalancingConfig::from_theorem_3_1(
                        1,
                        1,
                        schedule.l_bar().max(1.0),
                        schedule.c_bar().max(1e-6),
                        0.25,
                    );
                    cfg.capacity = cfg.capacity.max(volume as u32);
                    let mut router = BalancingRouter::new(sg.len(), &dests, cfg);
                    black_box(run_balancing_on_schedule(&mut router, &schedule, 10))
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("greedy_replay", volume),
            &volume,
            |b, _| {
                b.iter(|| {
                    let mut router = GreedyRouter::new(&sg.hop_graph(), &dests, 200);
                    black_box(run_greedy_on_schedule(&mut router, &schedule, 10))
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
