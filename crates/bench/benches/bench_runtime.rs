//! Runtime bench (E20): the hardened ΘALG protocol and gossip-balancing
//! over lossy links, at increasing loss rates — the cost of fault
//! tolerance in retransmissions per run. Table rows: `report -- e20`.

use adhoc_bench::uniform_points;
use adhoc_core::ThetaAlg;
use adhoc_routing::BalancingConfig;
use adhoc_runtime::{
    run_gossip_balancing, run_theta_churn, run_theta_protocol, run_theta_protocol_sharded,
    uniform_workload, ChurnPlan, FaultConfig, GossipConfig, ReliableConfig, ThetaTiming,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::FRAC_PI_3;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("runtime_faults");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);

    let n = 120;
    let points = uniform_points(n, 23);
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(FRAC_PI_3, range);

    for loss in [0.0f64, 0.1, 0.2] {
        g.bench_with_input(
            BenchmarkId::new("theta_protocol", format!("loss={loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    black_box(run_theta_protocol(
                        &points,
                        alg.sectors(),
                        range,
                        ThetaTiming::default(),
                        FaultConfig::lossy(loss),
                        7,
                    ))
                });
            },
        );
    }

    let topo = alg.build(&points);
    let dests = [0u32];
    let steps = 500u64;
    let workload = uniform_workload(n, &dests, steps, 2, 31);
    let cfg = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        steps,
    );
    for loss in [0.0f64, 0.2] {
        g.bench_with_input(
            BenchmarkId::new("gossip_balancing", format!("loss={loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    black_box(run_gossip_balancing(
                        &topo.spatial,
                        &dests,
                        cfg,
                        &workload,
                        FaultConfig::lossy(loss),
                        7,
                    ))
                });
            },
        );
        // Same runs with packet traffic on the reliable sublayer: the
        // marginal cost of windows, acks, and retransmit timers.
        g.bench_with_input(
            BenchmarkId::new("gossip_balancing_reliable", format!("loss={loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    black_box(run_gossip_balancing(
                        &topo.spatial,
                        &dests,
                        cfg.with_reliability(ReliableConfig::default()),
                        &workload,
                        FaultConfig::lossy(loss),
                        7,
                    ))
                });
            },
        );
    }
    // The churn engine's overhead on the same geometry: a seeded mixed
    // plan (joins, leaves, crashes, drift) through the ΘALG protocol,
    // including every local re-convergence it triggers. Compare with the
    // static theta_protocol arms above. Table rows: `report -- e21`.
    let spares = n / 10;
    let plan = ChurnPlan::random(n - spares, spares, 1.0, 2_000, 12, 29);
    for loss in [0.0f64, 0.1] {
        g.bench_with_input(
            BenchmarkId::new("theta_churn", format!("loss={loss}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    black_box(run_theta_churn(
                        &points,
                        alg.sectors(),
                        range,
                        ThetaTiming::default(),
                        FaultConfig::lossy(loss),
                        7,
                        &plan,
                        1,
                    ))
                });
            },
        );
    }
    g.finish();

    // Sharded executor scaling: the same ΘALG run at a size where the
    // event loop dominates, sequential vs run_sharded at increasing
    // worker counts. Digest parity is asserted inside the harness, so
    // this doubles as a stress test. (On a single-core host the sharded
    // arms measure coordination overhead, not speedup.)
    let mut g = c.benchmark_group("runtime_sharded");
    g.measurement_time(std::time::Duration::from_secs(3));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);

    let n = 1000;
    let points = uniform_points(n, 23);
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(FRAC_PI_3, range);
    let faults = FaultConfig::lossy(0.1);
    let baseline = run_theta_protocol(
        &points,
        alg.sectors(),
        range,
        ThetaTiming::default(),
        faults,
        7,
    );
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("theta_protocol_n1000", format!("threads={threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let run = run_theta_protocol_sharded(
                        &points,
                        alg.sectors(),
                        range,
                        ThetaTiming::default(),
                        faults,
                        7,
                        threads,
                    );
                    assert_eq!(run.digest, baseline.digest, "parity at {threads} threads");
                    black_box(run)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
