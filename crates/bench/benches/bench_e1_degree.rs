//! E1 bench (Lemma 2.1): ΘALG construction + degree/connectivity
//! verification, swept over n and θ. Regenerates the E1 table rows via
//! `cargo run -p adhoc-sim --bin report -- e1`; this bench times the
//! kernels.

use adhoc_bench::uniform_points;
use adhoc_core::{verify_lemma_2_1, ThetaAlg};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_degree");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for n in [100usize, 400, 1600] {
        let points = uniform_points(n, 1);
        let range = adhoc_geom::default_max_range(n);
        g.bench_with_input(BenchmarkId::new("theta_build", n), &n, |b, _| {
            let alg = ThetaAlg::new(PI / 3.0, range);
            b.iter(|| black_box(alg.build(&points)));
        });
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        g.bench_with_input(BenchmarkId::new("verify_lemma_2_1", n), &n, |b, _| {
            b.iter(|| {
                let rep = verify_lemma_2_1(black_box(&topo));
                assert!(rep.holds());
                black_box(rep)
            });
        });
    }
    // θ sweep at fixed n: smaller θ ⇒ more sectors.
    let points = uniform_points(400, 2);
    let range = adhoc_geom::default_max_range(400);
    for (label, theta) in [("pi_3", PI / 3.0), ("pi_6", PI / 6.0), ("pi_9", PI / 9.0)] {
        g.bench_function(BenchmarkId::new("theta_build_angle", label), |b| {
            let alg = ThetaAlg::new(theta, range);
            b.iter(|| black_box(alg.build(&points)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
