//! E9 bench (Lemmas 3.6/3.7, Theorem 3.8): honeycomb contest rounds and
//! full router steps on grid deployments. Table rows: `report -- e9`.

use adhoc_geom::{HexCoord, Point};
use adhoc_interference::hexmac::{Candidate, HoneycombMac};
use adhoc_interference::model::Transmission;
use adhoc_routing::{HoneycombConfig, HoneycombRouter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_honeycomb");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);

    // Contest round over a dense candidate field.
    let mac = HoneycombMac::with_paper_pt(0.5, 0.0);
    let grid = mac.grid();
    let mut positions = Vec::new();
    let mut candidates = Vec::new();
    for q in -5..=5 {
        for r in -5..=5 {
            let center = grid.center(HexCoord::new(q, r));
            for k in 0..4 {
                let s = positions.len() as u32;
                positions.push(Point::new(center.x + 0.2 * k as f64, center.y));
                positions.push(Point::new(center.x + 0.2 * k as f64 + 0.9, center.y));
                candidates.push(Candidate {
                    link: Transmission::new(s, s + 1),
                    benefit: 1.0 + k as f64,
                });
            }
        }
    }
    g.bench_function("contest_484_candidates", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(47);
        b.iter(|| black_box(mac.contest(&positions, &candidates, &mut rng)));
    });

    // Full honeycomb router step on grids.
    for side in [8usize, 16] {
        let mut grid_positions = Vec::new();
        for i in 0..side {
            for j in 0..side {
                grid_positions.push(Point::new(0.8 * i as f64, 0.8 * j as f64));
            }
        }
        let n = grid_positions.len();
        g.bench_with_input(BenchmarkId::new("router_step", side), &side, |b, _| {
            let mut router = HoneycombRouter::new(
                &grid_positions,
                &[0],
                HoneycombConfig {
                    threshold: 0.5,
                    capacity: 10,
                    delta: 0.5,
                    p_t: 1.0 / 6.0,
                },
            );
            let mut rng = ChaCha8Rng::seed_from_u64(53);
            let mut s = 0u32;
            b.iter(|| {
                router.inject(1 + (s % (n as u32 - 1)), 0);
                s += 1;
                black_box(router.step(&mut rng))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
