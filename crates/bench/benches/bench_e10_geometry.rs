//! E10 bench (Lemmas 2.3–2.6, Fig. 5): throughput of the geometric lemma
//! checkers and the hexagon assignment kernel. Table rows:
//! `report -- e10`.

use adhoc_geom::lemmas::{lemma_2_3, lemma_2_3_c_min, lemma_2_4, lemma_2_5, lemma_2_6};
use adhoc_geom::{HexGrid, Point};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_geometry");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));

    g.bench_function("lemma_2_3_check", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(59);
        b.iter(|| {
            let gamma: f64 = rng.gen_range(0.001..1.0);
            let a = Point::new(1.0, 0.0);
            let bb = Point::new(2.0 * gamma.cos(), 2.0 * gamma.sin());
            black_box(lemma_2_3(
                a,
                bb,
                Point::new(0.0, 0.0),
                lemma_2_3_c_min(gamma) * 1.5,
            ))
        });
    });

    g.bench_function("lemma_2_4_check", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(61);
        b.iter(|| {
            let alpha: f64 = rng.gen_range(0.001..0.5);
            let a = Point::new(0.0, 0.0);
            let bb = Point::new(2.0, 0.0);
            let cc = Point::new(1.8 * alpha.cos(), 1.8 * alpha.sin());
            black_box(lemma_2_4(a, bb, cc))
        });
    });

    g.bench_function("lemma_2_5_check_chain8", |b| {
        let chain: Vec<Point> = (0..8)
            .map(|i| {
                let r = 0.9f64.powi(i);
                let ang = i as f64 * 0.05;
                Point::new(r * ang.cos(), r * ang.sin())
            })
            .collect();
        b.iter(|| black_box(lemma_2_5(Point::new(0.0, 0.0), &chain, 0.3)));
    });

    g.bench_function("lemma_2_6_check", |b| {
        let a = Point::new(0.0, 0.0);
        let bb = Point::new(2.0, 0.0);
        let cc = Point::new(1.99 * 0.15f64.cos(), 1.99 * 0.15f64.sin());
        b.iter(|| black_box(lemma_2_6(a, bb, cc)));
    });

    g.bench_function("hex_assignment", |b| {
        let grid = HexGrid::for_guard_zone(0.5);
        let mut rng = ChaCha8Rng::seed_from_u64(67);
        b.iter(|| {
            let p = Point::new(rng.gen_range(-100.0..100.0), rng.gen_range(-100.0..100.0));
            black_box(grid.hex_of(p))
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
