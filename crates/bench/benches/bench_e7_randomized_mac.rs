//! E7 bench (Lemma 3.2 / Theorem 3.3): randomized-MAC construction,
//! per-step sampling, conflict detection, and full (T,γ,I) steps.
//! Table rows: `report -- e7`.

use adhoc_bench::uniform_points;
use adhoc_core::ThetaAlg;
use adhoc_interference::{ActivationRule, InterferenceModel, RandomizedMac};
use adhoc_routing::{BalancingConfig, InterferenceRouter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_randomized_mac");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for n in [200usize, 800] {
        let points = uniform_points(n, 23);
        let range = adhoc_geom::default_max_range(n);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);

        g.bench_with_input(BenchmarkId::new("mac_build", n), &n, |b, _| {
            b.iter(|| {
                black_box(RandomizedMac::new(
                    &topo.spatial,
                    InterferenceModel::new(0.5),
                    ActivationRule::Local,
                ))
            });
        });

        let mac = RandomizedMac::new(
            &topo.spatial,
            InterferenceModel::new(0.5),
            ActivationRule::Local,
        );
        g.bench_with_input(BenchmarkId::new("sample_and_resolve", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(29);
            b.iter(|| {
                let active = mac.sample_active(&mut rng);
                black_box(mac.conflict_free(&active))
            });
        });

        g.bench_with_input(BenchmarkId::new("tgi_step", n), &n, |b, _| {
            let mut router = InterferenceRouter::new(
                &topo.spatial,
                &[0],
                BalancingConfig {
                    threshold: 0.5,
                    gamma: 0.1,
                    capacity: 50,
                },
                InterferenceModel::new(0.5),
                ActivationRule::Local,
                2.0,
            );
            let mut rng = ChaCha8Rng::seed_from_u64(31);
            let mut s = 0u32;
            b.iter(|| {
                router.inject(1 + (s % (n as u32 - 1)), 0);
                s += 1;
                black_box(router.step(&mut rng))
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
