//! E3 bench (Theorem 2.7): distance-stretch on civilized λ-precision
//! point sets, including the λ-precision sampler itself. Table rows:
//! `report -- e3`.

use adhoc_bench::civilized_points;
use adhoc_core::stretch::sampled_distance_stretch;
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_proximity::unit_disk_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_distance_stretch");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);

    g.bench_function("civilized_sampler_300", |b| {
        b.iter(|| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            black_box(
                NodeDistribution::Civilized { lambda: 0.035 }
                    .sample(300, &mut rng)
                    .unwrap(),
            )
        });
    });

    for (n, lambda) in [(150usize, 0.05f64), (300, 0.035)] {
        let points = civilized_points(n, lambda, 5);
        let range = (8.0 * lambda).min(0.45);
        let gstar = unit_disk_graph(&points, range);
        let sources: Vec<u32> = (0..n as u32).step_by(4).collect();
        for (label, theta) in [("pi_3", PI / 3.0), ("pi_6", PI / 6.0)] {
            let topo = ThetaAlg::new(theta, range).build(&points);
            g.bench_function(
                BenchmarkId::new(format!("distance_stretch_{label}"), n),
                |b| {
                    b.iter(|| black_box(sampled_distance_stretch(&topo.spatial, &gstar, &sources)));
                },
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
