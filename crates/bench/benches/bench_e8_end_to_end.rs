//! E8 bench (Corollaries 3.4/3.5): the full stack — ΘALG build, schedule
//! on G*, and a fixed budget of (T,γ,I) steps draining it. Table rows:
//! `report -- e8`.

use adhoc_bench::uniform_points;
use adhoc_core::ThetaAlg;
use adhoc_interference::{ActivationRule, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use adhoc_routing::{BalancingConfig, InterferenceRouter};
use adhoc_sim::build_schedule;
use adhoc_sim::workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_end_to_end");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for n in [60usize, 240] {
        let points = uniform_points(n, 37);
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let pairs = Workload::RandomPairs.pairs(n, n, &mut rng);
        let schedule = build_schedule(&gstar, 2.0, &pairs);
        let mut dests: Vec<u32> = schedule
            .injections
            .iter()
            .flat_map(|v| v.iter().map(|&(_, d)| d))
            .collect();
        dests.sort_unstable();
        dests.dedup();

        g.bench_with_input(BenchmarkId::new("full_stack_1000_steps", n), &n, |b, _| {
            b.iter(|| {
                let mut ir = InterferenceRouter::new(
                    &topo.spatial,
                    &dests,
                    BalancingConfig {
                        threshold: 0.5,
                        gamma: 0.05,
                        capacity: 60,
                    },
                    InterferenceModel::new(0.5),
                    ActivationRule::Local,
                    2.0,
                );
                for &(src, dest) in schedule.injections.iter().flatten() {
                    ir.inject(src, dest);
                }
                let mut proto = ChaCha8Rng::seed_from_u64(43);
                for _ in 0..1000 {
                    ir.step(&mut proto);
                }
                black_box(ir.metrics())
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
