//! Benches for the extension subsystems: Delaunay construction,
//! β-skeletons, global spanner comparators, TDMA coloring, min-cut
//! ceilings, SINR batches, and the stale/anycast/traced router variants.

use adhoc_bench::uniform_points;
use adhoc_core::{greedy_spanner, ThetaAlg};
use adhoc_graph::multi_source_min_cut;
use adhoc_interference::model::Transmission;
use adhoc_interference::{tdma_schedule, InterferenceModel, PowerPolicy, SinrModel};
use adhoc_proximity::{beta_skeleton, delaunay_graph, unit_disk_graph};
use adhoc_routing::{
    ActiveEdge, AnycastRouter, BalancingConfig, GeoGreedyRouter, StaleBalancingRouter, TracedRouter,
};
use adhoc_sim::emulation::emulate_on_theta;
use adhoc_sim::workloads::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);

    for n in [100usize, 400] {
        let points = uniform_points(n, 201);
        g.bench_with_input(BenchmarkId::new("delaunay_build", n), &n, |b, _| {
            b.iter(|| black_box(delaunay_graph(&points)));
        });
        g.bench_with_input(BenchmarkId::new("beta_skeleton_1_5", n), &n, |b, _| {
            b.iter(|| black_box(beta_skeleton(&points, 1.5, 10.0)));
        });
    }

    {
        let points = uniform_points(60, 203);
        let gstar = unit_disk_graph(&points, 10.0);
        g.bench_function("greedy_spanner_60n", |b| {
            b.iter(|| black_box(greedy_spanner(&gstar, 2.0)));
        });
    }

    for n in [200usize, 800] {
        let points = uniform_points(n, 205);
        let range = adhoc_geom::default_max_range(n);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        g.bench_with_input(BenchmarkId::new("tdma_coloring", n), &n, |b, _| {
            b.iter(|| black_box(tdma_schedule(&topo.spatial, InterferenceModel::new(0.5))));
        });
        g.bench_with_input(BenchmarkId::new("min_cut_ceiling", n), &n, |b, _| {
            let sources: Vec<u32> = (1..n as u32).collect();
            b.iter(|| {
                black_box(multi_source_min_cut(
                    n,
                    topo.spatial.graph.edges().map(|(u, v, _)| (u, v, 1.0)),
                    &sources,
                    0,
                ))
            });
        });
    }

    {
        let points = uniform_points(150, 207);
        let range = adhoc_geom::default_max_range(150);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        let edges: Vec<Transmission> = topo
            .spatial
            .graph
            .edges()
            .map(|(u, v, _)| Transmission::new(u, v))
            .collect();
        let sinr = SinrModel {
            kappa: 3.0,
            beta: 1.2,
            noise: 1e-7,
            power: PowerPolicy::MinimumPlusMargin(4.0),
        };
        g.bench_function("sinr_batch_of_5", |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(209);
            b.iter(|| {
                let batch: Vec<Transmission> = (0..5)
                    .map(|_| edges[rng.gen_range(0..edges.len())])
                    .collect();
                black_box(sinr.successful(&topo.spatial.points, &batch))
            });
        });
    }

    // Router-variant step throughput on a common topology.
    {
        let n = 200usize;
        let points = uniform_points(n, 211);
        let sg = unit_disk_graph(&points, adhoc_geom::default_max_range(n));
        let edges: Vec<ActiveEdge> = sg
            .graph
            .edges()
            .map(|(u, v, w)| ActiveEdge::new(u, v, w * w))
            .collect();
        let cfg = BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 50,
        };

        g.bench_function("stale_router_step_p8", |b| {
            let mut router = StaleBalancingRouter::new(n, &[0], cfg, 8);
            let mut s = 0u32;
            b.iter(|| {
                router.inject(1 + (s % (n as u32 - 1)), 0);
                s += 1;
                black_box(router.step(&edges))
            });
        });

        g.bench_function("anycast_router_step", |b| {
            let mut router = AnycastRouter::new(n, &[vec![0, 1, 2, 3]], 0.5, 0.1, 50);
            let mut s = 0u32;
            b.iter(|| {
                router.inject(4 + (s % (n as u32 - 4)), 0);
                s += 1;
                black_box(router.step(&edges))
            });
        });

        g.bench_function("traced_router_step", |b| {
            let mut router = TracedRouter::new(n, &[0], cfg);
            let mut s = 0u32;
            b.iter(|| {
                router.inject(1 + (s % (n as u32 - 1)), 0);
                s += 1;
                black_box(router.step(&edges))
            });
        });
    }

    // Theorem 2.8 emulation pipeline.
    {
        let n = 100usize;
        let points = uniform_points(n, 213);
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        let mut rng = ChaCha8Rng::seed_from_u64(215);
        let pairs = Workload::RandomPairs.pairs(n, n / 2, &mut rng);
        let schedule = adhoc_sim::build_schedule(&gstar, 2.0, &pairs);
        g.bench_function("emulate_schedule_100n", |b| {
            b.iter(|| {
                black_box(emulate_on_theta(
                    &topo,
                    &schedule,
                    InterferenceModel::new(0.5),
                ))
            });
        });
    }

    // Geographic greedy step.
    {
        let n = 200usize;
        let points = uniform_points(n, 217);
        let sg = unit_disk_graph(&points, adhoc_geom::default_max_range(n));
        let edges: Vec<ActiveEdge> = sg
            .graph
            .edges()
            .map(|(u, v, w)| ActiveEdge::new(u, v, w))
            .collect();
        g.bench_function("geo_greedy_step", |b| {
            let mut router = GeoGreedyRouter::new(&points, &[0], 20, 10);
            let mut s = 0u32;
            b.iter(|| {
                router.inject(1 + (s % (n as u32 - 1)), 0);
                s += 1;
                router.step(&edges);
                black_box(router.metrics())
            });
        });
    }

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
