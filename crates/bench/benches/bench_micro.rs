//! Micro-benchmarks of the hot kernels beneath every experiment:
//! spatial-grid construction and queries, UDG construction, Dijkstra,
//! balancing decision steps, and the Yao phase-1 scan.

use adhoc_bench::uniform_points;
use adhoc_geom::{GridIndex, SectorPartition};
use adhoc_graph::dijkstra;
use adhoc_proximity::unit_disk_graph;
use adhoc_proximity::yao::yao_out_neighbors;
use adhoc_routing::{ActiveEdge, BalancingConfig, BalancingRouter};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(20);

    for n in [1000usize, 10_000] {
        let points = uniform_points(n, 71);
        let range = adhoc_geom::default_max_range(n);

        g.bench_with_input(BenchmarkId::new("grid_build", n), &n, |b, _| {
            b.iter(|| black_box(GridIndex::build(&points, range)));
        });

        let grid = GridIndex::build(&points, range);
        g.bench_with_input(BenchmarkId::new("grid_query", n), &n, |b, _| {
            let mut rng = ChaCha8Rng::seed_from_u64(73);
            b.iter(|| {
                let q = points[rng.gen_range(0..n)];
                let mut count = 0u32;
                grid.for_each_within(q, range, |_| count += 1);
                black_box(count)
            });
        });

        g.bench_with_input(BenchmarkId::new("udg_build", n), &n, |b, _| {
            b.iter(|| black_box(unit_disk_graph(&points, range)));
        });

        g.bench_with_input(BenchmarkId::new("yao_phase1", n), &n, |b, _| {
            let sectors = SectorPartition::with_max_angle(PI / 3.0);
            b.iter(|| black_box(yao_out_neighbors(&points, sectors, range)));
        });

        let udg = unit_disk_graph(&points, range);
        g.bench_with_input(BenchmarkId::new("dijkstra", n), &n, |b, _| {
            b.iter(|| black_box(dijkstra(&udg.graph, 0)));
        });
    }

    // Balancing step throughput on a loaded router.
    let n = 500usize;
    let points = uniform_points(n, 79);
    let sg = unit_disk_graph(&points, adhoc_geom::default_max_range(n));
    let edges: Vec<ActiveEdge> = sg
        .graph
        .edges()
        .map(|(u, v, w)| ActiveEdge::new(u, v, w * w))
        .collect();
    let dests: Vec<u32> = (0..8).collect();
    let mut router = BalancingRouter::new(
        n,
        &dests,
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 100,
        },
    );
    let mut rng = ChaCha8Rng::seed_from_u64(83);
    for _ in 0..2000 {
        router.inject(rng.gen_range(8..n as u32), rng.gen_range(0..8));
    }
    g.bench_function("balancing_step_500n", |b| {
        b.iter(|| black_box(router.step(&edges)));
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
