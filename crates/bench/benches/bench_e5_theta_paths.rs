//! E5 bench (Lemma 2.9 / Theorem 2.8): θ-path replacement of single
//! edges and of whole maximal matchings, with the congestion counter.
//! Table rows: `report -- e5`.

use adhoc_bench::uniform_points;
use adhoc_core::{replace_edge, theta_path_congestion, ThetaAlg};
use adhoc_proximity::unit_disk_graph;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_theta_paths");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for n in [200usize, 800] {
        let points = uniform_points(n, 13);
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        let edges: Vec<(u32, u32)> = gstar.graph.edges().map(|(u, v, _)| (u, v)).collect();

        g.bench_with_input(BenchmarkId::new("replace_one_edge", n), &n, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                let (u, v) = edges[i % edges.len()];
                i += 1;
                black_box(replace_edge(&topo, u, v).unwrap())
            });
        });

        // Maximal matching as the non-interfering set.
        let mut used = vec![false; n];
        let mut matching = Vec::new();
        for &(u, v) in &edges {
            if !used[u as usize] && !used[v as usize] {
                used[u as usize] = true;
                used[v as usize] = true;
                matching.push((u, v));
            }
        }
        g.bench_with_input(
            BenchmarkId::new("congestion_over_matching", n),
            &n,
            |b, _| {
                b.iter(|| black_box(theta_path_congestion(&topo, &matching).unwrap()));
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
