//! E2 bench (Theorem 2.2): energy-stretch computation of 𝒩 vs G*,
//! exact (rayon all-pairs) and sampled, plus the Gabriel baseline
//! construction. Table rows: `report -- e2`.

use adhoc_bench::uniform_points;
use adhoc_core::stretch::sampled_energy_stretch;
use adhoc_core::{energy_stretch, ThetaAlg};
use adhoc_proximity::{gabriel_graph, unit_disk_graph};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::f64::consts::PI;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_energy_stretch");
    g.measurement_time(std::time::Duration::from_secs(2));
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.sample_size(10);
    for n in [100usize, 300] {
        let points = uniform_points(n, 3);
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        g.bench_with_input(BenchmarkId::new("exact_all_pairs", n), &n, |b, _| {
            b.iter(|| black_box(energy_stretch(&topo.spatial, &gstar, 2.0)));
        });
        let sources: Vec<u32> = (0..n as u32).step_by(8).collect();
        g.bench_with_input(BenchmarkId::new("sampled", n), &n, |b, _| {
            b.iter(|| black_box(sampled_energy_stretch(&topo.spatial, &gstar, 2.0, &sources)));
        });
        g.bench_with_input(BenchmarkId::new("gabriel_baseline", n), &n, |b, _| {
            b.iter(|| black_box(gabriel_graph(&points, range)));
        });
        // κ sweep
        for kappa in [2.0f64, 4.0] {
            g.bench_function(BenchmarkId::new(format!("sampled_kappa_{kappa}"), n), |b| {
                b.iter(|| {
                    black_box(sampled_energy_stretch(
                        &topo.spatial,
                        &gstar,
                        kappa,
                        &sources,
                    ))
                });
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().without_plots();
    targets = bench
}
criterion_main!(benches);
