//! Shared fixtures for the benchmark harness.

use adhoc_geom::distributions::NodeDistribution;
use adhoc_geom::Point;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Deterministic uniform points in the unit square.
pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling")
}

/// Deterministic civilized (λ-precision) points.
pub fn civilized_points(n: usize, lambda: f64, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    NodeDistribution::Civilized { lambda }
        .sample(n, &mut rng)
        .expect("sampling")
}

/// The standard sizes the experiment benches sweep.
pub const SIZES: [usize; 3] = [100, 400, 1600];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_deterministic() {
        assert_eq!(uniform_points(50, 1), uniform_points(50, 1));
        assert_eq!(civilized_points(50, 0.04, 1), civilized_points(50, 0.04, 1));
    }
}
