//! Non-local spanner constructions — the comparators ΘALG replaces.
//!
//! §2.1 of the paper: *"One can construct a constant-degree subgraph of
//! `𝒩₁` by processing the edges in order of decreasing length, and
//! eliminating edges that do not decrease the distance between endpoints
//! by more than a constant-factor [Wattenhofer et al.]. Such a
//! postprocessing step, however, takes communication time proportional to
//! the diameter of the network."*
//!
//! This module implements both classical global constructions so the
//! experiment suite can quantify the trade: they achieve similar stretch
//! and degree to ΘALG, but each edge decision requires a **global**
//! shortest-path query ([`GlobalWork`] counts them), whereas ΘALG uses
//! three rounds of single-hop broadcasts.
//!
//! * [`prune_spanner`] — the decreasing-length elimination pass over an
//!   existing graph (e.g. the Yao graph `𝒩₁`).
//! * [`greedy_spanner`] — the textbook increasing-length greedy spanner
//!   over all candidate edges.

use adhoc_graph::{dijkstra_path, GraphBuilder};
use adhoc_proximity::SpatialGraph;

/// Accounting for the non-locality of a global construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GlobalWork {
    /// Global shortest-path queries performed (each needs network-wide
    /// communication when distributed).
    pub shortest_path_queries: usize,
    /// Edges examined.
    pub edges_processed: usize,
}

/// Wattenhofer-style pruning: process edges of `sg` in **decreasing**
/// length; drop an edge if the remaining graph still connects its
/// endpoints within `t ×` its length.
///
/// Unlike [`greedy_spanner`], detours justified here may themselves lose
/// edges later (shorter edges are examined afterwards), so the
/// *composed* end-to-end stretch can exceed `t` — this is precisely why
/// the construction of Wattenhofer et al. needs additional angular
/// conditions to certify a constant. Empirically the composed stretch
/// stays a small constant, which the E-suite measures.
///
/// # Panics
/// Panics unless `t ≥ 1`.
pub fn prune_spanner(sg: &SpatialGraph, t: f64) -> (SpatialGraph, GlobalWork) {
    assert!(t >= 1.0, "stretch target must be ≥ 1, got {t}");
    let mut work = GlobalWork::default();
    let mut edges: Vec<(u32, u32, f64)> = sg.graph.edges().collect();
    // decreasing length
    edges.sort_unstable_by(|a, b| b.2.partial_cmp(&a.2).expect("finite weights"));
    let mut keep: Vec<bool> = vec![true; edges.len()];
    for i in 0..edges.len() {
        let (u, v, w) = edges[i];
        work.edges_processed += 1;
        // Current graph without edge i.
        let mut b = GraphBuilder::new(sg.len());
        for (j, &(a, c, len)) in edges.iter().enumerate() {
            if j != i && keep[j] {
                b.add_edge(a, c, len);
            }
        }
        let g = b.build();
        work.shortest_path_queries += 1;
        if let Some((d, _)) = dijkstra_path(&g, u, v) {
            if d <= t * w {
                keep[i] = false; // redundant: detour within factor t exists
            }
        }
    }
    let mut b = GraphBuilder::new(sg.len());
    for (j, &(u, v, w)) in edges.iter().enumerate() {
        if keep[j] {
            b.add_edge(u, v, w);
        }
    }
    (
        SpatialGraph::new(sg.points.clone(), b.build(), sg.max_range),
        work,
    )
}

/// Textbook greedy `t`-spanner over the edges of `sg` (usually `G*`):
/// process edges in **increasing** length, adding an edge only if the
/// spanner so far does not already connect its endpoints within `t ×` its
/// length.
///
/// # Panics
/// Panics unless `t ≥ 1`.
pub fn greedy_spanner(sg: &SpatialGraph, t: f64) -> (SpatialGraph, GlobalWork) {
    assert!(t >= 1.0, "stretch target must be ≥ 1, got {t}");
    let mut work = GlobalWork::default();
    let mut edges: Vec<(u32, u32, f64)> = sg.graph.edges().collect();
    edges.sort_unstable_by(|a, b| a.2.partial_cmp(&b.2).expect("finite weights"));
    let mut kept: Vec<(u32, u32, f64)> = Vec::new();
    for (u, v, w) in edges {
        work.edges_processed += 1;
        let mut b = GraphBuilder::with_capacity(sg.len(), kept.len());
        for &(a, c, len) in &kept {
            b.add_edge(a, c, len);
        }
        let g = b.build();
        work.shortest_path_queries += 1;
        let redundant = matches!(dijkstra_path(&g, u, v), Some((d, _)) if d <= t * w);
        if !redundant {
            kept.push((u, v, w));
        }
    }
    let mut b = GraphBuilder::with_capacity(sg.len(), kept.len());
    for &(u, v, w) in &kept {
        b.add_edge(u, v, w);
    }
    (
        SpatialGraph::new(sg.points.clone(), b.build(), sg.max_range),
        work,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_geom::Point;
    use adhoc_graph::{is_connected, pairwise_stretch};
    use adhoc_proximity::{unit_disk_graph, yao_graph};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn prune_preserves_t_stretch_of_input() {
        let points = uniform(60, 3);
        let sectors = adhoc_geom::SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
        let yao = yao_graph(&points, sectors, 10.0);
        let t = 2.0;
        let (pruned, work) = prune_spanner(&yao, t);
        assert!(is_connected(&pruned.graph));
        let st = pairwise_stretch(&pruned.graph, &yao.graph);
        assert!(st.connectivity_preserved());
        // Composed detours may exceed t, but stay within a small factor
        // of it (see the doc comment). t² is the heuristic ceiling; allow
        // 1% slack since the exact maximum depends on the sampled points.
        assert!(st.max <= t * t * 1.01, "stretch {} > t²", st.max);
        assert!(pruned.graph.num_edges() <= yao.graph.num_edges());
        assert!(work.shortest_path_queries > 0);
    }

    #[test]
    fn greedy_spanner_has_t_stretch_of_input() {
        let points = uniform(50, 5);
        let gstar = unit_disk_graph(&points, 10.0);
        let t = 1.8;
        let (spanner, _) = greedy_spanner(&gstar, t);
        let st = pairwise_stretch(&spanner.graph, &gstar.graph);
        assert!(st.connectivity_preserved());
        assert!(st.max <= t + 1e-9, "stretch {} > t", st.max);
        assert!(spanner.graph.num_edges() < gstar.graph.num_edges());
    }

    #[test]
    fn greedy_spanner_sparse() {
        // Greedy t-spanners of complete Euclidean graphs are famously
        // sparse: O(n) edges for constant t.
        let points = uniform(80, 7);
        let gstar = unit_disk_graph(&points, 10.0);
        let (spanner, _) = greedy_spanner(&gstar, 2.0);
        assert!(spanner.graph.num_edges() <= 6 * points.len());
    }

    #[test]
    fn global_work_scales_with_edges() {
        // The quantified locality argument: each decision costs a global
        // query — |queries| = |edges of the input|. ΘALG costs 3 local
        // broadcast rounds total.
        let points = uniform(40, 9);
        let gstar = unit_disk_graph(&points, 10.0);
        let (_, work) = greedy_spanner(&gstar, 2.0);
        assert_eq!(work.shortest_path_queries, gstar.graph.num_edges());
        assert_eq!(work.edges_processed, gstar.graph.num_edges());
    }

    #[test]
    fn t_one_keeps_shortest_path_edges_only() {
        // With t = 1 the greedy spanner keeps an edge only if no equal-
        // or-shorter path exists: on a triangle with a long side covered
        // by two short ones... use strict example: collinear points.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.0, 0.0),
        ];
        let gstar = unit_disk_graph(&points, 10.0);
        let (spanner, _) = greedy_spanner(&gstar, 1.0);
        assert!(spanner.graph.has_edge(0, 1));
        assert!(spanner.graph.has_edge(1, 2));
        assert!(
            !spanner.graph.has_edge(0, 2),
            "long edge is redundant at t=1"
        );
    }

    #[test]
    #[should_panic]
    fn bad_t_rejected() {
        let points = uniform(5, 1);
        greedy_spanner(&unit_disk_graph(&points, 1.0), 0.5);
    }

    #[test]
    fn comparable_quality_to_theta_alg() {
        // Head-to-head: the global prune of 𝒩₁ and ΘALG deliver similar
        // stretch; the point of the paper is ΘALG does it locally.
        let points = uniform(60, 11);
        let range = 10.0;
        let sectors = adhoc_geom::SectorPartition::with_max_angle(std::f64::consts::FRAC_PI_3);
        let yao = yao_graph(&points, sectors, range);
        let gstar = unit_disk_graph(&points, range);
        let (pruned, work) = prune_spanner(&yao, 2.0);
        let theta = crate::ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
        let st_pruned = pairwise_stretch(&pruned.energy_graph(2.0), &gstar.energy_graph(2.0));
        let st_theta = pairwise_stretch(&theta.spatial.energy_graph(2.0), &gstar.energy_graph(2.0));
        assert!(st_pruned.max < 8.0 && st_theta.max < 8.0);
        // and the global method really did global work
        assert!(work.shortest_path_queries >= yao.graph.num_edges());
    }
}
