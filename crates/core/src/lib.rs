//! # adhoc-core
//!
//! The primary contribution of *"On Local Algorithms for Topology Control
//! and Routing in Ad Hoc Networks"* (Jia, Rajaraman, Scheideler; SPAA'03):
//!
//! * [`theta::ThetaAlg`] — the two-phase local topology control algorithm
//!   ΘALG (§2.1, originally proposed by Li et al.): phase 1 builds the Yao
//!   graph `𝒩₁` (nearest neighbor per θ-sector); phase 2 prunes in-degrees
//!   by letting every node admit only the shortest incoming edge per
//!   sector. The result `𝒩` is connected, has degree ≤ `4π/θ`
//!   (Lemma 2.1), `O(1)` energy-stretch for **any** node distribution
//!   (Theorem 2.2) and `O(1)` distance-stretch on civilized graphs
//!   (Theorem 2.7).
//! * [`protocol`] — the 3-round message-passing formulation (Position /
//!   Neighborhood / Connection broadcasts) proving the algorithm is
//!   genuinely local; it reproduces the direct construction exactly.
//! * [`stretch`] — energy- and distance-stretch measurement wrappers
//!   (experiments E2, E3).
//! * [`theta_path`] — the recursive edge→path replacement from the proof
//!   of Theorem 2.8, with the congestion counter for Lemma 2.9's "≤ 6"
//!   claim (experiment E5).
//! * [`verify`] — Lemma 2.1 verifiers (connectivity + degree bound,
//!   experiment E1).

pub mod comparators;
pub mod protocol;
pub mod stretch;
pub mod theta;
pub mod theta_path;
pub mod verify;

pub use comparators::{greedy_spanner, prune_spanner, GlobalWork};
pub use stretch::{distance_stretch, energy_stretch};
pub use theta::{ThetaAlg, ThetaTopology};
pub use theta_path::{replace_edge, theta_path_congestion, PathReplaceError};
pub use verify::{degree_bound, verify_lemma_2_1, Lemma21Report};
