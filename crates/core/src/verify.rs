//! Verifiers for Lemma 2.1: `𝒩` is connected and every node's degree is
//! at most `4π/θ`. Experiment E1 sweeps these checks across sizes,
//! angles and distributions.

use crate::theta::ThetaTopology;
use adhoc_graph::is_connected;
use serde::{Deserialize, Serialize};

/// The Lemma 2.1 degree bound `⌈4π/θ⌉` for a sector angle `theta`.
///
/// Since [`adhoc_geom::SectorPartition`] rounds the sector count up to
/// `k = ⌈2π/θ⌉`, the realized bound is `2k ≥ 4π/θ`.
pub fn degree_bound(theta: f64) -> usize {
    assert!(theta > 0.0, "θ must be positive");
    2 * (std::f64::consts::TAU / theta).ceil() as usize
}

/// Outcome of checking Lemma 2.1 on a concrete topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lemma21Report {
    /// Is `𝒩` connected? (Meaningful only when `G*` was connected.)
    pub connected: bool,
    /// Observed maximum degree.
    pub max_degree: usize,
    /// The theoretical bound `4π/θ`.
    pub bound: usize,
    /// Average degree (= `2m/n`), for the sparsity report.
    pub avg_degree: f64,
}

impl Lemma21Report {
    /// Both halves of the lemma hold.
    pub fn holds(&self) -> bool {
        self.connected && self.max_degree <= self.bound
    }
}

/// Check Lemma 2.1 on a built topology.
pub fn verify_lemma_2_1(topo: &ThetaTopology) -> Lemma21Report {
    let g = &topo.spatial.graph;
    let n = g.num_nodes();
    Lemma21Report {
        connected: is_connected(g),
        max_degree: g.max_degree(),
        bound: topo.degree_bound(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * g.num_edges() as f64 / n as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaAlg;
    use adhoc_geom::distributions::NodeDistribution;
    use adhoc_geom::Point;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::{FRAC_PI_3, PI};

    #[test]
    fn bound_values() {
        assert_eq!(degree_bound(FRAC_PI_3), 12); // 4π/(π/3) = 12
        assert_eq!(degree_bound(PI / 6.0), 24);
        assert_eq!(degree_bound(PI / 9.0), 36);
    }

    #[test]
    #[should_panic]
    fn bound_rejects_zero() {
        degree_bound(0.0);
    }

    #[test]
    fn lemma_holds_across_distributions() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let dists = [
            NodeDistribution::unit_square(),
            NodeDistribution::Clustered {
                clusters: 5,
                sigma: 0.02,
            },
            NodeDistribution::GridJitter { jitter: 0.3 },
            NodeDistribution::Civilized { lambda: 0.03 },
            NodeDistribution::Ring { radius: 0.45 },
        ];
        for dist in dists {
            let points = dist.sample(150, &mut rng).unwrap();
            // Full range: G* is complete hence connected.
            let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
            let report = verify_lemma_2_1(&topo);
            assert!(
                report.holds(),
                "Lemma 2.1 failed on {}: {report:?}",
                dist.label()
            );
        }
    }

    #[test]
    fn lemma_holds_on_exponential_chain() {
        // Highly non-civilized 1-D input.
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let points = NodeDistribution::ExponentialChain {
            base: 0.001,
            growth: 1.5,
        }
        .sample(30, &mut rng)
        .unwrap();
        let span = points.last().unwrap().x - points[0].x;
        let topo = ThetaAlg::new(FRAC_PI_3, span * 2.0).build(&points);
        let report = verify_lemma_2_1(&topo);
        assert!(report.holds(), "{report:?}");
    }

    #[test]
    fn report_fields_consistent() {
        let points: Vec<Point> = {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            (0..50)
                .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
                .collect()
        };
        let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
        let report = verify_lemma_2_1(&topo);
        assert!(report.avg_degree <= report.max_degree as f64 + 1e-12);
        assert!(report.avg_degree >= 1.0); // connected graph: m ≥ n-1
        assert_eq!(report.bound, 12);
    }

    #[test]
    fn empty_topology_report() {
        let topo = ThetaAlg::new(FRAC_PI_3, 1.0).build(&[]);
        let report = verify_lemma_2_1(&topo);
        assert!(report.connected); // vacuously
        assert_eq!(report.max_degree, 0);
        assert_eq!(report.avg_degree, 0.0);
    }
}
