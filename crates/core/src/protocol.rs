//! The 3-round message-passing formulation of ΘALG (paper §2.1).
//!
//! > "ΘALG can be implemented by three rounds of local message
//! > broadcasting and computation."
//!
//! * **Round 1** — every node broadcasts a `Position` message at maximum
//!   power; every node within range `D` receives it. Each node then
//!   computes `N(u)` purely from the positions it heard.
//! * **Round 2** — every node `u` sends a `Neighborhood` message
//!   containing `N(u)` to each node in `N(u)` (so `v` learns which nodes
//!   offered it an edge).
//! * **Round 3** — every node `v` sends a `Connection` message to the
//!   nearest offering node per sector; the exchanged connection messages
//!   are exactly the edges of `𝒩`.
//!
//! This module *simulates the radio rounds with explicit mailboxes*: each
//! node's computation reads only the messages it received, which
//! demonstrates the locality claim. [`run_local_protocol`] must produce a
//! graph identical to the direct [`crate::ThetaAlg::build`] construction —
//! a property the test suite asserts on every distribution.

use adhoc_geom::{GridIndex, Point, SectorPartition};
use adhoc_graph::{GraphBuilder, NodeId};
use adhoc_proximity::SpatialGraph;

/// A `Position` broadcast as received by some node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionMsg {
    pub from: NodeId,
    pub position: Point,
}

/// A `Neighborhood` message: the sender's phase-1 choice set `N(u)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborhoodMsg {
    pub from: NodeId,
    pub neighbors: Vec<NodeId>,
}

/// A `Connection` message: the sender admits the edge to `from`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectionMsg {
    pub from: NodeId,
}

/// Per-node protocol state; all decisions below use only this node's
/// received messages.
struct NodeState {
    id: NodeId,
    position: Point,
    /// Round-1 inbox.
    heard_positions: Vec<PositionMsg>,
    /// Phase-1 output: nearest heard node per sector.
    chosen: Vec<NodeId>,
    /// Round-2 inbox: who offered me an edge.
    offers: Vec<NodeId>,
}

impl NodeState {
    /// Compute `N(u)` from the local round-1 inbox only.
    fn compute_choices(&mut self, sectors: SectorPartition) {
        let k = sectors.count() as usize;
        let mut best: Vec<Option<(f64, NodeId)>> = vec![None; k];
        for msg in &self.heard_positions {
            let s = sectors.sector_of(self.position, msg.position) as usize;
            let d = self.position.dist_sq(msg.position);
            let better = match best[s] {
                None => true,
                Some((bd, bv)) => d < bd || (d == bd && msg.from < bv),
            };
            if better {
                best[s] = Some((d, msg.from));
            }
        }
        self.chosen = best.iter().filter_map(|b| b.map(|(_, v)| v)).collect();
    }

    /// Decide which offers to admit (one per sector), using the positions
    /// heard in round 1 to measure distances and sectors.
    fn admit_offers(&self, sectors: SectorPartition) -> Vec<NodeId> {
        let pos_of = |v: NodeId| -> Option<Point> {
            self.heard_positions
                .iter()
                .find(|m| m.from == v)
                .map(|m| m.position)
        };
        let k = sectors.count() as usize;
        let mut best: Vec<Option<(f64, NodeId)>> = vec![None; k];
        for &v in &self.offers {
            // An offer can only come from a node we heard (it is within D).
            let pv = pos_of(v).expect("offer from a node outside radio range");
            let s = sectors.sector_of(self.position, pv) as usize;
            let d = self.position.dist_sq(pv);
            let better = match best[s] {
                None => true,
                Some((bd, bv)) => d < bd || (d == bd && v < bv),
            };
            if better {
                best[s] = Some((d, v));
            }
        }
        best.iter().filter_map(|b| b.map(|(_, v)| v)).collect()
    }
}

/// Message/communication accounting for one protocol execution — the
/// quantified locality claim: ΘALG costs three broadcast rounds with
/// per-node message sizes bounded by the local neighborhood, versus the
/// network-diameter postprocessing of the global constructions
/// (`adhoc_core::comparators`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// Position broadcasts (one per node).
    pub position_broadcasts: usize,
    /// Point-to-point Neighborhood messages (round 2).
    pub neighborhood_messages: usize,
    /// Point-to-point Connection messages (round 3).
    pub connection_messages: usize,
    /// Total radio rounds (always 3).
    pub rounds: usize,
}

impl ProtocolStats {
    /// Total messages across all rounds.
    pub fn total_messages(&self) -> usize {
        self.position_broadcasts + self.neighborhood_messages + self.connection_messages
    }
}

/// Execute the three protocol rounds and return the resulting topology
/// `𝒩` (Euclidean edge weights).
pub fn run_local_protocol(points: &[Point], sectors: SectorPartition, range: f64) -> SpatialGraph {
    run_local_protocol_with_stats(points, sectors, range).0
}

/// [`run_local_protocol`] plus message accounting.
pub fn run_local_protocol_with_stats(
    points: &[Point],
    sectors: SectorPartition,
    range: f64,
) -> (SpatialGraph, ProtocolStats) {
    assert!(
        range.is_finite() && range > 0.0,
        "range must be positive, got {range}"
    );
    let n = points.len();
    let mut nodes: Vec<NodeState> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| NodeState {
            id: i as NodeId,
            position: p,
            heard_positions: Vec::new(),
            chosen: Vec::new(),
            offers: Vec::new(),
        })
        .collect();

    let mut stats = ProtocolStats {
        rounds: 3,
        position_broadcasts: n,
        ..Default::default()
    };
    if n == 0 {
        return (
            SpatialGraph::new(Vec::new(), GraphBuilder::new(0).build(), range),
            stats,
        );
    }

    // ---- Round 1: Position broadcasts (radio delivery within D) -------
    let grid = GridIndex::build(points, range);
    for u in 0..n as NodeId {
        let pu = points[u as usize];
        grid.for_each_within(pu, range, |v| {
            if v != u {
                // node v receives u's broadcast
                nodes[v as usize].heard_positions.push(PositionMsg {
                    from: u,
                    position: pu,
                });
            }
        });
    }
    for node in nodes.iter_mut() {
        node.compute_choices(sectors);
    }

    // ---- Round 2: Neighborhood messages to each chosen neighbor -------
    let round2: Vec<NeighborhoodMsg> = nodes
        .iter()
        .map(|node| NeighborhoodMsg {
            from: node.id,
            neighbors: node.chosen.clone(),
        })
        .collect();
    for msg in &round2 {
        for &v in &msg.neighbors {
            stats.neighborhood_messages += 1;
            nodes[v as usize].offers.push(msg.from);
        }
    }

    // ---- Round 3: Connection messages; edges = exchanged connections --
    let mut builder = GraphBuilder::new(n);
    for node in &nodes {
        for admitted in node.admit_offers(sectors) {
            let _ = ConnectionMsg { from: node.id };
            stats.connection_messages += 1;
            builder.add_edge(
                node.id,
                admitted,
                node.position.dist(points[admitted as usize]),
            );
        }
    }

    (
        SpatialGraph::new(points.to_vec(), builder.build(), range),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaAlg;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn protocol_matches_direct_construction_uniform() {
        for seed in [1u64, 2, 3] {
            let points = uniform(120, seed);
            for range in [0.3, 0.6] {
                let alg = ThetaAlg::new(FRAC_PI_3, range);
                let direct = alg.build(&points);
                let proto = run_local_protocol(&points, alg.sectors(), range);
                assert_eq!(
                    direct.spatial.graph, proto.graph,
                    "seed {seed} range {range}"
                );
            }
        }
    }

    #[test]
    fn protocol_matches_on_adversarial_ring() {
        let n = 48;
        let mut points = vec![Point::new(0.0, 0.0)];
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            points.push(Point::new(a.cos(), a.sin()));
        }
        let alg = ThetaAlg::new(FRAC_PI_3 / 2.0, 3.0);
        let direct = alg.build(&points);
        let proto = run_local_protocol(&points, alg.sectors(), 3.0);
        assert_eq!(direct.spatial.graph, proto.graph);
    }

    #[test]
    fn empty_and_singleton() {
        let sectors = SectorPartition::with_max_angle(FRAC_PI_3);
        assert!(run_local_protocol(&[], sectors, 1.0).is_empty());
        let one = run_local_protocol(&[Point::ORIGIN], sectors, 1.0);
        assert_eq!(one.graph.num_edges(), 0);
    }

    #[test]
    fn stats_count_locality() {
        let points = uniform(100, 5);
        let sectors = SectorPartition::with_max_angle(FRAC_PI_3);
        let (g, stats) = run_local_protocol_with_stats(&points, sectors, 0.4);
        assert_eq!(stats.rounds, 3);
        assert_eq!(stats.position_broadcasts, 100);
        // Each node sends ≤ one Neighborhood message per sector (6 here).
        assert!(stats.neighborhood_messages <= 600);
        // Each Connection message creates at most one edge; both sides
        // may announce the same edge.
        assert!(stats.connection_messages >= g.graph.num_edges());
        assert!(stats.connection_messages <= 2 * g.graph.num_edges());
        assert!(stats.total_messages() < 100 + 600 + 2 * g.graph.num_edges() + 1);
    }

    #[test]
    fn messages_only_travel_within_range() {
        // Two clusters beyond range: no cross edges possible.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.1, 0.0),
        ];
        let sectors = SectorPartition::with_max_angle(FRAC_PI_3);
        let g = run_local_protocol(&points, sectors, 1.0);
        assert!(g.graph.has_edge(0, 1));
        assert!(g.graph.has_edge(2, 3));
        assert!(!g.graph.has_edge(1, 2));
        assert_eq!(g.graph.num_edges(), 2);
    }
}
