//! Energy- and distance-stretch of a topology (paper §2.2, §2.3).
//!
//! * **Energy-stretch** (Theorem 2.2): max over node pairs of the ratio of
//!   cheapest `|uv|^κ`-cost paths in the topology vs in `G*`. ΘALG
//!   guarantees `O(1)` for any node distribution.
//! * **Distance-stretch** (Theorem 2.7): the same ratio under Euclidean
//!   length weights. ΘALG guarantees `O(1)` on civilized (λ-precision)
//!   graphs.

use adhoc_graph::{pairwise_stretch, sampled_stretch, NodeId, StretchStats};
use adhoc_proximity::SpatialGraph;

/// Exact all-pairs energy-stretch of `topo` relative to `gstar` under
/// exponent `kappa` (rayon-parallel; `O(n · m log n)`).
///
/// # Panics
/// Panics if the two graphs are over different node sets.
pub fn energy_stretch(topo: &SpatialGraph, gstar: &SpatialGraph, kappa: f64) -> StretchStats {
    pairwise_stretch(&topo.energy_graph(kappa), &gstar.energy_graph(kappa))
}

/// Exact all-pairs distance-stretch of `topo` relative to `gstar`.
pub fn distance_stretch(topo: &SpatialGraph, gstar: &SpatialGraph) -> StretchStats {
    pairwise_stretch(&topo.graph, &gstar.graph)
}

/// Energy-stretch estimated from a subset of source nodes (for large `n`).
pub fn sampled_energy_stretch(
    topo: &SpatialGraph,
    gstar: &SpatialGraph,
    kappa: f64,
    sources: &[NodeId],
) -> StretchStats {
    sampled_stretch(
        &topo.energy_graph(kappa),
        &gstar.energy_graph(kappa),
        sources,
    )
}

/// Distance-stretch estimated from a subset of source nodes.
pub fn sampled_distance_stretch(
    topo: &SpatialGraph,
    gstar: &SpatialGraph,
    sources: &[NodeId],
) -> StretchStats {
    sampled_stretch(&topo.graph, &gstar.graph, sources)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaAlg;
    use adhoc_geom::distributions::NodeDistribution;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn theorem_2_2_energy_stretch_is_small_constant_uniform() {
        // The headline claim: O(1) energy-stretch. Empirically the
        // constant is small (< 3 for θ = π/3, κ = 2 on uniform inputs).
        let points = uniform(200, 5);
        let range = adhoc_geom::default_max_range(points.len());
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let gstar = unit_disk_graph(&points, range);
        let st = energy_stretch(&topo.spatial, &gstar, 2.0);
        assert!(st.connectivity_preserved());
        assert!(st.max >= 1.0 - 1e-9);
        assert!(
            st.max < 4.0,
            "energy stretch unexpectedly large: {}",
            st.max
        );
    }

    #[test]
    fn energy_stretch_improves_with_kappa() {
        // Higher κ penalizes long hops more; the detours 𝒩 takes are
        // made of short edges, so stretch does not blow up with κ.
        let points = uniform(150, 9);
        let range = 10.0;
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let gstar = unit_disk_graph(&points, range);
        for kappa in [2.0, 3.0, 4.0] {
            let st = energy_stretch(&topo.spatial, &gstar, kappa);
            assert!(st.connectivity_preserved(), "kappa {kappa}");
            assert!(st.max < 6.0, "kappa {kappa}: stretch {}", st.max);
        }
    }

    #[test]
    fn theorem_2_7_distance_stretch_on_civilized() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let points = NodeDistribution::Civilized { lambda: 0.05 }
            .sample(150, &mut rng)
            .unwrap();
        let range = 0.3;
        let gstar = unit_disk_graph(&points, range);
        if !adhoc_graph::is_connected(&gstar.graph) {
            panic!("civilized sample not connected at this range; adjust test parameters");
        }
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let st = distance_stretch(&topo.spatial, &gstar);
        assert!(st.connectivity_preserved());
        assert!(st.max < 6.0, "distance stretch too large: {}", st.max);
    }

    #[test]
    fn sampled_bounds_exact() {
        let points = uniform(100, 13);
        let range = 10.0;
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let gstar = unit_disk_graph(&points, range);
        let exact = energy_stretch(&topo.spatial, &gstar, 2.0);
        let sources: Vec<u32> = (0..100).collect();
        let all_sampled = sampled_energy_stretch(&topo.spatial, &gstar, 2.0, &sources);
        assert!((exact.max - all_sampled.max).abs() < 1e-12);
        let some = sampled_energy_stretch(&topo.spatial, &gstar, 2.0, &sources[..10]);
        assert!(some.max <= exact.max + 1e-12);
    }

    #[test]
    fn sampled_distance_stretch_subset() {
        let points = uniform(80, 15);
        let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
        let gstar = unit_disk_graph(&points, 10.0);
        let st = sampled_distance_stretch(&topo.spatial, &gstar, &[0, 1, 2]);
        assert!(st.max >= 1.0 - 1e-9);
        assert_eq!(st.pairs + st.disconnected_pairs, 3 * 79);
    }
}
