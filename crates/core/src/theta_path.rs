//! θ-path edge replacement — the constructive core of Theorem 2.8.
//!
//! The throughput argument of §2.4 replaces each transmission-graph edge
//! `(u, v) ∈ G*` by a path in the topology `𝒩`, computed recursively:
//!
//! * if `(u, v) ∈ 𝒩`, the path is the edge itself;
//! * if `v` is the nearest neighbor of `u` in `S(u, v)` (i.e. `u` offered
//!   the edge but `v` admitted a shorter offer `(v, w)` in the sector
//!   `S(v, u)`), the path is the recursive path `u → w` (the *θ-path*)
//!   followed by the `𝒩`-edge `(w, v)`;
//! * otherwise, with `w` the nearest neighbor of `u` in `S(u, v)`, the
//!   path is the recursive path `u → w` followed by the recursive path
//!   `w → v`.
//!
//! Lemma 2.9 bounds how often a single `𝒩`-edge is reused: at most 6
//! θ-paths of any non-interfering edge set select it.
//! [`theta_path_congestion`] measures this empirically (experiment E5).

use crate::theta::ThetaTopology;
use adhoc_graph::NodeId;
use std::collections::HashMap;

/// Failure modes of the replacement procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathReplaceError {
    /// The requested pair is farther apart than the transmission range —
    /// not a `G*` edge, so the theorem does not apply.
    NotAGstarEdge,
    /// Internal inconsistency: a required phase-1/phase-2 edge is missing.
    MissingTopologyEdge,
    /// The recursion exceeded its budget (cannot happen on well-formed
    /// topologies; guards against degenerate tie-break cycles).
    RecursionLimit,
}

impl std::fmt::Display for PathReplaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PathReplaceError::NotAGstarEdge => write!(f, "pair is not an edge of G*"),
            PathReplaceError::MissingTopologyEdge => {
                write!(f, "topology is missing a required admitted edge")
            }
            PathReplaceError::RecursionLimit => write!(f, "replacement recursion exceeded budget"),
        }
    }
}

impl std::error::Error for PathReplaceError {}

/// Replace the `G*` edge `(u, v)` by a path of `𝒩` edges, returned as a
/// sequence of directed hops `(a, b)` forming a walk from `u` to `v`.
pub fn replace_edge(
    topo: &ThetaTopology,
    u: NodeId,
    v: NodeId,
) -> Result<Vec<(NodeId, NodeId)>, PathReplaceError> {
    if u == v {
        return Ok(Vec::new());
    }
    if topo.spatial.edge_len(u, v) > topo.spatial.max_range + 1e-12 {
        return Err(PathReplaceError::NotAGstarEdge);
    }
    let n = topo.len();
    // Generous budget: each recursion strictly shrinks the pair distance,
    // and there are at most n² distinct pairs.
    let mut budget = 8 * n * n + 64;
    let mut path = Vec::new();
    rec(topo, u, v, &mut budget, &mut path)?;
    Ok(path)
}

fn rec(
    topo: &ThetaTopology,
    u: NodeId,
    v: NodeId,
    budget: &mut usize,
    path: &mut Vec<(NodeId, NodeId)>,
) -> Result<(), PathReplaceError> {
    if *budget == 0 {
        return Err(PathReplaceError::RecursionLimit);
    }
    *budget -= 1;
    if u == v {
        return Ok(());
    }
    if topo.spatial.graph.has_edge(u, v) {
        path.push((u, v));
        return Ok(());
    }
    let pu = topo.spatial.pos(u);
    let pv = topo.spatial.pos(v);
    let s_uv = topo.sectors.sector_of(pu, pv);
    match topo.nearest_in_sector(u, s_uv) {
        Some(w) if w == v => {
            // Case 1: u offered (u,v); v admitted a shorter offer (v,w')
            // in the sector of v containing u.
            let s_vu = topo.sectors.sector_of(pv, pu);
            let w = topo
                .admitted_in_sector(v, s_vu)
                .ok_or(PathReplaceError::MissingTopologyEdge)?;
            debug_assert!(
                topo.spatial.graph.has_edge(v, w),
                "admitted edge must be in 𝒩"
            );
            rec(topo, u, w, budget, path)?; // the θ-path
            path.push((w, v));
            Ok(())
        }
        Some(w) => {
            // Case 2: v is not u's nearest in the sector; route via the
            // nearest neighbor w, then recursively bridge (w, v).
            rec(topo, u, w, budget, path)?;
            rec(topo, w, v, budget, path)
        }
        None => Err(PathReplaceError::MissingTopologyEdge),
    }
}

/// Normalize a directed hop to an undirected edge key.
#[inline]
fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Result of replacing a whole edge set (Lemma 2.9 measurement).
#[derive(Debug, Clone)]
pub struct CongestionReport {
    /// Maximum number of replacement paths crossing one `𝒩` edge.
    pub max_congestion: usize,
    /// Total hops over all replacement paths.
    pub total_hops: usize,
    /// Longest single replacement path, in hops.
    pub max_path_hops: usize,
    /// Number of edges replaced.
    pub edges_replaced: usize,
    /// Per-`𝒩`-edge usage counts.
    pub usage: HashMap<(NodeId, NodeId), usize>,
}

/// Replace every edge in `edges` (each a `G*` edge) and report how often
/// each `𝒩` edge is selected. For non-interfering edge sets, Lemma 2.9
/// bounds `max_congestion` of the θ-path portions by 6; empirically the
/// full replacement congestion is also a small constant.
pub fn theta_path_congestion(
    topo: &ThetaTopology,
    edges: &[(NodeId, NodeId)],
) -> Result<CongestionReport, PathReplaceError> {
    let mut usage: HashMap<(NodeId, NodeId), usize> = HashMap::new();
    let mut total_hops = 0usize;
    let mut max_path_hops = 0usize;
    for &(u, v) in edges {
        let path = replace_edge(topo, u, v)?;
        total_hops += path.len();
        max_path_hops = max_path_hops.max(path.len());
        // A path may cross an edge twice (walk, not simple path); each
        // crossing counts as one use.
        for &(a, b) in &path {
            *usage.entry(key(a, b)).or_insert(0) += 1;
        }
    }
    Ok(CongestionReport {
        max_congestion: usage.values().copied().max().unwrap_or(0),
        total_hops,
        max_path_hops,
        edges_replaced: edges.len(),
        usage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::theta::ThetaAlg;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn check_walk(topo: &ThetaTopology, u: NodeId, v: NodeId, path: &[(NodeId, NodeId)]) {
        // Walk property: consecutive hops chain, endpoints match, every
        // hop is an 𝒩 edge.
        assert_eq!(path.first().map(|e| e.0), Some(u));
        assert_eq!(path.last().map(|e| e.1), Some(v));
        for w in path.windows(2) {
            assert_eq!(w[0].1, w[1].0, "hops must chain");
        }
        for &(a, b) in path {
            assert!(
                topo.spatial.graph.has_edge(a, b),
                "hop ({a},{b}) is not an 𝒩 edge"
            );
        }
    }

    #[test]
    fn every_gstar_edge_replaceable() {
        let points = uniform(150, 3);
        let range = adhoc_geom::default_max_range(points.len());
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let gstar = unit_disk_graph(&points, range);
        for (u, v, _) in gstar.graph.edges() {
            let path = replace_edge(&topo, u, v).expect("replacement must exist");
            check_walk(&topo, u, v, &path);
        }
    }

    #[test]
    fn replacement_energy_is_bounded_multiple_of_edge_energy() {
        // The replacement path's κ=2 energy stays within a constant factor
        // of the replaced edge's energy (this is how Theorem 2.8 bounds
        // cost). Empirical constant is small.
        let points = uniform(120, 7);
        let range = adhoc_geom::default_max_range(points.len());
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let gstar = unit_disk_graph(&points, range);
        for (u, v, w) in gstar.graph.edges() {
            let path = replace_edge(&topo, u, v).unwrap();
            let path_energy: f64 = path
                .iter()
                .map(|&(a, b)| topo.spatial.edge_len(a, b).powi(2))
                .sum();
            let edge_energy = w * w;
            if edge_energy > 1e-12 {
                assert!(
                    path_energy <= 20.0 * edge_energy,
                    "edge ({u},{v}): path energy {path_energy} vs edge {edge_energy}"
                );
            }
        }
    }

    #[test]
    fn existing_edge_replaced_by_itself() {
        let points = uniform(60, 9);
        let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
        let (u, v, _) = topo.spatial.graph.edges().next().unwrap();
        assert_eq!(replace_edge(&topo, u, v).unwrap(), vec![(u, v)]);
    }

    #[test]
    fn same_node_empty_path() {
        let points = uniform(10, 11);
        let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
        assert!(replace_edge(&topo, 3, 3).unwrap().is_empty());
    }

    #[test]
    fn out_of_range_pair_rejected() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(2.5, 0.1),
        ];
        let topo = ThetaAlg::new(FRAC_PI_3, 1.0).build(&points);
        assert_eq!(
            replace_edge(&topo, 0, 1),
            Err(PathReplaceError::NotAGstarEdge)
        );
    }

    #[test]
    fn congestion_small_on_matchings() {
        // Take a maximal matching of G* (certainly non-interfering in the
        // paper's sense of vertex-disjoint use) and measure congestion.
        let points = uniform(200, 13);
        let range = adhoc_geom::default_max_range(points.len());
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        let gstar = unit_disk_graph(&points, range);
        let mut used = vec![false; points.len()];
        let mut matching = Vec::new();
        for (u, v, _) in gstar.graph.edges() {
            if !used[u as usize] && !used[v as usize] {
                used[u as usize] = true;
                used[v as usize] = true;
                matching.push((u, v));
            }
        }
        assert!(!matching.is_empty());
        let report = theta_path_congestion(&topo, &matching).unwrap();
        assert_eq!(report.edges_replaced, matching.len());
        assert!(report.max_congestion >= 1);
        // Lemma 2.9's constant applies to the θ-path segments of
        // *non-interfering* sets; a vertex-disjoint matching is stricter
        // on endpoints but looser on guard zones, so we assert a
        // conservative small-constant bound.
        assert!(
            report.max_congestion <= 12,
            "congestion {} too large",
            report.max_congestion
        );
    }

    #[test]
    fn congestion_empty_set() {
        let points = uniform(20, 17);
        let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
        let report = theta_path_congestion(&topo, &[]).unwrap();
        assert_eq!(report.max_congestion, 0);
        assert_eq!(report.total_hops, 0);
        assert_eq!(report.edges_replaced, 0);
    }

    #[test]
    fn error_display() {
        assert!(format!("{}", PathReplaceError::NotAGstarEdge).contains("G*"));
        assert!(format!("{}", PathReplaceError::RecursionLimit).contains("budget"));
        assert!(format!("{}", PathReplaceError::MissingTopologyEdge).contains("missing"));
    }
}
