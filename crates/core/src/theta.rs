//! The ΘALG two-phase local topology control algorithm (paper §2.1).
//!
//! Phase 1 — each node `u` computes `N(u)`: the nearest node in each of
//! its θ-sectors (among nodes within the maximum transmission range `D`).
//! The directed edges `u → N(u)` form the Yao graph `𝒩₁`, which is a
//! spanner but has unbounded in-degree.
//!
//! Phase 2 — each node `u` *admits* only the shortest incoming offer per
//! sector: edge `(u, v)` survives iff `v` is the nearest node in `S(u, v)`
//! with `u ∈ N(v)`, or symmetrically `u` is the nearest node in `S(v, u)`
//! with `v ∈ N(u)`. This caps every node's degree at
//! `|sectors out| + |sectors in| ≤ 4π/θ` (Lemma 2.1) while preserving
//! connectivity and `O(1)` energy-stretch (Theorem 2.2).
//!
//! Ties in distance are broken by node id, constructively discharging the
//! paper's unique-distances assumption.

use adhoc_geom::{Point, SectorPartition};
use adhoc_graph::{GraphBuilder, NodeId};
use adhoc_proximity::yao::yao_out_neighbors;
use adhoc_proximity::SpatialGraph;
use serde::{Deserialize, Serialize};

/// Configuration of the ΘALG topology control algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThetaAlg {
    sectors: SectorPartition,
    range: f64,
}

impl ThetaAlg {
    /// ΘALG with sector angle at most `theta` (paper requires
    /// `θ ≤ π/3`) and maximum transmission range `range`.
    ///
    /// # Panics
    /// Panics if `theta` is not in `(0, π/3]` or `range` is not positive.
    pub fn new(theta: f64, range: f64) -> Self {
        assert!(
            theta > 0.0 && theta <= std::f64::consts::FRAC_PI_3 + 1e-12,
            "ΘALG requires θ ∈ (0, π/3], got {theta}"
        );
        assert!(
            range.is_finite() && range > 0.0,
            "range must be positive, got {range}"
        );
        ThetaAlg {
            sectors: SectorPartition::with_max_angle(theta),
            range,
        }
    }

    /// The sector partition in use.
    pub fn sectors(&self) -> SectorPartition {
        self.sectors
    }

    /// The maximum transmission range `D`.
    pub fn range(&self) -> f64 {
        self.range
    }

    /// Run both phases and return the topology `𝒩` with its construction
    /// metadata (needed by the θ-path replacement of Theorem 2.8).
    pub fn build(&self, points: &[Point]) -> ThetaTopology {
        let n = points.len();
        let k = self.sectors.count() as usize;

        // ---- Phase 1: N(u) = nearest neighbor per sector --------------
        let yao = yao_out_neighbors(points, self.sectors, self.range);

        // Record, for each node u, its phase-1 choices with sector labels:
        // nearest_out[u] = [(sector of u containing v, v)].
        let mut nearest_out: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); n];
        for (u, targets) in yao.iter().enumerate() {
            let pu = points[u];
            nearest_out[u] = targets
                .iter()
                .map(|&v| (self.sectors.sector_of(pu, points[v as usize]), v))
                .collect();
            nearest_out[u].sort_unstable();
        }

        // ---- Phase 2: admit shortest incoming offer per sector --------
        // offers[u] = nodes v with u ∈ N(v) (v offered an edge to u).
        let mut offers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (v, targets) in yao.iter().enumerate() {
            for &(_, u) in nearest_out[v].iter() {
                let _ = targets; // nearest_out[v] already holds N(v)
                offers[u as usize].push(v as NodeId);
            }
        }

        let mut admitted_in: Vec<Vec<(u32, NodeId)>> = vec![Vec::new(); n];
        let mut best: Vec<Option<(f64, NodeId)>> = vec![None; k];
        for u in 0..n {
            for b in best.iter_mut() {
                *b = None;
            }
            let pu = points[u];
            for &v in &offers[u] {
                let s = self.sectors.sector_of(pu, points[v as usize]) as usize;
                let d = pu.dist_sq(points[v as usize]);
                let better = match best[s] {
                    None => true,
                    Some((bd, bv)) => d < bd || (d == bd && v < bv),
                };
                if better {
                    best[s] = Some((d, v));
                }
            }
            admitted_in[u] = best
                .iter()
                .enumerate()
                .filter_map(|(s, b)| b.map(|(_, v)| (s as u32, v)))
                .collect();
        }

        // ---- Assemble 𝒩 ------------------------------------------------
        let mut builder = GraphBuilder::new(n);
        for (u, admits) in admitted_in.iter().enumerate() {
            for &(_, v) in admits {
                builder.add_edge(u as NodeId, v, points[u].dist(points[v as usize]));
            }
        }

        ThetaTopology {
            spatial: SpatialGraph::new(points.to_vec(), builder.build(), self.range),
            sectors: self.sectors,
            nearest_out,
            admitted_in,
        }
    }
}

/// The topology `𝒩` produced by ΘALG, together with the per-node
/// construction state that the θ-path replacement (Theorem 2.8) and the
/// routing layer consult.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThetaTopology {
    /// The topology `𝒩` with Euclidean edge weights.
    pub spatial: SpatialGraph,
    /// The sector partition the topology was built with.
    pub sectors: SectorPartition,
    /// Phase-1 state: `nearest_out[u]` = `N(u)` as `(sector, node)` pairs,
    /// sorted by sector.
    nearest_out: Vec<Vec<(u32, NodeId)>>,
    /// Phase-2 state: `admitted_in[u]` = the admitted (shortest) incoming
    /// offer per sector, as `(sector, node)` pairs sorted by sector.
    admitted_in: Vec<Vec<(u32, NodeId)>>,
}

impl ThetaTopology {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.spatial.len()
    }

    /// True iff the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.spatial.is_empty()
    }

    /// `N(u)`: phase-1 nearest neighbor of `u` in sector `s`, if any.
    pub fn nearest_in_sector(&self, u: NodeId, s: u32) -> Option<NodeId> {
        self.nearest_out[u as usize]
            .iter()
            .find(|&&(sec, _)| sec == s)
            .map(|&(_, v)| v)
    }

    /// Is `v ∈ N(u)` (did phase 1 point `u` at `v`)?
    pub fn is_nearest_choice(&self, u: NodeId, v: NodeId) -> bool {
        self.nearest_out[u as usize].iter().any(|&(_, w)| w == v)
    }

    /// The incoming edge `u` admitted in sector `s` during phase 2, if any.
    pub fn admitted_in_sector(&self, u: NodeId, s: u32) -> Option<NodeId> {
        self.admitted_in[u as usize]
            .iter()
            .find(|&&(sec, _)| sec == s)
            .map(|&(_, v)| v)
    }

    /// All phase-1 choices of `u` (`N(u)`), with sector labels.
    pub fn nearest_out(&self, u: NodeId) -> &[(u32, NodeId)] {
        &self.nearest_out[u as usize]
    }

    /// All admitted incoming edges of `u`, with sector labels.
    pub fn admitted_in(&self, u: NodeId) -> &[(u32, NodeId)] {
        &self.admitted_in[u as usize]
    }

    /// The theoretical degree bound of Lemma 2.1: `4π/θ` = twice the
    /// sector count.
    pub fn degree_bound(&self) -> usize {
        2 * self.sectors.count() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_graph::is_connected;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::FRAC_PI_3;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    #[should_panic]
    fn theta_above_pi_over_3_rejected() {
        ThetaAlg::new(1.5, 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_range_rejected() {
        ThetaAlg::new(FRAC_PI_3, 0.0);
    }

    #[test]
    fn accessors() {
        let alg = ThetaAlg::new(FRAC_PI_3, 0.5);
        assert_eq!(alg.sectors().count(), 6);
        assert_eq!(alg.range(), 0.5);
    }

    #[test]
    fn subgraph_of_yao_graph() {
        // Phase 2 only removes edges: 𝒩 ⊆ 𝒩₁.
        let points = uniform(150, 3);
        let alg = ThetaAlg::new(FRAC_PI_3, 0.4);
        let topo = alg.build(&points);
        let yao = adhoc_proximity::yao_graph(&points, alg.sectors(), 0.4);
        for (u, v, _) in topo.spatial.graph.edges() {
            assert!(yao.graph.has_edge(u, v), "𝒩 edge ({u},{v}) not in 𝒩₁");
        }
    }

    #[test]
    fn lemma_2_1_degree_bound() {
        // Degree ≤ 4π/θ = 2 · sector count, on several distributions.
        for (n, seed) in [(100usize, 1u64), (400, 2), (800, 3)] {
            let points = uniform(n, seed);
            let alg = ThetaAlg::new(FRAC_PI_3, 10.0);
            let topo = alg.build(&points);
            assert!(
                topo.spatial.graph.max_degree() <= topo.degree_bound(),
                "degree {} exceeds bound {}",
                topo.spatial.graph.max_degree(),
                topo.degree_bound()
            );
        }
    }

    #[test]
    fn lemma_2_1_connectivity() {
        // 𝒩 is connected whenever G* is.
        let points = uniform(200, 7);
        let range = adhoc_geom::default_max_range(points.len());
        let gstar = unit_disk_graph(&points, range);
        assert!(is_connected(&gstar.graph), "test needs a connected G*");
        let topo = ThetaAlg::new(FRAC_PI_3, range).build(&points);
        assert!(is_connected(&topo.spatial.graph));
    }

    #[test]
    fn ring_degree_bounded_unlike_yao() {
        // The ring configuration gives the Yao graph's center high degree;
        // phase 2 caps it at the Lemma 2.1 bound.
        let n = 64;
        let mut points = vec![Point::new(0.0, 0.0)];
        for i in 0..n {
            let a = i as f64 / n as f64 * std::f64::consts::TAU;
            let r = 1.0 + 1e-6 * i as f64;
            points.push(Point::new(r * a.cos(), r * a.sin()));
        }
        let alg = ThetaAlg::new(FRAC_PI_3, 10.0);
        let topo = alg.build(&points);
        assert!(topo.spatial.graph.degree(0) <= topo.degree_bound());
        assert!(is_connected(&topo.spatial.graph));
    }

    #[test]
    fn admitted_edges_are_offers() {
        // Every admitted incoming edge (u ← v) must correspond to a
        // phase-1 offer: u ∈ N(v).
        let points = uniform(120, 11);
        let topo = ThetaAlg::new(FRAC_PI_3, 0.5).build(&points);
        for u in 0..points.len() as NodeId {
            for &(s, v) in topo.admitted_in(u) {
                assert!(
                    topo.is_nearest_choice(v, u),
                    "({v}→{u}) admitted but not offered"
                );
                assert_eq!(
                    topo.sectors
                        .sector_of(points[u as usize], points[v as usize]),
                    s
                );
            }
        }
    }

    #[test]
    fn admitted_is_shortest_offer_per_sector() {
        let points = uniform(120, 13);
        let topo = ThetaAlg::new(FRAC_PI_3, 0.5).build(&points);
        let n = points.len();
        // Recompute offers naively.
        let mut offers: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for v in 0..n as NodeId {
            for &(_, u) in topo.nearest_out(v) {
                offers[u as usize].push(v);
            }
        }
        for u in 0..n as NodeId {
            for &(s, v) in topo.admitted_in(u) {
                // No other offer in sector s may be strictly shorter.
                for &w in &offers[u as usize] {
                    if topo
                        .sectors
                        .sector_of(points[u as usize], points[w as usize])
                        == s
                    {
                        let dv = points[u as usize].dist_sq(points[v as usize]);
                        let dw = points[u as usize].dist_sq(points[w as usize]);
                        assert!(
                            dv < dw || (dv == dw && v <= w),
                            "node {u} sector {s}: admitted {v} but {w} is closer"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let alg = ThetaAlg::new(FRAC_PI_3, 1.0);
        assert!(alg.build(&[]).is_empty());
        let one = alg.build(&[Point::ORIGIN]);
        assert_eq!(one.len(), 1);
        assert_eq!(one.spatial.graph.num_edges(), 0);
        let two = alg.build(&[Point::ORIGIN, Point::new(0.5, 0.0)]);
        assert_eq!(two.spatial.graph.num_edges(), 1);
    }

    #[test]
    fn deterministic_under_tie_breaks() {
        // Symmetric square: all pairwise ties must resolve identically on
        // repeated runs.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
        ];
        let alg = ThetaAlg::new(FRAC_PI_3, 10.0);
        let a = alg.build(&points);
        let b = alg.build(&points);
        assert_eq!(a.spatial.graph, b.spatial.graph);
        assert!(is_connected(&a.spatial.graph));
    }

    #[test]
    fn smaller_theta_gives_higher_bound_and_stays_connected() {
        let points = uniform(150, 17);
        for theta in [FRAC_PI_3, FRAC_PI_3 / 2.0, FRAC_PI_3 / 3.0] {
            let topo = ThetaAlg::new(theta, 10.0).build(&points);
            assert!(topo.spatial.graph.max_degree() <= topo.degree_bound());
            assert!(is_connected(&topo.spatial.graph));
        }
    }

    #[test]
    fn nearest_in_sector_lookup_consistent() {
        let points = uniform(60, 19);
        let topo = ThetaAlg::new(FRAC_PI_3, 10.0).build(&points);
        for u in 0..points.len() as NodeId {
            for &(s, v) in topo.nearest_out(u) {
                assert_eq!(topo.nearest_in_sector(u, s), Some(v));
            }
            assert_eq!(topo.nearest_in_sector(u, 999), None);
        }
    }
}
