//! # adhoc-interference
//!
//! The pairwise guard-zone interference model of paper §2.4 and the MAC
//! (medium access control) protocols of §3.3–3.4.
//!
//! * [`model`] — interference regions
//!   `IR(X, Y) = C(X, (1+Δ)|XY|) ∪ C(Y, (1+Δ)|XY|)`, the success predicate
//!   for sets of simultaneous transmissions, and the edge-level
//!   "interferes with" relation.
//! * [`sets`] — interference sets `I(e)` and the interference number
//!   `I = max_e |I(e)|` of a topology (Lemma 2.10: `O(log n)` whp for
//!   uniform random nodes — experiment E4).
//! * [`mac`] — the randomized symmetry-breaking MAC of §3.3: every edge
//!   activates with probability `1/(2 I_e)`, which caps the per-edge
//!   conflict probability at 1/2 (Lemma 3.2 — experiment E7).
//! * [`hexmac`] — the honeycomb contestant selection of §3.4 for fixed
//!   transmission strength (Lemmas 3.6/3.7, Theorem 3.8 — experiment E9).

pub mod hexmac;
pub mod mac;
pub mod model;
pub mod sets;
pub mod sinr;
pub mod tdma;

pub use hexmac::{HoneycombMac, HoneycombOutcome};
pub use mac::{ActivationRule, RandomizedMac};
pub use model::{
    edge_interferes, pairs_independent, successful_transmissions, InterferenceModel, Transmission,
};
pub use sets::{interference_number, interference_sets, EdgeList};
pub use sinr::{DisagreementReport, PowerPolicy, SinrModel};
pub use tdma::{tdma_schedule, TdmaSchedule};
