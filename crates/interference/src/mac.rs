//! The randomized symmetry-breaking MAC of §3.3.
//!
//! Every edge `e` offered by the topology control layer becomes *active*
//! with probability `1/(2 I_e)`, where `I_e` is an upper bound on the
//! interference number of any edge that `e` interferes with. Lemma 3.2:
//! under this rule every active edge has probability at most 1/2 of
//! interfering with another active edge — so in expectation at least half
//! the activations are usable, which yields the `Ω(1/I)` throughput of
//! Theorem 3.3.

use crate::model::InterferenceModel;
use crate::sets::{interference_sets, EdgeList};
use adhoc_proximity::SpatialGraph;
use rand::Rng;

/// How the per-edge bound `I_e` is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivationRule {
    /// Use the global interference number `I` for every edge (what the
    /// theorem statements assume).
    GlobalBound,
    /// Use the local bound `I_e = max(|I(e)|, max_{e'∈I(e)} |I(e')|)` —
    /// each node only needs knowledge of its neighborhood, matching the
    /// paper's remark that a local upper bound suffices in the plane.
    Local,
}

/// The randomized MAC protocol bound to a concrete topology.
#[derive(Debug, Clone)]
pub struct RandomizedMac {
    edge_list: EdgeList,
    /// `I(e)` as sorted edge-id lists.
    sets: Vec<Vec<u32>>,
    /// The per-edge activation bound `I_e` (≥ 1).
    i_e: Vec<usize>,
    /// Global interference number.
    interference_number: usize,
}

impl RandomizedMac {
    /// Precompute interference sets and per-edge bounds for `sg`.
    pub fn new(sg: &SpatialGraph, model: InterferenceModel, rule: ActivationRule) -> Self {
        let (edge_list, sets) = interference_sets(sg, model);
        let global = sets.iter().map(|s| s.len()).max().unwrap_or(0);
        let i_e = match rule {
            ActivationRule::GlobalBound => vec![global.max(1); sets.len()],
            ActivationRule::Local => sets
                .iter()
                .map(|s| {
                    let own = s.len();
                    let nb = s.iter().map(|&f| sets[f as usize].len()).max().unwrap_or(0);
                    own.max(nb).max(1)
                })
                .collect(),
        };
        RandomizedMac {
            edge_list,
            sets,
            i_e,
            interference_number: global,
        }
    }

    /// The underlying edge list.
    pub fn edge_list(&self) -> &EdgeList {
        &self.edge_list
    }

    /// Interference set of edge `e` (sorted edge ids).
    pub fn interference_set(&self, e: u32) -> &[u32] {
        &self.sets[e as usize]
    }

    /// The global interference number `I`.
    pub fn interference_number(&self) -> usize {
        self.interference_number
    }

    /// The per-edge bound `I_e`.
    pub fn bound(&self, e: u32) -> usize {
        self.i_e[e as usize]
    }

    /// Activation probability of edge `e`: `1/(2 I_e)`.
    pub fn activation_probability(&self, e: u32) -> f64 {
        1.0 / (2.0 * self.i_e[e as usize] as f64)
    }

    /// Sample the active edge set for one step.
    pub fn sample_active<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u32> {
        (0..self.edge_list.len() as u32)
            .filter(|&e| rng.gen_bool(self.activation_probability(e)))
            .collect()
    }

    /// Of the given active edges, which are *conflict-free* (no other
    /// active edge lies in their interference set)? Transmissions on
    /// conflicting edges would fail (§3.3: "if the algorithm decides to
    /// send packets along two active edges that interfere with each
    /// other, then neither of the transmissions is successful").
    pub fn conflict_free(&self, active: &[u32]) -> Vec<bool> {
        let mut is_active = vec![false; self.edge_list.len()];
        for &e in active {
            is_active[e as usize] = true;
        }
        active
            .iter()
            .map(|&e| {
                self.sets[e as usize]
                    .iter()
                    .all(|&f| !is_active[f as usize])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    fn mac(seed: u64, rule: ActivationRule) -> RandomizedMac {
        let points = uniform(150, seed);
        let sg = unit_disk_graph(&points, 0.18);
        RandomizedMac::new(&sg, InterferenceModel::new(0.5), rule)
    }

    #[test]
    fn probabilities_in_range() {
        let m = mac(3, ActivationRule::Local);
        for e in 0..m.edge_list().len() as u32 {
            let p = m.activation_probability(e);
            assert!(p > 0.0 && p <= 0.5, "edge {e}: p={p}");
            assert!(m.bound(e) >= 1);
        }
    }

    #[test]
    fn global_rule_uniform_probability() {
        let m = mac(5, ActivationRule::GlobalBound);
        let p0 = m.activation_probability(0);
        for e in 0..m.edge_list().len() as u32 {
            assert_eq!(m.activation_probability(e), p0);
        }
        assert!((p0 - 1.0 / (2.0 * m.interference_number().max(1) as f64)).abs() < 1e-12);
    }

    #[test]
    fn local_bound_dominates_own_set_size() {
        let m = mac(7, ActivationRule::Local);
        for e in 0..m.edge_list().len() as u32 {
            assert!(m.bound(e) >= m.interference_set(e).len());
        }
    }

    #[test]
    fn lemma_3_2_interference_probability_at_most_half() {
        // Empirical check of Lemma 3.2 under the LOCAL rule: for each
        // sampled active edge, the probability that some other active edge
        // interferes with it is ≤ 1/2 (we allow a small sampling margin).
        for rule in [ActivationRule::GlobalBound, ActivationRule::Local] {
            let m = mac(11, rule);
            let mut rng = ChaCha8Rng::seed_from_u64(999);
            let mut active_count = 0usize;
            let mut conflicted = 0usize;
            for _ in 0..400 {
                let active = m.sample_active(&mut rng);
                let free = m.conflict_free(&active);
                active_count += active.len();
                conflicted += free.iter().filter(|&&ok| !ok).count();
            }
            assert!(active_count > 0, "sampling produced no activations");
            let p = conflicted as f64 / active_count as f64;
            assert!(
                p <= 0.55,
                "{rule:?}: empirical conflict probability {p} > 1/2"
            );
        }
    }

    #[test]
    fn conflict_free_detects_conflicts() {
        // Three collinear close nodes: edges (0,1) and (1,2) interfere.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.2, 0.0),
        ];
        let sg = unit_disk_graph(&points, 0.15);
        let m = RandomizedMac::new(&sg, InterferenceModel::new(0.5), ActivationRule::Local);
        assert_eq!(m.edge_list().len(), 2);
        assert_eq!(m.conflict_free(&[0, 1]), vec![false, false]);
        assert_eq!(m.conflict_free(&[0]), vec![true]);
        assert_eq!(m.conflict_free(&[]), Vec::<bool>::new());
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let m = mac(13, ActivationRule::Local);
        let a = m.sample_active(&mut ChaCha8Rng::seed_from_u64(1));
        let b = m.sample_active(&mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_topology() {
        let sg = unit_disk_graph(&[], 1.0);
        let m = RandomizedMac::new(&sg, InterferenceModel::new(0.5), ActivationRule::Local);
        assert_eq!(m.interference_number(), 0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(m.sample_active(&mut rng).is_empty());
    }
}
