//! TDMA scheduling by interference-graph coloring.
//!
//! Theorem 2.8's emulation argument schedules the edges of `𝒩` so that no
//! two simultaneously active edges interfere; the classic constructive
//! way is to color the *interference graph* (vertices = edges of `𝒩`,
//! adjacency = the symmetric "interferes" relation) and assign one TDMA
//! slot per color. Greedy coloring uses at most `I + 1` colors, so the
//! whole topology can be activated conflict-free every `I + 1` steps —
//! the `O(tI)` slowdown of Theorem 2.8 made executable.

use crate::model::InterferenceModel;
use crate::sets::interference_sets;
use adhoc_proximity::SpatialGraph;

/// A TDMA schedule over the edges of a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TdmaSchedule {
    /// `slot[e]` = the time slot (color) assigned to edge id `e`.
    pub slot: Vec<u32>,
    /// Number of slots in the frame (= colors used).
    pub frame_length: u32,
}

impl TdmaSchedule {
    /// The edge ids active in a given slot.
    pub fn edges_in_slot(&self, s: u32) -> Vec<u32> {
        (0..self.slot.len() as u32)
            .filter(|&e| self.slot[e as usize] == s)
            .collect()
    }
}

/// Greedy-color the interference graph of `sg` (largest-degree-first
/// order) and return the slot assignment. Frame length ≤ I + 1.
pub fn tdma_schedule(sg: &SpatialGraph, model: InterferenceModel) -> TdmaSchedule {
    let (el, sets) = interference_sets(sg, model);
    let m = el.len();
    if m == 0 {
        return TdmaSchedule {
            slot: Vec::new(),
            frame_length: 0,
        };
    }
    // Largest interference degree first (Welsh–Powell), for fewer colors.
    let mut order: Vec<u32> = (0..m as u32).collect();
    order.sort_unstable_by_key(|&e| std::cmp::Reverse(sets[e as usize].len()));

    let mut slot = vec![u32::MAX; m];
    let mut frame_length = 0u32;
    let mut used: Vec<bool> = Vec::new();
    for &e in &order {
        used.clear();
        used.resize(frame_length as usize + 1, false);
        for &f in &sets[e as usize] {
            let s = slot[f as usize];
            if s != u32::MAX && (s as usize) < used.len() {
                used[s as usize] = true;
            }
        }
        let s = used.iter().position(|&u| !u).unwrap() as u32;
        slot[e as usize] = s;
        frame_length = frame_length.max(s + 1);
    }
    TdmaSchedule { slot, frame_length }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sets::interference_number;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[test]
    fn schedule_is_conflict_free() {
        let points = uniform(100, 3);
        let sg = unit_disk_graph(&points, 0.2);
        let model = InterferenceModel::new(0.5);
        let sched = tdma_schedule(&sg, model);
        let (_, sets) = interference_sets(&sg, model);
        for e in 0..sets.len() as u32 {
            for &f in &sets[e as usize] {
                assert_ne!(
                    sched.slot[e as usize], sched.slot[f as usize],
                    "interfering edges {e},{f} share a slot"
                );
            }
        }
    }

    #[test]
    fn frame_length_at_most_i_plus_one() {
        let points = uniform(120, 7);
        let sg = unit_disk_graph(&points, 0.2);
        let model = InterferenceModel::new(0.5);
        let sched = tdma_schedule(&sg, model);
        let i = interference_number(&sg, model);
        assert!(
            sched.frame_length as usize <= i + 1,
            "frame {} > I+1 = {}",
            sched.frame_length,
            i + 1
        );
        assert!(sched.frame_length >= 1);
    }

    #[test]
    fn every_edge_gets_exactly_one_slot() {
        let points = uniform(60, 9);
        let sg = unit_disk_graph(&points, 0.25);
        let sched = tdma_schedule(&sg, InterferenceModel::new(1.0));
        assert_eq!(sched.slot.len(), sg.graph.num_edges());
        let total: usize = (0..sched.frame_length)
            .map(|s| sched.edges_in_slot(s).len())
            .sum();
        assert_eq!(total, sg.graph.num_edges());
        assert!(sched.slot.iter().all(|&s| s < sched.frame_length));
    }

    #[test]
    fn empty_topology() {
        let sched = tdma_schedule(&unit_disk_graph(&[], 1.0), InterferenceModel::new(0.5));
        assert_eq!(sched.frame_length, 0);
        assert!(sched.slot.is_empty());
    }

    #[test]
    fn isolated_edges_one_slot() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(50.0, 0.0),
            Point::new(50.1, 0.0),
        ];
        let sg = unit_disk_graph(&points, 0.2);
        let sched = tdma_schedule(&sg, InterferenceModel::new(0.5));
        assert_eq!(sched.frame_length, 1);
    }

    #[test]
    fn theta_topology_needs_far_fewer_slots_than_gstar() {
        use adhoc_core::ThetaAlg;
        let points = uniform(200, 11);
        let range = adhoc_geom::default_max_range(200);
        let model = InterferenceModel::new(0.5);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
        let f_gstar = tdma_schedule(&gstar, model).frame_length;
        let f_theta = tdma_schedule(&topo.spatial, model).frame_length;
        assert!(
            f_theta * 2 < f_gstar,
            "expected frame(𝒩)={f_theta} ≪ frame(G*)={f_gstar}"
        );
    }
}
