//! The *physical* (SINR) interference model of Gupta–Kumar.
//!
//! Paper §2.4 adopts the pairwise guard-zone ("protocol") model and notes
//! it "is a simplified version of the *physical* model [24], which
//! considers a combined interference from all other simultaneous
//! transmissions". This module implements that physical model so the
//! experiment suite can validate the protocol-model abstraction: a
//! transmission `Xᵢ → Yᵢ` succeeds iff
//!
//! ```text
//!          P / |Xᵢ Yᵢ|^κ
//! ──────────────────────────────────  ≥  β
//!  N₀ + Σ_{j≠i} P / |Xⱼ Yᵢ|^κ
//! ```
//!
//! with transmit power `P`, path-loss exponent `κ`, ambient noise `N₀`
//! and SINR threshold `β`. With power control (each sender using just
//! enough power for its own link) the numerator becomes the reception
//! threshold itself.

use crate::model::Transmission;
use adhoc_geom::Point;
use serde::{Deserialize, Serialize};

/// Parameters of the physical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SinrModel {
    /// Path-loss exponent `κ ∈ [2, 4]`.
    pub kappa: f64,
    /// SINR threshold `β` (≥ 1 in practice).
    pub beta: f64,
    /// Ambient noise floor `N₀` (same units as received power).
    pub noise: f64,
    /// Transmission power policy.
    pub power: PowerPolicy,
}

/// How senders choose their transmit power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PowerPolicy {
    /// Everyone transmits at the same fixed power `P` (the §3.4 regime).
    Uniform(f64),
    /// Power control: sender `i` uses `margin · β · N₀ · |XᵢYᵢ|^κ`, the
    /// minimum (times a safety margin ≥ 1) that closes its own link over
    /// pure noise (the §2.2 power-adjustment assumption).
    MinimumPlusMargin(f64),
}

impl SinrModel {
    /// Standard instance: κ = 2, β = 1.5, low noise, uniform power 1.
    pub fn standard(kappa: f64) -> Self {
        SinrModel {
            kappa,
            beta: 1.5,
            noise: 1e-6,
            power: PowerPolicy::Uniform(1.0),
        }
    }

    fn tx_power(&self, sender: Point, receiver: Point) -> f64 {
        match self.power {
            PowerPolicy::Uniform(p) => p,
            PowerPolicy::MinimumPlusMargin(margin) => {
                margin * self.beta * self.noise * sender.dist(receiver).powf(self.kappa).max(1e-300)
            }
        }
    }

    /// Received power at `at` from a sender at `from` transmitting with
    /// power `p`.
    fn received(&self, p: f64, from: Point, at: Point) -> f64 {
        let d = from.dist(at).max(1e-9); // near-field clamp
        p / d.powf(self.kappa)
    }

    /// Which of the simultaneous directed transmissions succeed under the
    /// physical model? `active[i] = (sender, receiver)` as indices into
    /// `positions`.
    pub fn successful(&self, positions: &[Point], active: &[Transmission]) -> Vec<bool> {
        let k = active.len();
        let powers: Vec<f64> = active
            .iter()
            .map(|t| self.tx_power(positions[t.a as usize], positions[t.b as usize]))
            .collect();
        let mut ok = vec![false; k];
        for i in 0..k {
            let rx = positions[active[i].b as usize];
            let signal = self.received(powers[i], positions[active[i].a as usize], rx);
            let mut interference = 0.0;
            let mut shared = false;
            for j in 0..k {
                if j == i {
                    continue;
                }
                if active[j].a == active[i].a
                    || active[j].a == active[i].b
                    || active[j].b == active[i].b
                {
                    shared = true; // a node cannot send/receive twice at once
                }
                interference += self.received(powers[j], positions[active[j].a as usize], rx);
            }
            ok[i] = !shared && signal >= self.beta * (self.noise + interference);
        }
        ok
    }

    /// Fraction of transmissions on which the pairwise protocol model
    /// (guard zone `Δ`) and this physical model *disagree*, over the
    /// given batch of simultaneous transmission sets.
    ///
    /// Used by the validation experiment: for a suitable `Δ` the protocol
    /// model is a conservative proxy of the physical model.
    pub fn disagreement_with_protocol(
        &self,
        positions: &[Point],
        batches: &[Vec<Transmission>],
        protocol: crate::model::InterferenceModel,
    ) -> DisagreementReport {
        let mut report = DisagreementReport::default();
        for batch in batches {
            let phys = self.successful(positions, batch);
            let proto = crate::model::successful_transmissions(protocol, positions, batch);
            for (p, q) in phys.iter().zip(proto.iter()) {
                report.total += 1;
                match (q, p) {
                    (true, true) => report.both_succeed += 1,
                    (false, false) => report.both_fail += 1,
                    // protocol optimistic: claims success, physically fails
                    (true, false) => report.protocol_optimistic += 1,
                    // protocol conservative: claims failure, physically fine
                    (false, true) => report.protocol_conservative += 1,
                }
            }
        }
        report
    }
}

/// Outcome of a protocol-vs-physical validation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisagreementReport {
    pub total: usize,
    pub both_succeed: usize,
    pub both_fail: usize,
    /// Protocol model allowed a transmission the SINR model kills —
    /// the dangerous direction.
    pub protocol_optimistic: usize,
    /// Protocol model was more cautious than physically necessary.
    pub protocol_conservative: usize,
}

impl DisagreementReport {
    /// Rate of dangerous (optimistic) mispredictions.
    pub fn optimism_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.protocol_optimistic as f64 / self.total as f64
        }
    }

    /// Overall agreement rate.
    pub fn agreement_rate(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            (self.both_succeed + self.both_fail) as f64 / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::InterferenceModel;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn pts(v: &[(f64, f64)]) -> Vec<Point> {
        v.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn single_transmission_succeeds_over_noise() {
        let m = SinrModel::standard(2.0);
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0)]);
        let ok = m.successful(&positions, &[Transmission::new(0, 1)]);
        assert_eq!(ok, vec![true]);
    }

    #[test]
    fn noise_alone_can_kill_a_long_link() {
        let mut m = SinrModel::standard(2.0);
        m.noise = 0.5; // heavy noise: SINR = (1/d²)/ (β·0.5)
        let positions = pts(&[(0.0, 0.0), (3.0, 0.0)]);
        let ok = m.successful(&positions, &[Transmission::new(0, 1)]);
        assert_eq!(ok, vec![false]);
    }

    #[test]
    fn nearby_interferer_kills() {
        let m = SinrModel::standard(2.0);
        // receiver 1 is as close to the other sender (2) as to its own.
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (2.0, 5.0)]);
        let ok = m.successful(
            &positions,
            &[Transmission::new(0, 1), Transmission::new(2, 3)],
        );
        assert!(!ok[0], "receiver 1 sees equal signal and interference");
    }

    #[test]
    fn far_interferer_harmless() {
        let m = SinrModel::standard(2.0);
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (100.0, 0.0), (101.0, 0.0)]);
        let ok = m.successful(
            &positions,
            &[Transmission::new(0, 1), Transmission::new(2, 3)],
        );
        assert_eq!(ok, vec![true, true]);
    }

    #[test]
    fn shared_node_always_fails() {
        let m = SinrModel::standard(2.0);
        let positions = pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let ok = m.successful(
            &positions,
            &[Transmission::new(0, 1), Transmission::new(0, 2)],
        );
        assert_eq!(ok, vec![false, false]);
    }

    #[test]
    fn power_control_reduces_interference() {
        // Uniform power: a short link's sender blasts a distant receiver.
        // Minimum power: it whispers, and the distant link survives.
        // Short link sits right next to the long link's receiver.
        let positions = pts(&[
            (5.1, 0.0),
            (5.2, 0.0), // short link 0→1
            (2.5, 0.0),
            (4.5, 0.0), // long link 2→3
        ]);
        let batch = [Transmission::new(0, 1), Transmission::new(2, 3)];
        let uniform = SinrModel {
            kappa: 2.0,
            beta: 1.5,
            noise: 1e-9,
            power: PowerPolicy::Uniform(1.0),
        };
        let controlled = SinrModel {
            kappa: 2.0,
            beta: 1.5,
            noise: 1e-9,
            power: PowerPolicy::MinimumPlusMargin(10.0),
        };
        let u = uniform.successful(&positions, &batch);
        let c = controlled.successful(&positions, &batch);
        assert!(!u[1], "uniform power: loud neighbor kills the long link");
        assert!(c[1], "power control lets the long link through");
        assert!(c[0]);
    }

    #[test]
    fn protocol_model_is_mostly_conservative_with_margin() {
        // Random batches on random points: with a healthy guard zone the
        // protocol model should rarely be optimistic vs SINR.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let positions: Vec<Point> = (0..40)
            .map(|_| Point::new(rng.gen::<f64>() * 5.0, rng.gen::<f64>() * 5.0))
            .collect();
        let mut batches = Vec::new();
        for _ in 0..300 {
            let mut batch = Vec::new();
            for _ in 0..3 {
                let a = rng.gen_range(0..40u32);
                let mut b = rng.gen_range(0..39u32);
                if b >= a {
                    b += 1;
                }
                if positions[a as usize].dist(positions[b as usize]) < 1.0 {
                    batch.push(Transmission::new(a, b));
                }
            }
            if !batch.is_empty() {
                batches.push(batch);
            }
        }
        let sinr = SinrModel {
            kappa: 3.0,
            beta: 1.2,
            noise: 1e-6,
            power: PowerPolicy::MinimumPlusMargin(4.0),
        };
        let report =
            sinr.disagreement_with_protocol(&positions, &batches, InterferenceModel::new(1.5));
        assert!(report.total > 100);
        assert!(
            report.optimism_rate() < 0.1,
            "protocol model too optimistic: {report:?}"
        );
        assert!(report.agreement_rate() > 0.5, "{report:?}");
    }

    #[test]
    fn empty_batch() {
        let m = SinrModel::standard(2.0);
        assert!(m.successful(&[], &[]).is_empty());
        let rep = m.disagreement_with_protocol(&[], &[], InterferenceModel::new(0.5));
        assert_eq!(rep.total, 0);
        assert_eq!(rep.agreement_rate(), 1.0);
        assert_eq!(rep.optimism_rate(), 0.0);
    }
}
