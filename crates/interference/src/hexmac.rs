//! The honeycomb contestant-selection MAC of §3.4 (fixed transmission
//! strength).
//!
//! The plane is tiled by hexagons of side `3 + 2Δ` (paper Figure 5). Every
//! candidate sender–receiver pair `(s, t)` (with `|st| ≤ 1`, the fixed
//! unit range) is assigned to the hexagon containing `s`, and carries a
//! *benefit* (the routing layer supplies the maximum buffer-height
//! difference). Within each hexagon only the maximum-benefit pair may
//! contest the channel; a contestant actually transmits with probability
//! `p_t ≤ 1/6`, which guarantees (Lemma 3.7) that each contestant sees no
//! interfering co-selected contestant with probability ≥ 1/2. Lemma 3.6
//! guarantees the contestants' total benefit is within a constant `c_b` of
//! the best independent pair set's benefit.

use crate::model::Transmission;
use adhoc_geom::{HexCoord, HexGrid, Point};
use rand::Rng;
use std::collections::HashMap;

/// A candidate sender–receiver pair with its benefit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// Sender → receiver link (indices into the shared position table).
    pub link: Transmission,
    /// Benefit (max buffer-height difference over destinations).
    pub benefit: f64,
}

/// The honeycomb MAC bound to a guard-zone parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HoneycombMac {
    grid: HexGrid,
    /// Benefit threshold `T`: only pairs with benefit > T contest.
    pub threshold: f64,
    /// Transmission probability `p_t` (paper requires `p_t ≤ 1/6` for
    /// Lemma 3.7).
    pub p_t: f64,
}

/// Result of one contest round.
#[derive(Debug, Clone, PartialEq)]
pub struct HoneycombOutcome {
    /// Indices (into the candidate slice) of the per-hexagon winners whose
    /// benefit exceeds the threshold.
    pub contestants: Vec<usize>,
    /// Indices of contestants that chose to transmit this step.
    pub selected: Vec<usize>,
}

impl HoneycombMac {
    /// Honeycomb MAC for guard zone `Δ` with threshold `T` and
    /// transmission probability `p_t`.
    ///
    /// # Panics
    /// Panics unless `Δ > 0` and `p_t ∈ (0, 1]`.
    pub fn new(delta: f64, threshold: f64, p_t: f64) -> Self {
        assert!(delta > 0.0, "Δ must be positive");
        assert!(p_t > 0.0 && p_t <= 1.0, "p_t must be in (0,1], got {p_t}");
        HoneycombMac {
            grid: HexGrid::for_guard_zone(delta),
            threshold,
            p_t,
        }
    }

    /// The paper's default transmission probability `p_t = 1/6`.
    pub fn with_paper_pt(delta: f64, threshold: f64) -> Self {
        HoneycombMac::new(delta, threshold, 1.0 / 6.0)
    }

    /// The hexagon tiling in use.
    pub fn grid(&self) -> HexGrid {
        self.grid
    }

    /// Hexagon a candidate is assigned to (the cell containing its
    /// *sender*).
    pub fn hexagon_of(&self, positions: &[Point], c: &Candidate) -> HexCoord {
        self.grid.hex_of(positions[c.link.a as usize])
    }

    /// Deterministic part of the contest: per-hexagon max-benefit winners
    /// with benefit > T. Ties broken by candidate index.
    pub fn contestants(&self, positions: &[Point], candidates: &[Candidate]) -> Vec<usize> {
        let mut best: HashMap<HexCoord, usize> = HashMap::new();
        for (i, c) in candidates.iter().enumerate() {
            let h = self.hexagon_of(positions, c);
            match best.entry(h) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let cur = *e.get();
                    if c.benefit > candidates[cur].benefit {
                        e.insert(i);
                    }
                }
            }
        }
        let mut winners: Vec<usize> = best
            .into_values()
            .filter(|&i| candidates[i].benefit > self.threshold)
            .collect();
        winners.sort_unstable();
        winners
    }

    /// Full contest round: contestants, then independent `p_t` coin flips.
    pub fn contest<R: Rng + ?Sized>(
        &self,
        positions: &[Point],
        candidates: &[Candidate],
        rng: &mut R,
    ) -> HoneycombOutcome {
        let contestants = self.contestants(positions, candidates);
        let selected = contestants
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(self.p_t))
            .collect();
        HoneycombOutcome {
            contestants,
            selected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pairs_independent;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn cand(a: u32, b: u32, benefit: f64) -> Candidate {
        Candidate {
            link: Transmission::new(a, b),
            benefit,
        }
    }

    #[test]
    fn one_winner_per_hexagon() {
        let mac = HoneycombMac::with_paper_pt(0.5, 0.0);
        // Hexagons have side 4 — all these senders are in the same cell.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(0.2, 0.2),
            Point::new(0.7, 0.2),
        ];
        let candidates = vec![cand(0, 1, 3.0), cand(2, 3, 5.0)];
        let winners = mac.contestants(&positions, &candidates);
        assert_eq!(winners, vec![1]); // higher benefit wins
    }

    #[test]
    fn threshold_filters() {
        let mac = HoneycombMac::with_paper_pt(0.5, 10.0);
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let candidates = vec![cand(0, 1, 3.0)];
        assert!(mac.contestants(&positions, &candidates).is_empty());
        let mac2 = HoneycombMac::with_paper_pt(0.5, 2.0);
        assert_eq!(mac2.contestants(&positions, &candidates), vec![0]);
    }

    #[test]
    fn distinct_hexagons_both_win() {
        let mac = HoneycombMac::with_paper_pt(0.5, 0.0);
        // Side-4 hexagons: senders 30 apart are in different cells.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(30.0, 0.0),
            Point::new(30.5, 0.0),
        ];
        let candidates = vec![cand(0, 1, 1.0), cand(2, 3, 1.0)];
        assert_eq!(mac.contestants(&positions, &candidates), vec![0, 1]);
    }

    #[test]
    fn tie_break_keeps_first_candidate() {
        let mac = HoneycombMac::with_paper_pt(0.5, 0.0);
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(0.5, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.6, 0.0),
        ];
        let candidates = vec![cand(0, 1, 2.0), cand(2, 3, 2.0)];
        assert_eq!(mac.contestants(&positions, &candidates), vec![0]);
    }

    #[test]
    fn selection_probability_close_to_pt() {
        let mac = HoneycombMac::with_paper_pt(0.5, 0.0);
        let positions = vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)];
        let candidates = vec![cand(0, 1, 1.0)];
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let trials = 6000;
        let mut hits = 0;
        for _ in 0..trials {
            hits += mac
                .contest(&positions, &candidates, &mut rng)
                .selected
                .len();
        }
        let p = hits as f64 / trials as f64;
        assert!((p - 1.0 / 6.0).abs() < 0.02, "p̂={p}");
    }

    #[test]
    fn lemma_3_7_no_interfering_contestant_with_prob_half() {
        // Pack contestants densely: one candidate pair per hexagon over a
        // 7×7 block of hexagons, all mutually CLOSE enough that adjacent
        // cells interfere. With p_t = 1/6, each contestant must see no
        // other *selected* contestant within 1+Δ with probability ≥ 1/2.
        let delta = 0.5;
        let mac = HoneycombMac::with_paper_pt(delta, 0.0);
        let grid = mac.grid();
        let mut positions = Vec::new();
        let mut candidates = Vec::new();
        for q in -3..=3 {
            for r in -3..=3 {
                let c = grid.center(HexCoord::new(q, r));
                let s = positions.len() as u32;
                positions.push(c);
                positions.push(Point::new(c.x + 0.9, c.y));
                candidates.push(cand(s, s + 1, 1.0));
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let trials = 2000;
        let mut contestant_events = 0usize;
        let mut clean = 0usize;
        for _ in 0..trials {
            let out = mac.contest(&positions, &candidates, &mut rng);
            for &i in &out.selected {
                contestant_events += 1;
                let me = candidates[i];
                let alone = out.selected.iter().all(|&j| {
                    j == i || {
                        let other = candidates[j];
                        // interfering iff some endpoint pair within 1+Δ
                        let mut far = true;
                        for &x in &[me.link.a, me.link.b] {
                            for &y in &[other.link.a, other.link.b] {
                                if positions[x as usize].dist(positions[y as usize]) <= 1.0 + delta
                                {
                                    far = false;
                                }
                            }
                        }
                        far
                    }
                });
                clean += alone as usize;
            }
        }
        assert!(contestant_events > 100);
        let p = clean as f64 / contestant_events as f64;
        assert!(
            p >= 0.5,
            "P[no interfering selected contestant] = {p} < 1/2"
        );
    }

    #[test]
    fn lemma_3_6_contestant_benefit_vs_best_independent_set() {
        // Small instance: compare the contestants' benefit sum against the
        // exact max-benefit independent set (brute force over subsets).
        let delta = 0.5;
        let mac = HoneycombMac::with_paper_pt(delta, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let mut positions = Vec::new();
        let mut candidates = Vec::new();
        for _ in 0..12 {
            let s = Point::new(rng.gen_range(0.0..12.0), rng.gen_range(0.0..12.0));
            let t = Point::new(s.x + rng.gen_range(0.1..0.9), s.y);
            let a = positions.len() as u32;
            positions.push(s);
            positions.push(t);
            candidates.push(cand(a, a + 1, rng.gen_range(0.5..5.0)));
        }
        let winners = mac.contestants(&positions, &candidates);
        let winner_benefit: f64 = winners.iter().map(|&i| candidates[i].benefit).sum();
        // Brute-force max-weight independent subset.
        let mut best = 0.0f64;
        for mask in 0u32..(1 << candidates.len()) {
            let subset: Vec<_> = (0..candidates.len())
                .filter(|&i| mask & (1 << i) != 0)
                .map(|i| candidates[i].link)
                .collect();
            if pairs_independent(&positions, &subset, delta) {
                let w: f64 = (0..candidates.len())
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| candidates[i].benefit)
                    .sum();
                best = best.max(w);
            }
        }
        assert!(best > 0.0);
        // Lemma 3.6 constant c_b: we assert a generous bound.
        assert!(
            winner_benefit * 24.0 >= best,
            "contestants {winner_benefit} vs independent optimum {best}"
        );
    }

    #[test]
    #[should_panic]
    fn bad_pt_rejected() {
        HoneycombMac::new(0.5, 0.0, 0.0);
    }

    #[test]
    #[should_panic]
    fn bad_delta_rejected() {
        HoneycombMac::new(0.0, 0.0, 0.1);
    }
}
