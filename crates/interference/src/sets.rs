//! Interference sets and the interference number of a topology
//! (paper §2.4, Lemma 2.10).
//!
//! An edge `e'` *interferes* with `e` iff the interference region of `e'`
//! contains an endpoint of `e`. Following Meyer auf der Heide et al., the
//! paper defines the interference set as the symmetric closure
//! `I(e) = {e' | e' interferes with e, or vice versa}` and the
//! *interference number* of a graph as `max_e |I(e)|`.
//!
//! Lemma 2.10: for `n` nodes uniform in the unit square, the interference
//! number of the ΘALG topology `𝒩` is `O(log n)` whp — experiment E4
//! measures exactly this.

use crate::model::{InterferenceModel, Transmission};
use adhoc_geom::{GridIndex, Point};
use adhoc_proximity::SpatialGraph;
use rayon::prelude::*;

/// An indexed edge list over a spatial graph, the shared currency of the
/// interference and MAC layers.
#[derive(Debug, Clone)]
pub struct EdgeList {
    /// Edge endpoints, each undirected edge once (`u < v`).
    pub edges: Vec<Transmission>,
    /// Euclidean lengths, parallel to `edges`.
    pub lengths: Vec<f64>,
    /// Incident edge ids per node.
    pub incident: Vec<Vec<u32>>,
}

impl EdgeList {
    /// Extract the edge list of a spatial graph.
    pub fn from_spatial(sg: &SpatialGraph) -> Self {
        let n = sg.len();
        let mut edges = Vec::with_capacity(sg.graph.num_edges());
        let mut lengths = Vec::with_capacity(sg.graph.num_edges());
        let mut incident = vec![Vec::new(); n];
        for (u, v, _) in sg.graph.edges() {
            let id = edges.len() as u32;
            edges.push(Transmission::new(u, v));
            lengths.push(sg.edge_len(u, v));
            incident[u as usize].push(id);
            incident[v as usize].push(id);
        }
        EdgeList {
            edges,
            lengths,
            incident,
        }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True iff there are no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Compute the interference sets `I(e)` for every edge of `sg` under
/// guard-zone parameter `Δ`. Grid-accelerated and rayon-parallel.
///
/// Returns one sorted, deduplicated `Vec<u32>` of interfering edge ids per
/// edge (the edge itself excluded).
pub fn interference_sets(sg: &SpatialGraph, model: InterferenceModel) -> (EdgeList, Vec<Vec<u32>>) {
    let el = EdgeList::from_spatial(sg);
    let m = el.len();
    if m == 0 {
        return (el, Vec::new());
    }
    let positions: &[Point] = &sg.points;
    let grid = GridIndex::build(positions, sg.max_range.max(1e-9));

    // For each edge e, find all edges f with an endpoint inside IR(e):
    // "e interferes f". Emit (e, f) pairs; the symmetric closure is taken
    // when merging.
    let pairs: Vec<Vec<u32>> = (0..m as u32)
        .into_par_iter()
        .map(|e_id| {
            let e = el.edges[e_id as usize];
            let r = model.guard_radius(el.lengths[e_id as usize]);
            let mut hit: Vec<u32> = Vec::new();
            for &endpoint in &[e.a, e.b] {
                grid.for_each_within(positions[endpoint as usize], r, |z| {
                    // z strictly inside the open guard disk
                    if positions[z as usize].dist(positions[endpoint as usize]) < r {
                        for &f_id in &el.incident[z as usize] {
                            if f_id != e_id {
                                hit.push(f_id);
                            }
                        }
                    }
                });
            }
            hit.sort_unstable();
            hit.dedup();
            hit
        })
        .collect();

    // Symmetric closure: I(e) = {f : e→f or f→e}.
    let mut sets: Vec<Vec<u32>> = pairs.clone();
    for (e_id, hit) in pairs.iter().enumerate() {
        for &f_id in hit {
            sets[f_id as usize].push(e_id as u32);
        }
    }
    for s in sets.iter_mut() {
        s.sort_unstable();
        s.dedup();
    }
    (el, sets)
}

/// The interference number `I = max_e |I(e)|` of a topology (0 for graphs
/// with < 2 edges).
pub fn interference_number(sg: &SpatialGraph, model: InterferenceModel) -> usize {
    let (_, sets) = interference_sets(sg, model);
    sets.iter().map(|s| s.len()).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::edge_interferes;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn uniform(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect()
    }

    #[allow(clippy::needless_range_loop)] // paired i/j index walk is the point
    fn naive_sets(sg: &SpatialGraph, model: InterferenceModel) -> Vec<Vec<u32>> {
        let el = EdgeList::from_spatial(sg);
        let m = el.len();
        let mut sets = vec![Vec::new(); m];
        for i in 0..m {
            for j in 0..m {
                if i == j {
                    continue;
                }
                let (e, f) = (el.edges[i], el.edges[j]);
                if edge_interferes(model, &sg.points, e, f)
                    || edge_interferes(model, &sg.points, f, e)
                {
                    sets[i].push(j as u32);
                }
            }
            sets[i].sort_unstable();
        }
        sets
    }

    #[test]
    fn matches_naive_oracle() {
        let points = uniform(60, 5);
        let sg = unit_disk_graph(&points, 0.25);
        let model = InterferenceModel::new(0.5);
        let (_, fast) = interference_sets(&sg, model);
        let slow = naive_sets(&sg, model);
        assert_eq!(fast, slow);
    }

    #[test]
    fn matches_naive_on_sparse_topology() {
        let points = uniform(80, 9);
        let sg = adhoc_proximity::euclidean_mst(&points, 10.0);
        let model = InterferenceModel::new(1.0);
        let (_, fast) = interference_sets(&sg, model);
        let slow = naive_sets(&sg, model);
        assert_eq!(fast, slow);
    }

    #[test]
    fn symmetric_sets() {
        let points = uniform(50, 11);
        let sg = unit_disk_graph(&points, 0.3);
        let (_, sets) = interference_sets(&sg, InterferenceModel::new(0.5));
        for (e, s) in sets.iter().enumerate() {
            for &f in s {
                assert!(sets[f as usize].contains(&(e as u32)), "I({f}) missing {e}");
            }
        }
    }

    #[test]
    fn empty_graph() {
        let sg = unit_disk_graph(&[], 1.0);
        let (el, sets) = interference_sets(&sg, InterferenceModel::new(0.5));
        assert!(el.is_empty());
        assert!(sets.is_empty());
        assert_eq!(interference_number(&sg, InterferenceModel::new(0.5)), 0);
    }

    #[test]
    fn two_far_edges_zero_interference() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(50.0, 0.0),
            Point::new(50.1, 0.0),
        ];
        let sg = unit_disk_graph(&points, 0.2);
        assert_eq!(interference_number(&sg, InterferenceModel::new(0.5)), 0);
    }

    #[test]
    fn adjacent_edges_interfere() {
        // A path 0-1-2: the two edges share node 1, which lies in both
        // interference regions.
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(0.2, 0.0),
        ];
        let sg = unit_disk_graph(&points, 0.15);
        assert_eq!(interference_number(&sg, InterferenceModel::new(0.5)), 1);
    }

    #[test]
    fn lemma_2_10_interference_grows_slowly_on_theta_topology() {
        // I(𝒩) should scale like log n: going 100 → 1600 nodes (16×)
        // should far less than double it... empirically it grows by a
        // small additive amount. We assert the ratio stays well below the
        // edge-count ratio.
        use adhoc_core::ThetaAlg;
        let model = InterferenceModel::new(0.5);
        let mut inums = Vec::new();
        for &n in &[100usize, 400, 1600] {
            let points = uniform(n, 42);
            let range = adhoc_geom::default_max_range(n);
            let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
            inums.push(interference_number(&topo.spatial, model) as f64);
        }
        assert!(
            inums[2] <= inums[0] * 4.0 + 8.0,
            "interference grew too fast: {inums:?}"
        );
    }

    #[test]
    fn udg_interference_much_larger_than_theta() {
        use adhoc_core::ThetaAlg;
        let n = 200;
        let points = uniform(n, 7);
        let range = adhoc_geom::default_max_range(n);
        let model = InterferenceModel::new(0.5);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(std::f64::consts::FRAC_PI_3, range).build(&points);
        let i_gstar = interference_number(&gstar, model);
        let i_theta = interference_number(&topo.spatial, model);
        assert!(
            i_theta * 2 < i_gstar,
            "expected I(𝒩)={i_theta} ≪ I(G*)={i_gstar}"
        );
    }

    #[test]
    fn edge_list_incidence_consistent() {
        let points = uniform(40, 13);
        let sg = unit_disk_graph(&points, 0.3);
        let el = EdgeList::from_spatial(&sg);
        assert_eq!(el.len(), sg.graph.num_edges());
        let total_incidence: usize = el.incident.iter().map(|v| v.len()).sum();
        assert_eq!(total_incidence, 2 * el.len());
        for (id, e) in el.edges.iter().enumerate() {
            assert!(el.incident[e.a as usize].contains(&(id as u32)));
            assert!(el.incident[e.b as usize].contains(&(id as u32)));
        }
    }
}
