//! The pairwise guard-zone interference model (paper §2.4).
//!
//! Simultaneous transmissions `Xᵢ → Yᵢ`: the transmission from `Xᵢ` is
//! received by `Yᵢ` iff `|Xⱼ Yᵢ| ≥ (1+Δ) |Xⱼ Yⱼ|` for every other
//! transmitter `Xⱼ`. Message exchanges are *bidirectional* (data +
//! acknowledgment), so the paper defines the interference region of a link
//! as the union of guard disks around both endpoints:
//!
//! `IR(X, Y) = C(X, (1+Δ)|XY|) ∪ C(Y, (1+Δ)|XY|)`
//!
//! and an exchange `Xᵢ ↔ Yᵢ` succeeds iff neither endpoint lies in the
//! interference region of any other active exchange.

use adhoc_geom::Point;
use serde::{Deserialize, Serialize};

/// The guard-zone model, parametrized by `Δ > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Guard-zone parameter `Δ`.
    pub delta: f64,
}

impl InterferenceModel {
    /// Model with guard zone `Δ`.
    ///
    /// # Panics
    /// Panics unless `Δ > 0` (the paper requires a strictly positive
    /// guard zone).
    pub fn new(delta: f64) -> Self {
        assert!(
            delta.is_finite() && delta > 0.0,
            "guard zone Δ must be positive, got {delta}"
        );
        InterferenceModel { delta }
    }

    /// Radius of the guard disks of a link of length `len`.
    #[inline]
    pub fn guard_radius(&self, len: f64) -> f64 {
        (1.0 + self.delta) * len
    }

    /// Is point `p` inside the interference region `IR(x, y)`?
    #[inline]
    pub fn in_interference_region(&self, p: Point, x: Point, y: Point) -> bool {
        let r = self.guard_radius(x.dist(y));
        p.in_open_disk(x, r) || p.in_open_disk(y, r)
    }
}

/// A bidirectional link exchange between two nodes (indices into a shared
/// position table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Transmission {
    pub a: u32,
    pub b: u32,
}

impl Transmission {
    pub fn new(a: u32, b: u32) -> Self {
        Transmission { a, b }
    }
}

/// Does link `e = (a₁, b₁)` interfere with link `f = (a₂, b₂)`?
///
/// True iff an endpoint of `f` falls inside `IR(e)`. Note this relation is
/// **not** symmetric: a short link's small guard zone may miss a long
/// link's endpoints while the converse holds. The interference *sets* of
/// `sets.rs` take the symmetric closure, following the paper.
pub fn edge_interferes(
    model: InterferenceModel,
    positions: &[Point],
    e: Transmission,
    f: Transmission,
) -> bool {
    let (xa, xb) = (positions[e.a as usize], positions[e.b as usize]);
    let (fa, fb) = (positions[f.a as usize], positions[f.b as usize]);
    model.in_interference_region(fa, xa, xb) || model.in_interference_region(fb, xa, xb)
}

/// Given a set of simultaneously active exchanges, return a mask of which
/// succeed under the pairwise model: exchange `i` succeeds iff no endpoint
/// of exchange `i` lies in the interference region of any other exchange.
///
/// Exchanges sharing an endpoint always kill each other (a node cannot
/// take part in two exchanges at once): the shared endpoint is trivially
/// inside the other link's interference region, but we also check
/// explicitly so zero-length degenerate links behave sensibly.
pub fn successful_transmissions(
    model: InterferenceModel,
    positions: &[Point],
    active: &[Transmission],
) -> Vec<bool> {
    let k = active.len();
    let mut ok = vec![true; k];
    for i in 0..k {
        for j in 0..k {
            if i == j {
                continue;
            }
            let (e, f) = (active[j], active[i]);
            if e.a == f.a || e.a == f.b || e.b == f.a || e.b == f.b {
                ok[i] = false;
                continue;
            }
            if edge_interferes(model, positions, e, f) {
                ok[i] = false;
            }
        }
    }
    ok
}

/// §3.4 fixed-transmission-strength independence: all nodes transmit with
/// unit range; two sender–receiver pairs are *independent* iff every node
/// of one has distance more than `1 + Δ` from every node of the other.
/// Returns true iff all pairs in the set are mutually independent and
/// every pair spans distance ≤ 1.
pub fn pairs_independent(positions: &[Point], pairs: &[Transmission], delta: f64) -> bool {
    assert!(delta > 0.0, "Δ must be positive");
    for p in pairs {
        if positions[p.a as usize].dist(positions[p.b as usize]) > 1.0 + 1e-12 {
            return false;
        }
    }
    for i in 0..pairs.len() {
        for j in (i + 1)..pairs.len() {
            let (p, q) = (pairs[i], pairs[j]);
            for &x in &[p.a, p.b] {
                for &y in &[q.a, q.b] {
                    if positions[x as usize].dist(positions[y as usize]) <= 1.0 + delta {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> InterferenceModel {
        InterferenceModel::new(0.5)
    }

    #[test]
    #[should_panic]
    fn zero_delta_rejected() {
        InterferenceModel::new(0.0);
    }

    #[test]
    fn guard_radius_scales_with_length() {
        let m = model();
        assert_eq!(m.guard_radius(2.0), 3.0);
        assert_eq!(m.guard_radius(0.0), 0.0);
    }

    #[test]
    fn interference_region_membership() {
        let m = model();
        let x = Point::new(0.0, 0.0);
        let y = Point::new(1.0, 0.0);
        // guard radius = 1.5 around each endpoint
        assert!(m.in_interference_region(Point::new(-1.0, 0.0), x, y));
        assert!(m.in_interference_region(Point::new(2.4, 0.0), x, y));
        assert!(!m.in_interference_region(Point::new(2.6, 0.0), x, y));
        assert!(!m.in_interference_region(Point::new(0.5, 2.0), x, y));
    }

    #[test]
    fn far_links_do_not_interfere() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(11.0, 0.0),
        ];
        let e = Transmission::new(0, 1);
        let f = Transmission::new(2, 3);
        assert!(!edge_interferes(model(), &positions, e, f));
        assert!(!edge_interferes(model(), &positions, f, e));
        let ok = successful_transmissions(model(), &positions, &[e, f]);
        assert_eq!(ok, vec![true, true]);
    }

    #[test]
    fn near_links_kill_each_other() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.2, 0.0),
            Point::new(2.2, 0.0),
        ];
        let e = Transmission::new(0, 1);
        let f = Transmission::new(2, 3);
        let ok = successful_transmissions(model(), &positions, &[e, f]);
        assert_eq!(ok, vec![false, false]);
    }

    #[test]
    fn asymmetric_interference() {
        // Long link's big guard zone swallows a distant short link, but
        // the short link's zone misses the long link's endpoints.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0), // long link 0-1, guard radius 15
            Point::new(14.0, 0.0),
            Point::new(14.1, 0.0), // short link 2-3, guard radius 0.15
        ];
        let long = Transmission::new(0, 1);
        let short = Transmission::new(2, 3);
        assert!(edge_interferes(model(), &positions, long, short));
        assert!(!edge_interferes(model(), &positions, short, long));
    }

    #[test]
    fn shared_endpoint_always_fails() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let ok = successful_transmissions(
            model(),
            &positions,
            &[Transmission::new(0, 1), Transmission::new(0, 2)],
        );
        assert_eq!(ok, vec![false, false]);
    }

    #[test]
    fn single_transmission_always_succeeds() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)];
        let ok = successful_transmissions(model(), &positions, &[Transmission::new(0, 1)]);
        assert_eq!(ok, vec![true]);
    }

    #[test]
    fn empty_set() {
        let ok = successful_transmissions(model(), &[], &[]);
        assert!(ok.is_empty());
    }

    #[test]
    fn fixed_range_independence() {
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(5.5, 0.0),
        ];
        let pairs = [Transmission::new(0, 1), Transmission::new(2, 3)];
        assert!(pairs_independent(&positions, &pairs, 0.5));
        // Pull the second pair closer: distance 1-2 becomes 1.2 < 1+Δ=1.5.
        let positions2 = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(2.2, 0.0),
            Point::new(2.7, 0.0),
        ];
        assert!(!pairs_independent(&positions2, &pairs, 0.5));
    }

    #[test]
    fn fixed_range_rejects_long_pair() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(1.5, 0.0)];
        assert!(!pairs_independent(
            &positions,
            &[Transmission::new(0, 1)],
            0.5
        ));
    }
}
