//! Direct emulation of `G*` schedules on `𝒩` — Theorem 2.8, executed.
//!
//! > *"Let W denote a set of packets that are successfully delivered by an
//! > arbitrary schedule of packet transmissions in `G*` in `t` steps.
//! > Then, there exists a schedule of transmissions in `𝒩` that delivers
//! > W in `O(tI + n²)` steps."*
//!
//! The constructive pipeline implemented here:
//!
//! 1. every `G*` hop of the original schedule is replaced by its θ-path
//!    in `𝒩` ([`adhoc_core::replace_edge`], Lemma 2.9);
//! 2. the edges of `𝒩` are TDMA-colored
//!    ([`adhoc_interference::tdma_schedule`], frame ≤ I+1);
//! 3. a list scheduler executes the path hops: a hop fires when its
//!    packet's previous hop is done, its edge's slot is active, and no
//!    other packet claims the same edge activation.
//!
//! [`emulate_on_theta`] returns the realized step counts so the
//! experiment suite can compare the measured slowdown against `O(I)`.

use crate::schedule::Schedule;
use adhoc_core::ThetaTopology;
use adhoc_interference::{tdma_schedule, InterferenceModel, TdmaSchedule};
use std::collections::HashMap;

/// Result of emulating a `G*` schedule on `𝒩`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmulationReport {
    /// Steps the original `G*` schedule used.
    pub original_steps: usize,
    /// Steps the emulation on `𝒩` needed.
    pub emulated_steps: usize,
    /// TDMA frame length (≤ I + 1).
    pub frame_length: u32,
    /// Packets delivered (must equal the schedule's packet count).
    pub packets: usize,
    /// Total `𝒩` hops executed.
    pub total_hops: usize,
}

impl EmulationReport {
    /// The realized slowdown `emulated / original`.
    pub fn slowdown(&self) -> f64 {
        self.emulated_steps as f64 / self.original_steps.max(1) as f64
    }
}

/// Emulate `schedule` (built on `G*`) on the ΘALG topology.
///
/// # Panics
/// Panics if a scheduled hop cannot be θ-path-replaced (which would mean
/// the hop was not a `G*` edge).
pub fn emulate_on_theta(
    topo: &ThetaTopology,
    schedule: &Schedule,
    model: InterferenceModel,
) -> EmulationReport {
    let tdma: TdmaSchedule = tdma_schedule(&topo.spatial, model);
    // Edge id lookup for 𝒩.
    let mut edge_id: HashMap<(u32, u32), u32> = HashMap::new();
    for (i, (u, v, _)) in topo.spatial.graph.edges().enumerate() {
        edge_id.insert((u.min(v), u.max(v)), i as u32);
    }

    // Expand every packet into its sequence of 𝒩 hops, ordered by the
    // original schedule (packets are identified per scheduled hop chain).
    struct Flight {
        hops: Vec<u32>, // 𝒩 edge ids in order
        next: usize,    // next hop index to execute
    }
    let mut flights: Vec<Flight> = Vec::new();
    let mut total_hops = 0usize;
    // Walk the schedule per injected packet (as in the Schedule tests).
    for (t0, injs) in schedule.injections.iter().enumerate() {
        for &(src, dest) in injs {
            let mut at = src;
            let mut t = t0;
            let mut hops: Vec<u32> = Vec::new();
            while at != dest {
                let hop = schedule.steps[t]
                    .iter()
                    .find(|h| h.from == at && h.dest == dest)
                    .expect("schedule must contain the packet's next hop");
                let path = adhoc_core::replace_edge(topo, hop.from, hop.to)
                    .expect("every G* edge must be replaceable");
                for (a, b) in path {
                    let key = (a.min(b), a.max(b));
                    hops.push(*edge_id.get(&key).expect("θ-path hop must be an 𝒩 edge"));
                }
                at = hop.to;
                t += 1;
            }
            total_hops += hops.len();
            flights.push(Flight { hops, next: 0 });
        }
    }
    let packets = flights.len();

    // List-schedule: at each step, the TDMA slot's edges each carry at
    // most one pending hop (bidirectional exchange = one use per slot).
    let mut steps = 0usize;
    let frame = tdma.frame_length.max(1);
    let mut remaining: usize = flights.iter().filter(|f| f.next < f.hops.len()).count();
    let mut used_this_step: Vec<bool> = vec![false; topo.spatial.graph.num_edges()];
    // Safety valve: the theorem bounds the emulation by O(tI + n²); give
    // a generous multiple before declaring a bug.
    let n = topo.len();
    let budget = 64 * (schedule.len() + 1) * frame as usize + 64 * n * n + 1024;
    while remaining > 0 {
        assert!(steps <= budget, "emulation exceeded its theoretical budget");
        let slot = (steps as u32) % frame;
        for u in used_this_step.iter_mut() {
            *u = false;
        }
        for f in flights.iter_mut() {
            if f.next >= f.hops.len() {
                continue;
            }
            let e = f.hops[f.next];
            if tdma.slot[e as usize] == slot && !used_this_step[e as usize] {
                used_this_step[e as usize] = true;
                f.next += 1;
                if f.next == f.hops.len() {
                    remaining -= 1;
                }
            }
        }
        steps += 1;
    }

    EmulationReport {
        original_steps: schedule.len(),
        emulated_steps: steps,
        frame_length: tdma.frame_length,
        packets,
        total_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::build_schedule;
    use crate::workloads::Workload;
    use adhoc_core::ThetaAlg;
    use adhoc_geom::distributions::NodeDistribution;
    use adhoc_proximity::unit_disk_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::f64::consts::PI;

    fn setup(n: usize, packets: usize, seed: u64) -> (ThetaTopology, Schedule) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points = NodeDistribution::unit_square().sample(n, &mut rng).unwrap();
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        let pairs = Workload::RandomPairs.pairs(n, packets, &mut rng);
        (topo, build_schedule(&gstar, 2.0, &pairs))
    }

    #[test]
    fn emulation_delivers_all_packets() {
        let (topo, schedule) = setup(80, 40, 3);
        let report = emulate_on_theta(&topo, &schedule, InterferenceModel::new(0.5));
        assert_eq!(report.packets, schedule.packets);
        assert!(report.emulated_steps > 0);
        assert!(report.total_hops >= schedule.total_path_len);
    }

    #[test]
    fn slowdown_within_theorem_regime() {
        let (topo, schedule) = setup(100, 60, 5);
        let i = adhoc_interference::interference_number(&topo.spatial, InterferenceModel::new(0.5));
        let report = emulate_on_theta(&topo, &schedule, InterferenceModel::new(0.5));
        // Theorem 2.8: emulated ≤ O(t·I + n²). We check the realized
        // slowdown against a small multiple of I (the n² term covers
        // startup; our instances are past it).
        assert!(
            report.slowdown() <= 4.0 * i as f64,
            "slowdown {} vs I = {i}",
            report.slowdown()
        );
        assert!(report.frame_length as usize <= i + 1);
    }

    #[test]
    fn empty_schedule_trivial() {
        let (topo, _) = setup(30, 0, 7);
        let report = emulate_on_theta(&topo, &Schedule::default(), InterferenceModel::new(0.5));
        assert_eq!(report.packets, 0);
        assert_eq!(report.emulated_steps, 0);
        assert_eq!(report.slowdown(), 0.0);
    }
}
