//! OPT-by-construction schedules (paper §3.1).
//!
//! The competitive statements compare an online algorithm against "a best
//! possible routing algorithm" under the *same* sequence of edge
//! activations and injections. Computing that optimum directly is NP-hard
//! (§1), so the harness inverts the problem: it first **constructs** a
//! feasible conflict-free schedule — packets routed along shortest
//! energy paths, packed into *waves* of vertex-disjoint paths so that no
//! two schedules ever share an edge or a node — and then presents exactly
//! the schedule's edge activations and injections to the online
//! algorithm. The schedule itself is a valid solution with buffer size
//! `B = 1`, so its packet count, cost, and step count are exact lower
//! bounds on OPT; measured competitive ratios are therefore conservative.

use adhoc_graph::{dijkstra, NodeId};
use adhoc_proximity::SpatialGraph;
use serde::{Deserialize, Serialize};

/// One packet movement in the reference schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledHop {
    pub from: NodeId,
    pub to: NodeId,
    /// Final destination of the packet using this hop.
    pub dest: NodeId,
    /// Cost of the edge at this step.
    pub cost: f64,
}

/// A feasible reference schedule.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Hops performed at each time step. Within one step all hops use
    /// distinct edges and distinct nodes (vertex-disjointness).
    pub steps: Vec<Vec<ScheduledHop>>,
    /// Packets injected immediately before each step, as (source, dest).
    pub injections: Vec<Vec<(NodeId, NodeId)>>,
    /// Number of packets the schedule delivers.
    pub packets: usize,
    /// Total cost over all hops.
    pub total_cost: f64,
    /// Buffer size the schedule needs (always 1 for wave schedules).
    pub opt_buffer: u32,
    /// Total hops over all packets.
    pub total_path_len: usize,
}

impl Schedule {
    /// Number of time steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Average path length `L̄` of scheduled packets.
    pub fn l_bar(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_path_len as f64 / self.packets as f64
        }
    }

    /// Average cost `C̄` per scheduled packet.
    pub fn c_bar(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.total_cost / self.packets as f64
        }
    }

    /// OPT's throughput: packets per step.
    pub fn opt_throughput(&self) -> f64 {
        if self.steps.is_empty() {
            0.0
        } else {
            self.packets as f64 / self.steps.len() as f64
        }
    }

    /// Validity check: within every step, no node appears in two hops.
    pub fn is_conflict_free(&self) -> bool {
        for step in &self.steps {
            let mut seen = std::collections::HashSet::new();
            for h in step {
                if !seen.insert(h.from) || !seen.insert(h.to) {
                    return false;
                }
            }
        }
        true
    }
}

/// Build a wave schedule on `sg` for the given (source, dest) pairs,
/// using `|uv|^κ` edge costs. Pairs whose endpoints are disconnected are
/// skipped.
pub fn build_schedule(sg: &SpatialGraph, kappa: f64, pairs: &[(NodeId, NodeId)]) -> Schedule {
    build_schedule_on(&sg.energy_graph(kappa), pairs)
}

/// Build a wave schedule with **unit edge costs** (`c(e) = 1`), so
/// `C̄ = L̄` exactly. The §3 cost model is abstract ("a cost ... that
/// represents, for example, the energy usage"); unit costs give the
/// cleanest instantiation of Theorem 3.1's parameters
/// (`γ = (T + B + δ)` exactly) and are used by experiment E6.
pub fn build_schedule_hops(sg: &SpatialGraph, pairs: &[(NodeId, NodeId)]) -> Schedule {
    build_schedule_on(&sg.hop_graph(), pairs)
}

fn build_schedule_on(energy: &adhoc_graph::Graph, pairs: &[(NodeId, NodeId)]) -> Schedule {
    let energy = energy.clone();

    // Shortest energy path per pair (cache per distinct source).
    let mut paths: Vec<(Vec<NodeId>, NodeId)> = Vec::new(); // (node path, dest)
    let mut cache: std::collections::HashMap<NodeId, adhoc_graph::ShortestPaths> =
        std::collections::HashMap::new();
    for &(s, d) in pairs {
        if s == d {
            continue;
        }
        let sp = cache.entry(s).or_insert_with(|| dijkstra(&energy, s));
        if let Some(p) = sp.path_to(d) {
            paths.push((p, d));
        }
    }

    // Greedy wave packing: a wave takes paths that are vertex-disjoint
    // from every path already in the wave.
    let mut schedule = Schedule {
        opt_buffer: 1,
        ..Default::default()
    };
    let mut remaining: Vec<usize> = (0..paths.len()).collect();
    while !remaining.is_empty() {
        let mut used_nodes = std::collections::HashSet::new();
        let mut wave: Vec<usize> = Vec::new();
        remaining.retain(|&i| {
            let (p, _) = &paths[i];
            if p.iter().any(|v| used_nodes.contains(v)) {
                true // keep for a later wave
            } else {
                used_nodes.extend(p.iter().copied());
                wave.push(i);
                false
            }
        });
        debug_assert!(!wave.is_empty());
        let wave_len = wave.iter().map(|&i| paths[i].0.len() - 1).max().unwrap();
        let base = schedule.steps.len();
        schedule.steps.resize(base + wave_len, Vec::new());
        schedule.injections.resize(base + wave_len, Vec::new());
        for &i in &wave {
            let (p, dest) = &paths[i];
            schedule.injections[base].push((p[0], *dest));
            schedule.packets += 1;
            schedule.total_path_len += p.len() - 1;
            for (k, w) in p.windows(2).enumerate() {
                let cost = energy
                    .edge_weight(w[0], w[1])
                    .expect("path edge must exist");
                schedule.steps[base + k].push(ScheduledHop {
                    from: w[0],
                    to: w[1],
                    dest: *dest,
                    cost,
                });
                schedule.total_cost += cost;
            }
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::Workload;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> SpatialGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        unit_disk_graph(&points, adhoc_geom::default_max_range(n))
    }

    #[test]
    fn schedule_is_conflict_free() {
        let sg = setup(80, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pairs = Workload::RandomPairs.pairs(80, 60, &mut rng);
        let s = build_schedule(&sg, 2.0, &pairs);
        assert!(s.packets > 0);
        assert!(s.is_conflict_free());
        assert_eq!(s.opt_buffer, 1);
    }

    #[test]
    fn accounting_consistent() {
        let sg = setup(60, 7);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let pairs = Workload::RandomPairs.pairs(60, 40, &mut rng);
        let s = build_schedule(&sg, 2.0, &pairs);
        let hops: usize = s.steps.iter().map(|v| v.len()).sum();
        assert_eq!(hops, s.total_path_len);
        let injected: usize = s.injections.iter().map(|v| v.len()).sum();
        assert_eq!(injected, s.packets);
        let cost: f64 = s.steps.iter().flat_map(|v| v.iter()).map(|h| h.cost).sum();
        assert!((cost - s.total_cost).abs() < 1e-9);
        assert!(s.l_bar() >= 1.0);
        assert!(s.c_bar() > 0.0);
        assert!(s.opt_throughput() > 0.0);
    }

    #[test]
    fn every_packet_reaches_its_destination() {
        // Replay the schedule literally and verify each injected packet's
        // hop chain ends at its destination.
        let sg = setup(50, 11);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let pairs = Workload::RandomPairs.pairs(50, 30, &mut rng);
        let s = build_schedule(&sg, 2.0, &pairs);
        // Track one packet per (inject step, source): follow hops whose
        // dest matches and that chain from the current node.
        for (t0, injs) in s.injections.iter().enumerate() {
            for &(src, dest) in injs {
                let mut at = src;
                let mut t = t0;
                while at != dest {
                    let hop = s.steps[t]
                        .iter()
                        .find(|h| h.from == at && h.dest == dest)
                        .unwrap_or_else(|| panic!("no hop for packet at {at} step {t}"));
                    at = hop.to;
                    t += 1;
                }
            }
        }
    }

    #[test]
    fn self_pairs_and_unreachable_skipped() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(0.1, 0.0),
            Point::new(9.0, 9.0), // isolated
        ];
        let sg = unit_disk_graph(&points, 0.5);
        let s = build_schedule(&sg, 2.0, &[(0, 0), (0, 2), (0, 1)]);
        assert_eq!(s.packets, 1); // only (0,1) is routable
    }

    #[test]
    fn empty_pairs_empty_schedule() {
        let sg = setup(20, 15);
        let s = build_schedule(&sg, 2.0, &[]);
        assert!(s.is_empty());
        assert_eq!(s.packets, 0);
        assert_eq!(s.l_bar(), 0.0);
        assert_eq!(s.opt_throughput(), 0.0);
    }

    #[test]
    fn waves_share_no_nodes_within_step() {
        let sg = setup(100, 17);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let pairs = Workload::Permutation.pairs(100, 100, &mut rng);
        let s = build_schedule(&sg, 2.0, &pairs);
        assert!(s.is_conflict_free());
        // B = 1 feasibility: at any step, each node buffers at most one
        // packet; conflict-freeness within steps plus wave construction
        // guarantees it structurally.
    }
}
