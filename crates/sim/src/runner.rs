//! Drive routers over reference schedules and measure competitiveness.

use crate::schedule::Schedule;
use adhoc_routing::{ActiveEdge, BalancingRouter, GreedyRouter, Metrics};

/// Result of racing an online algorithm against an OPT-by-construction
/// schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompetitiveReport {
    /// Packets OPT delivers (= all scheduled packets).
    pub opt_packets: u64,
    /// OPT's average cost per packet `C̄`.
    pub opt_avg_cost: f64,
    /// OPT's average path length `L̄`.
    pub opt_avg_path: f64,
    /// Steps in one pass of the schedule.
    pub opt_steps: u64,
    /// The online algorithm's metrics after the run.
    pub alg: Metrics,
}

impl CompetitiveReport {
    /// Throughput competitiveness `t`: delivered / OPT packets, clamped
    /// to [0, 1] (the algorithm cannot deliver packets OPT didn't inject,
    /// because injections are shared).
    pub fn throughput_ratio(&self) -> f64 {
        if self.opt_packets == 0 {
            return 1.0;
        }
        (self.alg.delivered as f64 / self.opt_packets as f64).min(1.0)
    }

    /// Cost competitiveness `c`: the algorithm's average delivery cost
    /// over OPT's `C̄`. `None` before any delivery.
    pub fn cost_ratio(&self) -> Option<f64> {
        let alg = self.alg.avg_cost_per_delivery()?;
        (self.opt_avg_cost > 0.0).then(|| alg / self.opt_avg_cost)
    }
}

/// Present the schedule's activations/injections to a `(T,γ)`-balancing
/// router. The edge activation sequence is replayed `repeats ≥ 1` times
/// (injections happen only in the first pass) — the extra passes
/// correspond to the additive slack `r` in the paper's competitive
/// definition, letting the backlog drain.
pub fn run_balancing_on_schedule(
    router: &mut BalancingRouter,
    schedule: &Schedule,
    repeats: usize,
) -> CompetitiveReport {
    let mut edges_buf: Vec<ActiveEdge> = Vec::new();
    for rep in 0..repeats.max(1) {
        for (t, hops) in schedule.steps.iter().enumerate() {
            if rep == 0 {
                for &(src, dest) in &schedule.injections[t] {
                    router.inject(src, dest);
                }
            }
            edges_buf.clear();
            edges_buf.extend(hops.iter().map(|h| ActiveEdge::new(h.from, h.to, h.cost)));
            router.step(&edges_buf);
        }
    }
    CompetitiveReport {
        opt_packets: schedule.packets as u64,
        opt_avg_cost: schedule.c_bar(),
        opt_avg_path: schedule.l_bar(),
        opt_steps: schedule.len() as u64,
        alg: router.metrics(),
    }
}

/// Same harness for the greedy baseline.
pub fn run_greedy_on_schedule(
    router: &mut GreedyRouter,
    schedule: &Schedule,
    repeats: usize,
) -> CompetitiveReport {
    let mut edges_buf: Vec<ActiveEdge> = Vec::new();
    for rep in 0..repeats.max(1) {
        for (t, hops) in schedule.steps.iter().enumerate() {
            if rep == 0 {
                for &(src, dest) in &schedule.injections[t] {
                    router.inject(src, dest);
                }
            }
            edges_buf.clear();
            edges_buf.extend(hops.iter().map(|h| ActiveEdge::new(h.from, h.to, h.cost)));
            router.step(&edges_buf);
        }
    }
    CompetitiveReport {
        opt_packets: schedule.packets as u64,
        opt_avg_cost: schedule.c_bar(),
        opt_avg_path: schedule.l_bar(),
        opt_steps: schedule.len() as u64,
        alg: router.metrics(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::build_schedule;
    use crate::workloads::Workload;
    use adhoc_geom::Point;
    use adhoc_proximity::unit_disk_graph;
    use adhoc_routing::BalancingConfig;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn setup(n: usize, seed: u64) -> (adhoc_proximity::SpatialGraph, Schedule) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        // Dense G* keeps paths short (small staircase residue). With
        // threshold T ≥ B the balancing rule needs height differences
        // > T, which single-packet flows never build: each distinct pair
        // carries 120 packets so the resident staircase ~(T+1)·L̄²/2 (the
        // additive `r` of the competitive definition) is a small
        // fraction of the volume.
        let sg = unit_disk_graph(&points, 0.5);
        let distinct = Workload::RandomPairs.pairs(n, 6, &mut rng);
        let mut pairs = Vec::new();
        for _ in 0..120 {
            pairs.extend(distinct.iter().copied());
        }
        let sched = build_schedule(&sg, 2.0, &pairs);
        (sg, sched)
    }

    fn all_dests(schedule: &Schedule) -> Vec<u32> {
        let mut d: Vec<u32> = schedule
            .injections
            .iter()
            .flat_map(|v| v.iter().map(|&(_, d)| d))
            .collect();
        d.sort_unstable();
        d.dedup();
        d
    }

    #[test]
    fn balancing_achieves_high_throughput_with_slack() {
        let (sg, sched) = setup(60, 3);
        let dests = all_dests(&sched);
        let mut router = BalancingRouter::new(
            sg.len(),
            &dests,
            BalancingConfig {
                threshold: 1.0,
                gamma: 0.5,
                capacity: 64,
            },
        );
        let report = run_balancing_on_schedule(&mut router, &sched, 30);
        assert!(report.opt_packets > 0);
        assert!(
            report.throughput_ratio() > 0.5,
            "throughput ratio {} too low",
            report.throughput_ratio()
        );
        assert!(router.conserved());
    }

    #[test]
    fn more_repeats_never_decrease_throughput() {
        let (sg, sched) = setup(40, 7);
        let dests = all_dests(&sched);
        let cfg = BalancingConfig {
            threshold: 1.0,
            gamma: 0.5,
            capacity: 64,
        };
        let mut r1 = BalancingRouter::new(sg.len(), &dests, cfg);
        let mut r2 = BalancingRouter::new(sg.len(), &dests, cfg);
        let t1 = run_balancing_on_schedule(&mut r1, &sched, 2).throughput_ratio();
        let t2 = run_balancing_on_schedule(&mut r2, &sched, 20).throughput_ratio();
        assert!(t2 >= t1 - 1e-12, "t2={t2} < t1={t1}");
    }

    #[test]
    fn greedy_runner_works() {
        let (sg, sched) = setup(40, 9);
        let dests = all_dests(&sched);
        let mut router = GreedyRouter::new(&sg.energy_graph(2.0), &dests, 64);
        let report = run_greedy_on_schedule(&mut router, &sched, 10);
        assert!(report.alg.delivered > 0);
        assert!(router.conserved());
    }

    #[test]
    fn ratios_sane() {
        let (sg, sched) = setup(40, 11);
        let dests = all_dests(&sched);
        let mut router = BalancingRouter::new(
            sg.len(),
            &dests,
            BalancingConfig {
                threshold: 1.0,
                gamma: 0.5,
                capacity: 64,
            },
        );
        let report = run_balancing_on_schedule(&mut router, &sched, 10);
        let t = report.throughput_ratio();
        assert!((0.0..=1.0).contains(&t));
        if let Some(c) = report.cost_ratio() {
            assert!(c > 0.0);
        }
    }

    #[test]
    fn empty_schedule_trivially_competitive() {
        let sched = Schedule::default();
        let mut router = BalancingRouter::new(
            4,
            &[0],
            BalancingConfig {
                threshold: 0.0,
                gamma: 0.0,
                capacity: 4,
            },
        );
        let report = run_balancing_on_schedule(&mut router, &sched, 3);
        assert_eq!(report.throughput_ratio(), 1.0);
        assert_eq!(report.alg.delivered, 0);
    }
}
