//! Reproducible scenario descriptions.

use adhoc_geom::distributions::NodeDistribution;
use adhoc_geom::Point;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A fully seeded scenario: every experiment run records one of these, so
/// any table row can be regenerated exactly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioConfig {
    /// RNG seed for node placement and all randomized protocol choices.
    pub seed: u64,
    /// Number of nodes.
    pub n: usize,
    /// Node distribution.
    pub distribution: NodeDistribution,
    /// ΘALG sector angle.
    pub theta: f64,
    /// Maximum transmission range `D`; `None` picks
    /// [`adhoc_geom::default_max_range`].
    pub range: Option<f64>,
    /// Path-loss exponent κ for energy costs.
    pub kappa: f64,
    /// Interference guard-zone parameter Δ.
    pub delta: f64,
}

impl ScenarioConfig {
    /// A reasonable default scenario: uniform nodes in the unit square,
    /// θ = π/3, κ = 2, Δ = 0.5.
    pub fn uniform(n: usize, seed: u64) -> Self {
        ScenarioConfig {
            seed,
            n,
            distribution: NodeDistribution::unit_square(),
            theta: std::f64::consts::FRAC_PI_3,
            range: None,
            kappa: 2.0,
            delta: 0.5,
        }
    }

    /// The effective transmission range.
    pub fn effective_range(&self) -> f64 {
        self.range
            .unwrap_or_else(|| adhoc_geom::default_max_range(self.n))
    }

    /// Sample the node positions for this scenario.
    pub fn sample_points(&self) -> Vec<Point> {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.distribution
            .sample(self.n, &mut rng)
            .expect("scenario distribution must be samplable")
    }

    /// A seeded RNG for protocol randomness, decorrelated from placement.
    pub fn protocol_rng(&self) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(self.seed ^ 0x9E37_79B9_7F4A_7C15)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ScenarioConfig::uniform(100, 7);
        assert_eq!(c.n, 100);
        assert_eq!(c.kappa, 2.0);
        assert!(c.effective_range() > 0.0);
        assert_eq!(c.sample_points().len(), 100);
    }

    #[test]
    fn sampling_is_deterministic() {
        let c = ScenarioConfig::uniform(50, 9);
        assert_eq!(c.sample_points(), c.sample_points());
        let c2 = ScenarioConfig::uniform(50, 10);
        assert_ne!(c.sample_points(), c2.sample_points());
    }

    #[test]
    fn explicit_range_wins() {
        let mut c = ScenarioConfig::uniform(100, 7);
        c.range = Some(0.42);
        assert_eq!(c.effective_range(), 0.42);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = ScenarioConfig::uniform(64, 3);
        c.distribution = NodeDistribution::Civilized { lambda: 0.05 };
        let s = serde_json::to_string_pretty(&c).unwrap();
        let back: ScenarioConfig = serde_json::from_str(&s).unwrap();
        // Float fields may round by one ULP through JSON text.
        assert_eq!(back.seed, c.seed);
        assert_eq!(back.n, c.n);
        assert_eq!(back.distribution, c.distribution);
        assert!((back.theta - c.theta).abs() < 1e-12);
        assert_eq!(back.range, c.range);
        assert_eq!(back.kappa, c.kappa);
        assert_eq!(back.delta, c.delta);
    }

    #[test]
    fn protocol_rng_decorrelated_from_placement() {
        use rand::RngCore;
        let c = ScenarioConfig::uniform(10, 0);
        let mut a = ChaCha8Rng::seed_from_u64(c.seed);
        let mut b = c.protocol_rng();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
