//! Source/destination workload generators.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A communication workload: how source/destination pairs are drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// Independent uniform (source, destination) pairs, source ≠ dest.
    RandomPairs,
    /// A random permutation: node `i` sends to `π(i)` (each node is the
    /// destination of exactly one source). Repeated cyclically if more
    /// pairs are requested than nodes.
    Permutation,
    /// Everyone sends to one uniformly chosen sink (the anycast/gather
    /// pattern of Awerbuch et al. that §3 generalizes).
    SingleSink,
    /// Bursty: sources drawn from one small random region (the first
    /// ⌈n/8⌉ node ids), all toward one sink — maximal local contention.
    Burst,
}

impl Workload {
    /// Generate `count` (source, destination) pairs over `n` nodes.
    ///
    /// # Panics
    /// Panics if `n < 2`.
    pub fn pairs<R: Rng + ?Sized>(&self, n: usize, count: usize, rng: &mut R) -> Vec<(u32, u32)> {
        assert!(n >= 2, "workloads need at least two nodes");
        match self {
            Workload::RandomPairs => (0..count)
                .map(|_| {
                    let s = rng.gen_range(0..n as u32);
                    let mut d = rng.gen_range(0..n as u32 - 1);
                    if d >= s {
                        d += 1;
                    }
                    (s, d)
                })
                .collect(),
            Workload::Permutation => {
                let mut perm: Vec<u32> = (0..n as u32).collect();
                loop {
                    perm.shuffle(rng);
                    // re-shuffle until derangement-ish: no fixed point
                    if perm.iter().enumerate().all(|(i, &p)| p != i as u32) {
                        break;
                    }
                }
                (0..count)
                    .map(|i| (i as u32 % n as u32, perm[i % n]))
                    .collect()
            }
            Workload::SingleSink => {
                let sink = rng.gen_range(0..n as u32);
                (0..count)
                    .map(|_| {
                        let mut s = rng.gen_range(0..n as u32 - 1);
                        if s >= sink {
                            s += 1;
                        }
                        (s, sink)
                    })
                    .collect()
            }
            Workload::Burst => {
                let sink = rng.gen_range(0..n as u32);
                let region = (n as u32 / 8).max(1);
                (0..count)
                    .map(|_| {
                        let mut s = rng.gen_range(0..region);
                        if s == sink {
                            s = (s + 1) % n as u32;
                        }
                        (s, sink)
                    })
                    .collect()
            }
        }
    }

    /// Short label for report tables.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::RandomPairs => "random-pairs",
            Workload::Permutation => "permutation",
            Workload::SingleSink => "single-sink",
            Workload::Burst => "burst",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(3)
    }

    #[test]
    fn no_self_pairs_anywhere() {
        for w in [
            Workload::RandomPairs,
            Workload::Permutation,
            Workload::SingleSink,
            Workload::Burst,
        ] {
            let pairs = w.pairs(16, 200, &mut rng());
            assert_eq!(pairs.len(), 200, "{w:?}");
            for &(s, d) in &pairs {
                assert_ne!(s, d, "{w:?} produced a self-pair");
                assert!(s < 16 && d < 16);
            }
        }
    }

    #[test]
    fn permutation_is_a_bijection_per_cycle() {
        let pairs = Workload::Permutation.pairs(10, 10, &mut rng());
        let mut dests: Vec<u32> = pairs.iter().map(|&(_, d)| d).collect();
        dests.sort_unstable();
        dests.dedup();
        assert_eq!(dests.len(), 10);
    }

    #[test]
    fn single_sink_has_one_destination() {
        let pairs = Workload::SingleSink.pairs(20, 50, &mut rng());
        let d0 = pairs[0].1;
        assert!(pairs.iter().all(|&(_, d)| d == d0));
    }

    #[test]
    fn burst_sources_concentrated() {
        let pairs = Workload::Burst.pairs(64, 100, &mut rng());
        assert!(pairs.iter().all(|&(s, _)| s < 9)); // region = 64/8 = 8 (+1 dodge)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Workload::RandomPairs.pairs(32, 64, &mut rng());
        let b = Workload::RandomPairs.pairs(32, 64, &mut rng());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn tiny_n_rejected() {
        Workload::RandomPairs.pairs(1, 4, &mut rng());
    }

    #[test]
    fn labels() {
        assert_eq!(Workload::Burst.label(), "burst");
    }
}
