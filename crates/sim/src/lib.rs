//! # adhoc-sim
//!
//! Simulation harness for the SPAA'03 reproduction. This crate turns the
//! algorithm crates into *experiments*: every theorem/lemma of the paper
//! maps to one module under [`experiments`] (ids E1–E22, see DESIGN.md),
//! each producing typed table rows that the `report` binary prints in the
//! style of a paper evaluation section.
//!
//! * [`config`] — serde-serializable scenario descriptions (seeded).
//! * [`workloads`] — source/destination pair generators (random pairs,
//!   permutations, single sink, bursts).
//! * [`schedule`] — **OPT-by-construction**: a feasible conflict-free
//!   schedule is built first (vertex-disjoint waves of shortest paths),
//!   then presented to the online algorithm as an adversarial sequence of
//!   edge activations and injections. Because the schedule is feasible,
//!   its packet count / cost / buffer usage are exact lower bounds on the
//!   optimum, making measured competitive ratios conservative.
//! * [`runner`] — drives a router over a schedule and reports
//!   throughput/cost ratios versus OPT.
//! * [`mobility`] — a random-waypoint model for dynamic-topology
//!   experiments.
//! * [`experiments`] — E1–E22 runners.

pub mod config;
pub mod emulation;
pub mod experiments;
pub mod mobility;
pub mod render;
pub mod runner;
pub mod schedule;
pub mod workloads;

pub use config::ScenarioConfig;
pub use runner::{run_balancing_on_schedule, CompetitiveReport};
pub use schedule::{build_schedule, build_schedule_hops, Schedule, ScheduledHop};
pub use workloads::Workload;
