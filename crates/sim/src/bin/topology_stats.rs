//! Scenario-driven topology inspector.
//!
//! ```text
//! topology_stats                      # built-in default scenario
//! topology_stats scenario.json       # load a ScenarioConfig
//! topology_stats scenario.json out/  # also render SVGs into out/
//! ```
//!
//! Prints the full §2 dashboard for one scenario: G* and 𝒩 sizes, degree
//! bound check, energy/distance stretch, interference numbers, TDMA frame
//! and protocol message counts — everything a deployment engineer would
//! ask before trusting the topology layer.

use adhoc_core::protocol::run_local_protocol_with_stats;
use adhoc_core::{energy_stretch, verify_lemma_2_1, ThetaAlg};
use adhoc_interference::{interference_number, tdma_schedule, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use adhoc_sim::render::{render_overlay_svg, render_svg, RenderStyle};
use adhoc_sim::ScenarioConfig;

fn main() {
    let mut args = std::env::args().skip(1);
    let cfg: ScenarioConfig = match args.next() {
        Some(path) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad scenario {path}: {e}"))
        }
        None => ScenarioConfig::uniform(400, 42),
    };
    let render_dir = args.next();

    println!("# scenario");
    println!("{}", serde_json::to_string_pretty(&cfg).unwrap());

    let points = cfg.sample_points();
    let range = cfg.effective_range();
    let gstar = unit_disk_graph(&points, range);
    let alg = ThetaAlg::new(cfg.theta, range);
    let topo = alg.build(&points);
    let model = InterferenceModel::new(cfg.delta);

    println!("\n# transmission graph G*");
    println!("nodes: {}", gstar.len());
    println!("edges: {}", gstar.graph.num_edges());
    println!("max degree: {}", gstar.graph.max_degree());
    println!("connected: {}", adhoc_graph::is_connected(&gstar.graph));

    println!("\n# ΘALG topology 𝒩 (θ = {:.4})", cfg.theta);
    let rep = verify_lemma_2_1(&topo);
    println!("edges: {}", topo.spatial.graph.num_edges());
    println!(
        "max degree: {} (Lemma 2.1 bound {}), avg {:.2}",
        rep.max_degree, rep.bound, rep.avg_degree
    );
    println!("connected: {}", rep.connected);

    let st = energy_stretch(&topo.spatial, &gstar, cfg.kappa);
    println!("\n# stretch (κ = {})", cfg.kappa);
    println!("energy-stretch: max {:.3}, avg {:.3}", st.max, st.avg);
    let ds = adhoc_core::distance_stretch(&topo.spatial, &gstar);
    println!("distance-stretch: max {:.3}, avg {:.3}", ds.max, ds.avg);

    println!("\n# interference (Δ = {})", cfg.delta);
    let i_n = interference_number(&topo.spatial, model);
    println!("I(𝒩): {}  (log₂ n = {:.1})", i_n, (cfg.n as f64).log2());
    let frame = tdma_schedule(&topo.spatial, model).frame_length;
    println!("TDMA frame: {frame} slots (bound I+1 = {})", i_n + 1);

    let (_, stats) = run_local_protocol_with_stats(&points, alg.sectors(), range);
    println!("\n# construction cost (3 local rounds)");
    println!(
        "messages: {} position + {} neighborhood + {} connection = {}",
        stats.position_broadcasts,
        stats.neighborhood_messages,
        stats.connection_messages,
        stats.total_messages()
    );

    if let Some(dir) = render_dir {
        std::fs::create_dir_all(&dir).expect("create render dir");
        let style = RenderStyle::default();
        std::fs::write(format!("{dir}/gstar.svg"), render_svg(&gstar, &style))
            .expect("write gstar.svg");
        std::fs::write(
            format!("{dir}/theta.svg"),
            render_svg(&topo.spatial, &style),
        )
        .expect("write theta.svg");
        std::fs::write(
            format!("{dir}/overlay.svg"),
            render_overlay_svg(&gstar, &topo.spatial, 800.0),
        )
        .expect("write overlay.svg");
        println!("\nrendered SVGs into {dir}/");
    }
}
