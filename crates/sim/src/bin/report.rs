//! Paper-style experiment report.
//!
//! ```text
//! report            # run every experiment at full scale
//! report --quick    # small sweeps, for smoke testing
//! report e2 e4      # only the named experiments
//! ```

use adhoc_sim::experiments::{run_by_name, ALL};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let names: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with('-'))
        .map(|s| s.as_str())
        .collect();
    let names: Vec<&str> = if names.is_empty() {
        ALL.to_vec()
    } else {
        names
    };

    println!("# adhoc-net experiment report");
    println!(
        "# reproduction of: Jia, Rajaraman, Scheideler — \"On Local Algorithms for Topology Control and Routing in Ad Hoc Networks\" (SPAA 2003)"
    );
    println!("# mode: {}\n", if quick { "quick" } else { "full" });

    for name in names {
        let start = std::time::Instant::now();
        match run_by_name(name, quick) {
            Some(table) => {
                print!("{}", table.render());
                println!("({name} computed in {:.1?})\n", start.elapsed());
            }
            None => eprintln!("unknown experiment id: {name} (known: {ALL:?})"),
        }
    }
}
