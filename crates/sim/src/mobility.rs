//! Random-waypoint mobility (the paper's "uncontrollable factors": node
//! mobility changes the topology under the routing layer).
//!
//! Each node picks a uniform waypoint in the unit square and moves toward
//! it at its own constant speed; on arrival it draws a new waypoint. The
//! dynamic-topology experiments rebuild ΘALG periodically from the moved
//! positions and verify that routing keeps delivering.

use adhoc_geom::Point;
use rand::Rng;

/// Random-waypoint state for a set of nodes in the unit square.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    positions: Vec<Point>,
    targets: Vec<Point>,
    speeds: Vec<f64>,
}

impl RandomWaypoint {
    /// Start from `positions` with per-node speeds drawn uniformly from
    /// `[min_speed, max_speed]` (distance units per step).
    pub fn new<R: Rng + ?Sized>(
        positions: Vec<Point>,
        min_speed: f64,
        max_speed: f64,
        rng: &mut R,
    ) -> Self {
        assert!(
            0.0 < min_speed && min_speed <= max_speed,
            "need 0 < min_speed ≤ max_speed"
        );
        let n = positions.len();
        let targets = (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        let speeds = (0..n)
            .map(|_| rng.gen_range(min_speed..=max_speed))
            .collect();
        RandomWaypoint {
            positions,
            targets,
            speeds,
        }
    }

    /// Current node positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Advance every node one step toward its waypoint; nodes that arrive
    /// draw a fresh waypoint.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.positions.len() {
            let p = self.positions[i];
            let t = self.targets[i];
            let d = p.dist(t);
            let s = self.speeds[i];
            if d <= s {
                self.positions[i] = t;
                self.targets[i] = Point::new(rng.gen::<f64>(), rng.gen::<f64>());
            } else {
                let dir = p.to(t);
                self.positions[i] = p + dir * (s / d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn start(n: usize, seed: u64) -> (RandomWaypoint, ChaCha8Rng) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let pts = (0..n)
            .map(|_| Point::new(rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        (RandomWaypoint::new(pts, 0.01, 0.05, &mut rng), rng)
    }

    #[test]
    fn nodes_stay_in_unit_square() {
        let (mut rw, mut rng) = start(30, 3);
        for _ in 0..500 {
            rw.step(&mut rng);
        }
        for p in rw.positions() {
            assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
        }
    }

    #[test]
    fn nodes_actually_move() {
        let (mut rw, mut rng) = start(10, 5);
        let before = rw.positions().to_vec();
        for _ in 0..10 {
            rw.step(&mut rng);
        }
        let moved = rw
            .positions()
            .iter()
            .zip(&before)
            .filter(|(a, b)| a.dist(**b) > 1e-9)
            .count();
        assert_eq!(moved, 10);
    }

    #[test]
    fn step_length_bounded_by_speed() {
        let (mut rw, mut rng) = start(10, 7);
        let before = rw.positions().to_vec();
        rw.step(&mut rng);
        for (a, b) in rw.positions().iter().zip(&before) {
            assert!(a.dist(*b) <= 0.05 + 1e-12);
        }
    }

    /// Round-trip: sample an E11-style random-waypoint trajectory into
    /// frames, compile it with `ChurnPlan::from_waypoint_trace`, replay
    /// it through the runtime, and check the runtime's final geometry is
    /// exactly the trace's last frame.
    #[test]
    fn waypoint_trace_round_trips_through_the_runtime() {
        use adhoc_runtime::{Actor, ChurnPlan, Ctx, FaultConfig, Message, Runtime};

        #[derive(Debug, Clone)]
        struct Quiet;
        impl Message for Quiet {}
        #[derive(Debug, Clone)]
        struct Silent;
        impl Actor for Silent {
            type Msg = Quiet;
            fn on_message(&mut self, _ctx: &mut Ctx<Quiet>, _from: u32, _msg: Quiet) {}
        }

        let (mut rw, mut rng) = start(12, 11);
        let mut frames = vec![rw.positions().to_vec()];
        for _ in 0..8 {
            for _ in 0..5 {
                rw.step(&mut rng);
            }
            frames.push(rw.positions().to_vec());
        }
        let plan = ChurnPlan::from_waypoint_trace(&frames, 4, 4);
        assert!(!plan.is_empty(), "a moving trace must schedule drifts");

        let mut rt = Runtime::new(vec![Silent; 12], &frames[0], 0.3, FaultConfig::ideal(), 77);
        rt.set_churn_plan(&plan);
        rt.start();
        rt.run();
        assert_eq!(rt.positions(), frames.last().unwrap().as_slice());
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        RandomWaypoint::new(vec![Point::ORIGIN], 0.0, 0.1, &mut rng);
    }
}
