//! SVG rendering of spatial topologies.
//!
//! Produces self-contained SVG documents for visual inspection of the
//! structures the paper reasons about: `G*` vs `𝒩`, the hexagon tiling of
//! Figure 5, and per-edge highlighting (e.g. θ-path replacements). Pure
//! string generation — no graphics dependencies.

use adhoc_geom::{HexCoord, HexGrid, Point};
use adhoc_proximity::SpatialGraph;
use std::fmt::Write as _;

/// Style options for [`render_svg`].
#[derive(Debug, Clone)]
pub struct RenderStyle {
    /// Canvas width/height in pixels.
    pub size: f64,
    /// Node radius in pixels.
    pub node_radius: f64,
    /// Edge stroke color (CSS).
    pub edge_color: String,
    /// Node fill color (CSS).
    pub node_color: String,
    /// Edge stroke width in pixels.
    pub edge_width: f64,
}

impl Default for RenderStyle {
    fn default() -> Self {
        RenderStyle {
            size: 800.0,
            node_radius: 3.0,
            edge_color: "#3366cc".into(),
            node_color: "#222222".into(),
            edge_width: 1.0,
        }
    }
}

/// Affine map from the point set's bounding box (plus a margin) onto the
/// canvas.
struct Viewport {
    min_x: f64,
    min_y: f64,
    scale: f64,
    size: f64,
}

impl Viewport {
    fn fit(points: &[Point], size: f64) -> Viewport {
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        for p in points {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if points.is_empty() {
            return Viewport {
                min_x: 0.0,
                min_y: 0.0,
                scale: 1.0,
                size,
            };
        }
        let span = (max_x - min_x).max(max_y - min_y).max(1e-9);
        let margin = 0.05 * span;
        Viewport {
            min_x: min_x - margin,
            min_y: min_y - margin,
            scale: size / (span + 2.0 * margin),
            size,
        }
    }

    fn x(&self, p: Point) -> f64 {
        (p.x - self.min_x) * self.scale
    }

    /// SVG's y axis points down; flip so the plane renders upright.
    fn y(&self, p: Point) -> f64 {
        self.size - (p.y - self.min_y) * self.scale
    }
}

/// Render a spatial graph as an SVG document.
pub fn render_svg(sg: &SpatialGraph, style: &RenderStyle) -> String {
    let vp = Viewport::fit(&sg.points, style.size);
    let mut out = String::with_capacity(1024 + 64 * sg.graph.num_edges());
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{0}" height="{0}" viewBox="0 0 {0} {0}">"#,
        style.size
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    for (u, v, _) in sg.graph.edges() {
        let (a, b) = (sg.pos(u), sg.pos(v));
        let _ = writeln!(
            out,
            r#"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="{}" stroke-width="{}"/>"#,
            vp.x(a),
            vp.y(a),
            vp.x(b),
            vp.y(b),
            style.edge_color,
            style.edge_width
        );
    }
    for &p in &sg.points {
        let _ = writeln!(
            out,
            r#"<circle cx="{:.2}" cy="{:.2}" r="{}" fill="{}"/>"#,
            vp.x(p),
            vp.y(p),
            style.node_radius,
            style.node_color
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render two topologies on the same node set side-by-side-in-one-canvas:
/// `background` (light) under `foreground` (strong) — the canonical
/// "G* vs 𝒩" picture.
pub fn render_overlay_svg(
    background: &SpatialGraph,
    foreground: &SpatialGraph,
    size: f64,
) -> String {
    assert_eq!(
        background.len(),
        foreground.len(),
        "overlay requires a shared node set"
    );
    let vp = Viewport::fit(&background.points, size);
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{0}" height="{0}" viewBox="0 0 {0} {0}">"#,
        size
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    for (u, v, _) in background.graph.edges() {
        let (a, b) = (background.pos(u), background.pos(v));
        let _ = writeln!(
            out,
            r##"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="#dddddd" stroke-width="0.6"/>"##,
            vp.x(a),
            vp.y(a),
            vp.x(b),
            vp.y(b)
        );
    }
    for (u, v, _) in foreground.graph.edges() {
        let (a, b) = (foreground.pos(u), foreground.pos(v));
        let _ = writeln!(
            out,
            r##"<line x1="{:.2}" y1="{:.2}" x2="{:.2}" y2="{:.2}" stroke="#cc3333" stroke-width="1.4"/>"##,
            vp.x(a),
            vp.y(a),
            vp.x(b),
            vp.y(b)
        );
    }
    for &p in &background.points {
        let _ = writeln!(
            out,
            r##"<circle cx="{:.2}" cy="{:.2}" r="2.5" fill="#222222"/>"##,
            vp.x(p),
            vp.y(p)
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Render the honeycomb tiling (paper Fig. 5) behind a point set: hexagon
/// outlines for every cell that contains at least one node.
pub fn render_hex_tiling_svg(points: &[Point], grid: HexGrid, size: f64) -> String {
    let vp = Viewport::fit(points, size);
    let mut cells: Vec<HexCoord> = points.iter().map(|&p| grid.hex_of(p)).collect();
    cells.sort_unstable();
    cells.dedup();
    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{0}" height="{0}" viewBox="0 0 {0} {0}">"#,
        size
    );
    let _ = writeln!(out, r#"<rect width="100%" height="100%" fill="white"/>"#);
    for &cell in &cells {
        let c = grid.center(cell);
        let mut path = String::from("M ");
        for k in 0..6 {
            // pointy-top hexagon corners at 30° + 60°k
            let ang = std::f64::consts::FRAC_PI_6 + k as f64 * std::f64::consts::FRAC_PI_3;
            let corner = Point::new(c.x + grid.side() * ang.cos(), c.y + grid.side() * ang.sin());
            if k > 0 {
                path.push_str("L ");
            }
            let _ = write!(path, "{:.2} {:.2} ", vp.x(corner), vp.y(corner));
        }
        path.push('Z');
        let _ = writeln!(
            out,
            r##"<path d="{path}" fill="#f5f0e0" stroke="#bbaa66" stroke-width="1"/>"##
        );
    }
    for &p in points {
        let _ = writeln!(
            out,
            r##"<circle cx="{:.2}" cy="{:.2}" r="3" fill="#222222"/>"##,
            vp.x(p),
            vp.y(p)
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adhoc_geom::distributions::NodeDistribution;
    use adhoc_proximity::unit_disk_graph;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_graph() -> SpatialGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let points = NodeDistribution::unit_square()
            .sample(30, &mut rng)
            .unwrap();
        unit_disk_graph(&points, 0.3)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let sg = sample_graph();
        let svg = render_svg(&sg, &RenderStyle::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), sg.len());
        assert_eq!(svg.matches("<line").count(), sg.graph.num_edges());
    }

    #[test]
    fn coordinates_within_canvas() {
        let sg = sample_graph();
        let style = RenderStyle {
            size: 500.0,
            ..Default::default()
        };
        let svg = render_svg(&sg, &style);
        for cap in svg.split("cx=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!((0.0..=500.0).contains(&x), "x={x} escapes the canvas");
        }
    }

    #[test]
    fn overlay_draws_both_layers() {
        let sg = sample_graph();
        let topo = adhoc_core::ThetaAlg::new(std::f64::consts::FRAC_PI_3, 0.3).build(&sg.points);
        let svg = render_overlay_svg(&sg, &topo.spatial, 600.0);
        assert_eq!(
            svg.matches("<line").count(),
            sg.graph.num_edges() + topo.spatial.graph.num_edges()
        );
        assert!(svg.contains("#cc3333")); // foreground styling present
    }

    #[test]
    #[should_panic]
    fn overlay_mismatched_nodes_panics() {
        let sg = sample_graph();
        let other = unit_disk_graph(&sg.points[..10], 0.3);
        render_overlay_svg(&sg, &other, 600.0);
    }

    #[test]
    fn hex_tiling_covers_occupied_cells() {
        let sg = sample_graph();
        let grid = HexGrid::for_guard_zone(0.5);
        let svg = render_hex_tiling_svg(&sg.points, grid, 600.0);
        let mut cells: Vec<_> = sg.points.iter().map(|&p| grid.hex_of(p)).collect();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(svg.matches("<path").count(), cells.len());
        assert_eq!(svg.matches("<circle").count(), sg.len());
    }

    #[test]
    fn empty_input_renders_empty_canvas() {
        let sg = SpatialGraph::new(vec![], adhoc_graph::GraphBuilder::new(0).build(), 1.0);
        let svg = render_svg(&sg, &RenderStyle::default());
        assert!(svg.contains("<svg"));
        assert_eq!(svg.matches("<circle").count(), 0);
    }
}
