//! **E2 — Theorem 2.2**: `𝒩` has O(1) energy-stretch for *any*
//! distribution of nodes and any path-loss exponent `κ ≥ 2`.
//!
//! Comparison columns: the Yao graph `𝒩₁` (spanner, unbounded degree),
//! the Gabriel graph (energy-stretch exactly 1 by definition, unbounded
//! degree) and the Euclidean MST (bounded degree, *unbounded* stretch) —
//! `𝒩` is the only structure with both bounded degree and O(1) stretch.

use super::table::{f2, f3, theta_label, Table};
use adhoc_core::stretch::sampled_energy_stretch;
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_proximity::{euclidean_mst, unit_disk_graph, yao_graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E2 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick { &[150] } else { &[200, 400] };
    let kappas: &[f64] = if quick { &[2.0] } else { &[2.0, 3.0, 4.0] };
    let theta = PI / 3.0;
    let dists = [
        NodeDistribution::unit_square(),
        NodeDistribution::Clustered {
            clusters: 6,
            sigma: 0.03,
        },
        NodeDistribution::GridJitter { jitter: 0.3 },
        NodeDistribution::Ring { radius: 0.45 },
    ];

    let mut table = Table::new(
        "E2 (Theorem 2.2): max energy-stretch vs G* — 𝒩 stays O(1); Gabriel = 1.0 reference; MST unbounded",
        &[
            "dist", "n", "κ", "θ", "stretch(𝒩)", "stretch(𝒩₁/Yao)", "stretch(Gabriel)",
            "stretch(MST)", "maxdeg(𝒩)", "maxdeg(Gabriel)",
        ],
    );

    for dist in &dists {
        for &n in sizes {
            let mut rng = ChaCha8Rng::seed_from_u64(2000 + n as u64);
            let points = dist.sample(n, &mut rng).expect("sampling");
            // Full range so G* is connected on every distribution
            // (Theorem 2.2 is about stretch, not range-limited
            // connectivity).
            let range = 10.0;
            let gstar = unit_disk_graph(&points, range);
            let alg = ThetaAlg::new(theta, range);
            let topo = alg.build(&points);
            let yao = yao_graph(&points, alg.sectors(), range);
            let gabriel = adhoc_proximity::gabriel_graph(&points, range);
            let mst = euclidean_mst(&points, range);
            let sources: Vec<u32> = (0..n as u32).step_by((n / 40).max(1)).collect();
            for &kappa in kappas {
                let st_n = sampled_energy_stretch(&topo.spatial, &gstar, kappa, &sources);
                let st_yao = sampled_energy_stretch(&yao, &gstar, kappa, &sources);
                let st_gab = sampled_energy_stretch(&gabriel, &gstar, kappa, &sources);
                let st_mst = sampled_energy_stretch(&mst, &gstar, kappa, &sources);
                table.push(vec![
                    dist.label().to_string(),
                    n.to_string(),
                    format!("{kappa:.0}"),
                    theta_label(theta),
                    f3(st_n.max),
                    f3(st_yao.max),
                    f3(st_gab.max),
                    f2(st_mst.max),
                    topo.spatial.graph.max_degree().to_string(),
                    gabriel.graph.max_degree().to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_stretch_shapes() {
        let t = run(true);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let st_n: f64 = row[4].parse().unwrap();
            let st_gab: f64 = row[6].parse().unwrap();
            let st_mst: f64 = row[7].parse().unwrap();
            // Shape of the claim: 𝒩 constant (small), Gabriel = 1, and
            // MST is the worst of the bunch.
            assert!((1.0..8.0).contains(&st_n), "stretch(𝒩) = {st_n}");
            assert!((st_gab - 1.0).abs() < 1e-6, "Gabriel stretch {st_gab}");
            assert!(st_mst >= st_n - 1e-9, "MST should not beat 𝒩: {row:?}");
        }
    }
}
