//! Experiment runners E1–E22.
//!
//! The paper is theoretical: its "evaluation" is a set of theorems. Each
//! experiment here regenerates one claim as a measured table (see
//! DESIGN.md §4 for the full index):
//!
//! | id  | claim |
//! |-----|-------|
//! | E1  | Lemma 2.1 — `𝒩` connected, degree ≤ 4π/θ |
//! | E2  | Theorem 2.2 — O(1) energy-stretch, any distribution |
//! | E3  | Theorem 2.7 — O(1) distance-stretch, civilized graphs |
//! | E4  | Lemma 2.10 — interference number O(log n) whp |
//! | E5  | Lemma 2.9 / Theorem 2.8 — θ-path congestion & emulation |
//! | E6  | Theorem 3.1 — (T,γ)-balancing competitiveness |
//! | E7  | Lemma 3.2 / Theorem 3.3 — randomized MAC |
//! | E8  | Corollaries 3.4/3.5 — end-to-end ΘALG + (T,γ,I) |
//! | E9  | Lemmas 3.6/3.7, Theorem 3.8 — honeycomb algorithm |
//! | E10 | Lemmas 2.3–2.6 + Figure 5 — geometric foundations |
//! | E11 | extension — mobility / dynamic topologies |
//! | E12 | ablation — stale-height control-traffic trade (§3.2 remark) |
//! | E13 | open problem §2 — is 𝒩 a spanner? + global comparators |
//! | E14 | model validation — protocol (Δ) vs physical (SINR) model |
//! | E15 | extensions — latency percentiles, anycast generalization |
//! | E16 | Theorem 2.8 constructive — TDMA coloring + min-cut ceiling |
//! | E17 | ablation — the cost term γ (γ=0 = prior cost-oblivious work) |
//! | E18 | baseline contrast — greedy geographic forwarding vs balancing on voids |
//! | E19 | Theorem 2.8 end-to-end — G*-schedule emulation on 𝒩, slowdown vs O(I) |
//! | E20 | runtime — ΘALG + (T,γ)-balancing over faulty links (loss sweep) |
//! | E21 | runtime — churn/mobility: ΘALG re-convergence + routing over an eroding topology |
//! | E22 | runtime — Byzantine balancers: lying height gossip vs quarantine defense |

pub mod e10_geometry;
pub mod e11_mobility;
pub mod e12_stale_heights;
pub mod e13_spanner_probe;
pub mod e14_sinr;
pub mod e15_latency_anycast;
pub mod e16_tdma;
pub mod e17_gamma_ablation;
pub mod e18_geographic;
pub mod e19_emulation;
pub mod e1_degree;
pub mod e20_runtime_faults;
pub mod e21_churn;
pub mod e22_adversary;
pub mod e2_energy_stretch;
pub mod e3_distance_stretch;
pub mod e4_interference;
pub mod e5_theta_paths;
pub mod e6_balancing;
pub mod e7_randomized_mac;
pub mod e8_end_to_end;
pub mod e9_honeycomb;
pub mod table;

pub use table::Table;

/// Run an experiment by id ("e1" … "e10"); `quick` shrinks the parameter
/// sweep for smoke tests.
pub fn run_by_name(name: &str, quick: bool) -> Option<Table> {
    match name.to_ascii_lowercase().as_str() {
        "e1" => Some(e1_degree::run(quick)),
        "e2" => Some(e2_energy_stretch::run(quick)),
        "e3" => Some(e3_distance_stretch::run(quick)),
        "e4" => Some(e4_interference::run(quick)),
        "e5" => Some(e5_theta_paths::run(quick)),
        "e6" => Some(e6_balancing::run(quick)),
        "e7" => Some(e7_randomized_mac::run(quick)),
        "e8" => Some(e8_end_to_end::run(quick)),
        "e9" => Some(e9_honeycomb::run(quick)),
        "e10" => Some(e10_geometry::run(quick)),
        "e11" => Some(e11_mobility::run(quick)),
        "e12" => Some(e12_stale_heights::run(quick)),
        "e13" => Some(e13_spanner_probe::run(quick)),
        "e14" => Some(e14_sinr::run(quick)),
        "e15" => Some(e15_latency_anycast::run(quick)),
        "e16" => Some(e16_tdma::run(quick)),
        "e17" => Some(e17_gamma_ablation::run(quick)),
        "e18" => Some(e18_geographic::run(quick)),
        "e19" => Some(e19_emulation::run(quick)),
        "e20" => Some(e20_runtime_faults::run(quick)),
        "e21" => Some(e21_churn::run(quick)),
        "e22" => Some(e22_adversary::run(quick)),
        _ => None,
    }
}

/// All experiment ids in order.
pub const ALL: [&str; 22] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21", "e22",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_by_name("e99", true).is_none());
        assert!(run_by_name("", true).is_none());
    }

    #[test]
    fn name_matching_case_insensitive() {
        assert!(run_by_name("E10", true).is_some());
    }
}
