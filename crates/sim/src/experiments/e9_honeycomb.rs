//! **E9 — Lemmas 3.6/3.7, Theorem 3.8**: the honeycomb algorithm at fixed
//! transmission strength.
//!
//! Three measurements on a dense multi-hexagon deployment:
//! 1. contestants' benefit sum vs the best independent pair set
//!    (Lemma 3.6's constant `c_b`) on small instances, exactly;
//! 2. probability that a selected contestant survives (Lemma 3.7: ≥ 1/2
//!    when `p_t ≤ 1/6`);
//! 3. sustained goodput of the full router.

use super::table::{f3, Table};
use adhoc_geom::{HexCoord, Point};
use adhoc_interference::hexmac::{Candidate, HoneycombMac};
use adhoc_interference::model::{pairs_independent, Transmission};
use adhoc_routing::{HoneycombConfig, HoneycombRouter};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Run E9 and return the table.
pub fn run(quick: bool) -> Table {
    let delta = 0.5;
    let trials = if quick { 800 } else { 3000 };
    let steps = if quick { 3000 } else { 10000 };

    let mut table = Table::new(
        "E9 (Lemmas 3.6/3.7, Thm 3.8): honeycomb algorithm at fixed unit transmission strength",
        &["measurement", "value", "paper bound", "holds"],
    );

    // --- Lemma 3.6: contestant benefit vs exact independent optimum ----
    {
        let mac = HoneycombMac::with_paper_pt(delta, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9001);
        let mut worst_ratio = f64::INFINITY;
        for _ in 0..20 {
            let mut positions = Vec::new();
            let mut candidates = Vec::new();
            for _ in 0..12 {
                let s = Point::new(rng.gen_range(0.0..10.0), rng.gen_range(0.0..10.0));
                let t = Point::new(s.x + rng.gen_range(0.1..0.9), s.y);
                let a = positions.len() as u32;
                positions.push(s);
                positions.push(t);
                candidates.push(Candidate {
                    link: Transmission::new(a, a + 1),
                    benefit: rng.gen_range(0.5..5.0),
                });
            }
            let winners = mac.contestants(&positions, &candidates);
            let wb: f64 = winners.iter().map(|&i| candidates[i].benefit).sum();
            let mut best = 0.0f64;
            for mask in 0u32..(1 << candidates.len()) {
                let subset: Vec<_> = (0..candidates.len())
                    .filter(|&i| mask & (1 << i) != 0)
                    .map(|i| candidates[i].link)
                    .collect();
                if pairs_independent(&positions, &subset, delta) {
                    let w: f64 = (0..candidates.len())
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| candidates[i].benefit)
                        .sum();
                    best = best.max(w);
                }
            }
            if best > 0.0 {
                worst_ratio = worst_ratio.min(wb / best);
            }
        }
        table.push(vec![
            "Lemma 3.6: min contestant/OPT benefit ratio".into(),
            f3(worst_ratio),
            "≥ 1/c_b (const)".into(),
            (worst_ratio > 0.05).to_string(),
        ]);
    }

    // --- Lemma 3.7: survival probability of selected contestants -------
    {
        let mac = HoneycombMac::with_paper_pt(delta, 0.0);
        let grid = mac.grid();
        let mut positions = Vec::new();
        let mut candidates = Vec::new();
        for q in -3..=3 {
            for r in -3..=3 {
                let c = grid.center(HexCoord::new(q, r));
                let s = positions.len() as u32;
                positions.push(c);
                positions.push(Point::new(c.x + 0.9, c.y));
                candidates.push(Candidate {
                    link: Transmission::new(s, s + 1),
                    benefit: 1.0,
                });
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(9002);
        let mut selected_events = 0usize;
        let mut survived = 0usize;
        for _ in 0..trials {
            let out = mac.contest(&positions, &candidates, &mut rng);
            let sel: Vec<Transmission> = out.selected.iter().map(|&i| candidates[i].link).collect();
            for (k, _) in out.selected.iter().enumerate() {
                selected_events += 1;
                let me = sel[k];
                let clean = sel.iter().enumerate().all(|(j, other)| {
                    j == k || {
                        let mut far = true;
                        for &x in &[me.a, me.b] {
                            for &y in &[other.a, other.b] {
                                if positions[x as usize].dist(positions[y as usize]) <= 1.0 + delta
                                {
                                    far = false;
                                }
                            }
                        }
                        far
                    }
                });
                survived += clean as usize;
            }
        }
        let p = survived as f64 / selected_events.max(1) as f64;
        table.push(vec![
            "Lemma 3.7: P[selected contestant survives]".into(),
            f3(p),
            "≥ 1/2".into(),
            (p >= 0.5).to_string(),
        ]);
    }

    // --- Theorem 3.8: sustained goodput of the full router -------------
    {
        // 8×8 grid deployment, spacing 0.8 (unit-range neighbors), four
        // corner sinks.
        let mut positions = Vec::new();
        for i in 0..8 {
            for j in 0..8 {
                positions.push(Point::new(0.8 * i as f64, 0.8 * j as f64));
            }
        }
        let dests = [0u32, 7, 56, 63];
        let mut router = HoneycombRouter::new(
            &positions,
            &dests,
            HoneycombConfig {
                threshold: 0.5,
                capacity: 10,
                delta,
                p_t: 1.0 / 6.0,
            },
        );
        let mut rng = ChaCha8Rng::seed_from_u64(9003);
        for s in 0..steps {
            let src = 9 + (s % 45) as u32; // interior nodes
            let d = dests[s % 4];
            if src != d {
                router.inject(src, d);
            }
            router.step(&mut rng);
        }
        let m = router.metrics();
        let goodput = m.delivered as f64 / steps as f64;
        table.push(vec![
            "Thm 3.8: goodput (deliveries/step, 8×8 grid)".into(),
            f3(goodput),
            "> 0 (const fraction)".into(),
            (goodput > 0.005).to_string(),
        ]);
        let fail_rate = m.failed_sends as f64 / (m.sends + m.failed_sends).max(1) as f64;
        table.push(vec![
            "Thm 3.8: collision rate among transmissions".into(),
            f3(fail_rate),
            "≤ 1/2".into(),
            (fail_rate <= 0.5).to_string(),
        ]);
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_bounds_hold() {
        let t = run(true);
        assert_eq!(t.rows.len(), 4);
        for row in &t.rows {
            assert_eq!(row[3], "true", "bound failed: {row:?}");
        }
    }
}
