//! **E22 — Byzantine adversaries in the balancing plane**: the paper
//! prices faults as lost links, never as lies. This experiment arms a
//! seeded [`AdversaryPlan`] — compromised nodes run the honest `(T,γ)`
//! code, but their *radios* forge traffic — and sweeps attack type ×
//! Byzantine fraction × defense on/off over the ΘALG topology:
//!
//! * **deflate** — advertise empty buffers, attract traffic, let the
//!   honest buffer overflow; **blackhole** — same lure, but eat every
//!   attracted packet;
//! * **inflate** — advertise full buffers, repel traffic off the edge;
//! * **replay** — freeze and re-gossip the height frame captured at
//!   compromise time, starving the gradient of fresh information;
//! * **drop** — forward gossip faithfully, silently discard `Packet`s
//!   from targeted sources;
//! * **equivocate** — tell even neighbors "empty" and odd ones "full".
//!
//! The defense layer ([`DefenseConfig`]) runs three local detectors —
//! height plausibility, starvation probing, and cross-neighbor
//! attestation — whose suspicion score quarantines a peer exactly as
//! churn erodes a departed neighbor. Detected nodes are then fed to the
//! ΘALG churn engine as crashes, measuring re-convergence around the
//! excised liars. Every cell reports the delivered fraction, the
//! `stolen`/`blackholed` custody classes, and the conservation ledger,
//! which must balance *exactly* even while packets are being eaten.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_routing::BalancingConfig;
use adhoc_runtime::{
    run_gossip_balancing_adversarial, run_theta_churn, shard_threads_from_env, uniform_workload,
    AdversaryPlan, Attack, ChurnPlan, DefenseConfig, DelayDist, FaultConfig, GossipConfig,
    GossipRun, ThetaTiming,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// The attack menu (label, behavior).
fn attacks(n: usize) -> Vec<(&'static str, Attack)> {
    // The selective dropper targets the even half of the network.
    let evens: Vec<u32> = (0..n as u32).step_by(2).collect();
    vec![
        ("deflate", Attack::Deflate { blackhole: false }),
        ("blackhole", Attack::Deflate { blackhole: true }),
        ("inflate", Attack::Inflate),
        ("replay", Attack::Replay),
        ("drop", Attack::SelectiveDrop { sources: evens }),
        ("equivocate", Attack::Equivocate),
    ]
}

/// Compromise takes effect shortly after start-up, once honest gossip
/// has primed every cache (a lie needs an audience).
const COMPROMISE_AT: u64 = 50;

/// One sweep cell.
struct AdvPoint {
    attack: &'static str,
    fraction: f64,
    defended: bool,
    compromised: usize,
    detected: usize,
    gossip: GossipRun,
    /// ΘALG re-convergence around the detected nodes (defense-on cells
    /// with at least one detection).
    reconvergences: Option<u64>,
}

/// Execute the sweep (shared by [`run`] and the acceptance test).
fn sweep(quick: bool) -> Vec<AdvPoint> {
    let n = if quick { 40 } else { 120 };
    let inject_steps = if quick { 250 } else { 1500 };
    let drain_steps = if quick { 450 } else { 800 };
    let steps = inject_steps + drain_steps;
    let fractions: &[f64] = if quick {
        &[0.0, 0.15]
    } else {
        &[0.0, 0.05, 0.1, 0.2]
    };

    let mut rng = ChaCha8Rng::seed_from_u64(20_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(PI / 3.0, range);
    let direct = alg.build(&points);
    let threads = shard_threads_from_env();

    let dests = [0u32];
    let workload = uniform_workload(n, &dests, inject_steps, 2, 99);
    let base_cfg = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        steps,
    );

    let mut out = Vec::new();
    for (label, attack) in attacks(n) {
        for &fraction in fractions {
            let count = (fraction * n as f64).round() as usize;
            let adversary = if count == 0 {
                AdversaryPlan::default()
            } else {
                // Node 0 is the sink: compromising the destination is a
                // different (trivially lost) game.
                AdversaryPlan::random(n, count, attack.clone(), COMPROMISE_AT, &[0], 31_000)
            };
            for defended in [false, true] {
                let cfg = if defended {
                    base_cfg.with_defense(DefenseConfig::default())
                } else {
                    base_cfg
                };
                let gossip = run_gossip_balancing_adversarial(
                    &direct.spatial,
                    &dests,
                    cfg,
                    &workload,
                    FaultConfig::ideal(),
                    4242,
                    &ChurnPlan::default(),
                    &adversary,
                    threads,
                );
                let compromised = adversary.compromised();
                let detected = gossip
                    .quarantined_nodes
                    .iter()
                    .filter(|q| compromised.contains(q))
                    .count();
                // Excise the detected liars from the topology layer:
                // each becomes a crash the ΘALG churn engine must
                // re-converge around, exactly like E21's failures.
                let reconvergences = if defended && detected > 0 {
                    let mut plan = ChurnPlan::new();
                    for (i, &node) in gossip
                        .quarantined_nodes
                        .iter()
                        .filter(|q| compromised.contains(q))
                        .enumerate()
                    {
                        plan = plan.crash(200 * (i as u64 + 1), node);
                    }
                    let theta = run_theta_churn(
                        &points,
                        alg.sectors(),
                        range,
                        ThetaTiming::default(),
                        FaultConfig::ideal(),
                        4242,
                        &plan,
                        threads,
                    );
                    assert!(
                        (theta.fidelity - 1.0).abs() < f64::EPSILON,
                        "lossless re-convergence around excised nodes must be exact"
                    );
                    Some(theta.stats.reconvergences)
                } else {
                    None
                };
                out.push(AdvPoint {
                    attack: label,
                    fraction,
                    defended,
                    compromised: compromised.len(),
                    detected,
                    gossip,
                    reconvergences,
                });
            }
        }
    }
    out
}

/// Run E22 and return the table.
pub fn run(quick: bool) -> Table {
    let mut table = Table::new(
        "E22 (Byzantine balancers, §3 model violation): lying height \
         gossip vs the plausibility/probe/attestation defense, with \
         detected nodes excised via ΘALG re-convergence",
        &[
            "attack",
            "byz frac",
            "defense",
            "delivered",
            "stolen",
            "blackholed",
            "overflow",
            "quarantines",
            "detected",
            "θ reconv",
            "conserved",
        ],
    );
    for p in sweep(quick) {
        table.push(vec![
            p.attack.to_string(),
            f3(p.fraction),
            if p.defended { "on" } else { "off" }.to_string(),
            f3(p.gossip.delivery_rate()),
            p.gossip.stolen.to_string(),
            p.gossip.blackholed.to_string(),
            p.gossip.overflow_dropped.to_string(),
            p.gossip.quarantines.to_string(),
            format!("{}/{}", p.detected, p.compromised),
            p.reconvergences
                .map_or_else(|| "-".to_string(), |r| r.to_string()),
            p.gossip.conserved().to_string(),
        ]);
    }
    table
}

/// Replay digests pinning adversarial behaviour for the golden
/// transcript-digest suite (`tests/golden_digests.rs`): three attack
/// shapes × defense off ("raw") / on ("def") × 2 seeds, under loss,
/// duplication, and jittered delays. The CI thread matrix reruns these
/// at 1 and 4 worker threads against the same fixture, so the digests
/// also pin the interposer's executor equivalence.
pub fn golden_digests() -> Vec<(String, u64)> {
    let n = 40;
    let mut rng = ChaCha8Rng::seed_from_u64(20_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let alg = ThetaAlg::new(PI / 3.0, range);
    let direct = alg.build(&points);
    let faults = FaultConfig {
        drop_prob: 0.1,
        duplicate_prob: 0.05,
        delay: DelayDist::Uniform { min: 1, max: 4 },
    };
    let threads = shard_threads_from_env();
    let dests = [0u32];
    let workload = uniform_workload(n, &dests, 150, 2, 99);
    let base_cfg = GossipConfig::new(
        BalancingConfig {
            threshold: 0.5,
            gamma: 0.1,
            capacity: 40,
        },
        400,
    );

    let shapes = [
        ("blackhole", Attack::Deflate { blackhole: true }),
        ("inflate", Attack::Inflate),
        ("equivocate", Attack::Equivocate),
    ];
    let mut out = Vec::new();
    for seed in [1u64, 2] {
        for (label, attack) in &shapes {
            let adversary =
                AdversaryPlan::random(n, 5, attack.clone(), COMPROMISE_AT, &[0], 31_000 + seed);
            for (mode, cfg) in [
                ("raw", base_cfg),
                ("def", base_cfg.with_defense(DefenseConfig::default())),
            ] {
                let run = run_gossip_balancing_adversarial(
                    &direct.spatial,
                    &dests,
                    cfg,
                    &workload,
                    faults,
                    seed,
                    &ChurnPlan::default(),
                    &adversary,
                    threads,
                );
                assert!(run.conserved(), "e22/{label}/{mode}/s{seed}: {run:?}");
                out.push((format!("e22/{label}/{mode}/s{seed}"), run.digest));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_acceptance_criteria() {
        let points = sweep(true);
        assert_eq!(points.len(), 6 * 2 * 2);
        for p in &points {
            // The ledger balances exactly in every cell — stolen and
            // blackholed packets are booked, not leaked.
            assert!(
                p.gossip.conserved(),
                "{}/{}: {:?}",
                p.attack,
                p.fraction,
                p.gossip
            );
            if p.fraction == 0.0 {
                // Honest-safety: the defense never convicts an honest
                // network.
                assert_eq!(p.gossip.quarantines, 0, "{}: false positives", p.attack);
                assert_eq!(p.gossip.stolen + p.gossip.blackholed, 0);
            }
        }
        let find = |attack: &str, fraction: f64, defended: bool| {
            points
                .iter()
                .find(|p| p.attack == attack && p.fraction == fraction && p.defended == defended)
                .unwrap()
        };
        // The headline gap: at 15% Byzantine blackholes, the defense
        // must measurably recover delivery.
        let off = find("blackhole", 0.15, false);
        let on = find("blackhole", 0.15, true);
        assert!(off.gossip.stolen > 0, "blackholes stole nothing");
        assert!(
            on.gossip.delivery_rate() > off.gossip.delivery_rate(),
            "defense gained nothing: {} on vs {} off",
            on.gossip.delivery_rate(),
            off.gossip.delivery_rate()
        );
        assert!(on.detected > 0, "no blackhole detected");
        assert!(
            on.reconvergences.unwrap_or(0) > 0,
            "excision must trigger ΘALG re-convergence"
        );
        // Inflation is implausible on sight.
        let inf = find("inflate", 0.15, true);
        assert!(inf.gossip.implausible_gossip > 0);
        assert!(inf.detected > 0, "no inflator detected");
        // Undefended runs never quarantine.
        assert!(points
            .iter()
            .filter(|p| !p.defended)
            .all(|p| p.gossip.quarantines == 0));
    }

    #[test]
    fn golden_digest_names_are_unique_and_stable() {
        let d = golden_digests();
        assert_eq!(d.len(), 12);
        let mut names: Vec<&str> = d.iter().map(|(n, _)| n.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), d.len(), "duplicate scenario names");
        assert_eq!(d, golden_digests());
    }
}
