//! **E15 — extensions**: packet-level latency of the balancing algorithm
//! (via the tracing router) and the anycast generalization (§1.2 cites
//! the Awerbuch–Brinkmann–Scheideler anycasting result the paper's
//! framework extends).
//!
//! Table 1 half: latency percentiles of (T,γ)-balancing vs the greedy
//! shortest-path baseline on the same topology and workload.
//! Table 2 half: unicast-to-one-member vs anycast-to-the-group — anycast
//! must cut hops per delivery.

use super::table::{f2, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_routing::{
    ActiveEdge, AnycastRouter, BalancingConfig, BalancingRouter, GreedyRouter, TracedRouter,
};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E15 and return the table.
pub fn run(quick: bool) -> Table {
    let n = if quick { 80 } else { 150 };
    let steps = if quick { 3000 } else { 10_000 };

    let mut table = Table::new(
        "E15 (extensions): delivery latency percentiles and the anycast generalization",
        &["measurement", "value"],
    );

    let mut rng = ChaCha8Rng::seed_from_u64(15_000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    let range = adhoc_geom::default_max_range(n);
    let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
    let edges: Vec<ActiveEdge> = topo
        .spatial
        .graph
        .edges()
        .map(|(u, v, w)| ActiveEdge::new(u, v, w * w))
        .collect();
    let cfg = BalancingConfig {
        threshold: 0.5,
        gamma: 0.5,
        capacity: 40,
    };

    // ---- latency: traced balancing vs greedy --------------------------
    {
        let mut traced = TracedRouter::new(n, &[0], cfg);
        let mut greedy = GreedyRouter::new(&topo.spatial.energy_graph(2.0), &[0], cfg.capacity);
        let mut inj_rng = ChaCha8Rng::seed_from_u64(15_001);
        for _ in 0..steps {
            if inj_rng.gen_bool(0.3) {
                let src = inj_rng.gen_range(1..n as u32);
                traced.inject(src, 0);
                greedy.inject(src, 0);
            }
            traced.step(&edges);
            greedy.step(&edges);
        }
        let stats = traced.latency_stats();
        table.push(vec![
            "balancing deliveries".into(),
            stats.delivered.to_string(),
        ]);
        table.push(vec![
            "balancing latency p50 (steps)".into(),
            stats.p50.to_string(),
        ]);
        table.push(vec![
            "balancing latency p95 (steps)".into(),
            stats.p95.to_string(),
        ]);
        table.push(vec!["balancing latency mean".into(), f2(stats.mean)]);
        let gm = greedy.metrics();
        table.push(vec!["greedy deliveries".into(), gm.delivered.to_string()]);
        table.push(vec![
            "greedy avg hops".into(),
            f2(gm.avg_path_length().unwrap_or(0.0)),
        ]);
    }

    // ---- anycast vs unicast -------------------------------------------
    {
        // Group: 5 nodes nearest the square's corners + center.
        let anchors = [
            adhoc_geom::Point::new(0.05, 0.05),
            adhoc_geom::Point::new(0.95, 0.05),
            adhoc_geom::Point::new(0.05, 0.95),
            adhoc_geom::Point::new(0.95, 0.95),
            adhoc_geom::Point::new(0.5, 0.5),
        ];
        let mut members: Vec<u32> = anchors
            .iter()
            .map(|a| {
                (0..n as u32)
                    .min_by(|&x, &y| {
                        points[x as usize]
                            .dist(*a)
                            .partial_cmp(&points[y as usize].dist(*a))
                            .unwrap()
                    })
                    .unwrap()
            })
            .collect();
        members.sort_unstable();
        members.dedup();

        let mut any = AnycastRouter::new(
            n,
            &[members.clone()],
            cfg.threshold,
            cfg.gamma,
            cfg.capacity,
        );
        let mut uni = BalancingRouter::new(n, &[members[0]], cfg);
        let mut inj_rng = ChaCha8Rng::seed_from_u64(15_002);
        for _ in 0..steps {
            if inj_rng.gen_bool(0.3) {
                let src = inj_rng.gen_range(0..n as u32);
                if !members.contains(&src) {
                    any.inject(src, 0);
                    uni.inject(src, members[0]);
                }
            }
            any.step(&edges);
            uni.step(&edges);
        }
        let (ma, mu) = (any.metrics(), uni.metrics());
        table.push(vec![
            format!("anycast group size"),
            members.len().to_string(),
        ]);
        table.push(vec![
            "anycast hops/delivery".into(),
            f2(ma.avg_path_length().unwrap_or(0.0)),
        ]);
        table.push(vec![
            "unicast hops/delivery".into(),
            f2(mu.avg_path_length().unwrap_or(0.0)),
        ]);
        table.push(vec![
            "anycast/unicast delivery ratio".into(),
            f2(ma.delivered as f64 / mu.delivered.max(1) as f64),
        ]);
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get<'a>(t: &'a Table, key: &str) -> &'a str {
        &t.rows.iter().find(|r| r[0] == key).expect(key)[1]
    }

    #[test]
    fn quick_run_latency_and_anycast_shapes() {
        let t = run(true);
        let delivered: u64 = get(&t, "balancing deliveries").parse().unwrap();
        assert!(delivered > 50);
        let p50: u64 = get(&t, "balancing latency p50 (steps)").parse().unwrap();
        let p95: u64 = get(&t, "balancing latency p95 (steps)").parse().unwrap();
        assert!(p50 >= 1 && p95 >= p50);
        // anycast reaches the group in fewer hops than unicast to one
        // fixed member.
        let ha: f64 = get(&t, "anycast hops/delivery").parse().unwrap();
        let hu: f64 = get(&t, "unicast hops/delivery").parse().unwrap();
        assert!(ha > 0.0 && hu > 0.0);
        assert!(
            ha <= hu,
            "anycast used more hops ({ha}) than unicast ({hu})"
        );
        let ratio: f64 = get(&t, "anycast/unicast delivery ratio").parse().unwrap();
        assert!(ratio >= 0.95, "anycast delivered fewer packets: {ratio}");
    }
}
