//! **E17 — ablation of the cost term γ**: the paper's §3 novelty is that
//! the balancing algorithm *models transmission costs* ("while algorithms
//! based on local balancing have been extensively studied before, this is
//! the first study that models transmission costs"). Setting `γ = 0`
//! recovers the earlier cost-oblivious algorithms.
//!
//! The crisp scenario is a **dual-path network**: source and sink joined
//! by two 3-hop paths of identical length but wildly different
//! transmission costs. A cost-oblivious balancer (γ = 0) sees identical
//! height gradients on both and splits traffic ~50/50; with γ > 0 the
//! expensive path's gradient is discounted and traffic steers onto the
//! cheap path — same throughput, a fraction of the energy. Pushing γ far
//! beyond the theorem's prescription eventually throttles throughput,
//! which the last rows show.

use super::table::{f3, Table};
use adhoc_routing::{ActiveEdge, BalancingConfig, BalancingRouter};

/// Dual-path network: 0 = source, 1 = sink;
/// cheap path 0-2-3-1 (cost ε per edge), expensive path 0-4-5-1
/// (cost 1 per edge).
fn dual_path_edges(cheap: f64, expensive: f64) -> Vec<ActiveEdge> {
    vec![
        ActiveEdge::new(0, 2, cheap),
        ActiveEdge::new(2, 3, cheap),
        ActiveEdge::new(3, 1, cheap),
        ActiveEdge::new(0, 4, expensive),
        ActiveEdge::new(4, 5, expensive),
        ActiveEdge::new(5, 1, expensive),
    ]
}

/// Run E17 and return the table.
pub fn run(quick: bool) -> Table {
    let steps = if quick { 6000 } else { 20_000 };
    let gammas: &[f64] = if quick {
        &[0.0, 2.0, 1000.0]
    } else {
        &[0.0, 0.5, 2.0, 10.0, 100.0, 1000.0]
    };

    let mut table = Table::new(
        "E17 (ablation): the cost term γ on a dual-path network — γ=0 is the prior cost-oblivious algorithm",
        &[
            "γ", "delivered", "energy/delivery", "expensive-path share", "thr vs γ=0",
        ],
    );

    let edges = dual_path_edges(0.05, 1.0);
    let mut base_delivered = 0u64;
    for (i, &gamma) in gammas.iter().enumerate() {
        let mut router = BalancingRouter::new(
            6,
            &[1],
            BalancingConfig {
                threshold: 0.5,
                gamma,
                capacity: 50,
            },
        );
        let mut expensive_sends = 0u64;
        let mut total_sends = 0u64;
        for s in 0..steps {
            if s % 2 == 0 {
                router.inject(0, 1);
            }
            let sends = router.step(&edges);
            for send in sends {
                total_sends += 1;
                if matches!(
                    (send.from, send.to),
                    (0, 4) | (4, 5) | (5, 1) | (4, 0) | (5, 4) | (1, 5)
                ) {
                    expensive_sends += 1;
                }
            }
        }
        let m = router.metrics();
        if i == 0 {
            base_delivered = m.delivered.max(1);
        }
        table.push(vec![
            format!("{gamma}"),
            m.delivered.to_string(),
            f3(m.avg_cost_per_delivery().unwrap_or(0.0)),
            f3(expensive_sends as f64 / total_sends.max(1) as f64),
            f3(m.delivered as f64 / base_delivered as f64),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_cost_term_steers_traffic() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        let energy: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        let exp_share: Vec<f64> = t.rows.iter().map(|r| r[3].parse().unwrap()).collect();
        let thr: Vec<f64> = t.rows.iter().map(|r| r[4].parse().unwrap()).collect();
        // γ=0 splits across both paths…
        assert!(
            exp_share[0] > 0.25,
            "cost-oblivious should use the expensive path: {exp_share:?}"
        );
        // …moderate γ steers off it and cuts energy per delivery…
        assert!(exp_share[1] < exp_share[0] / 2.0, "{exp_share:?}");
        assert!(energy[1] < energy[0] / 2.0, "{energy:?}");
        // …without losing meaningful throughput.
        assert!(thr[1] > 0.85, "moderate γ throttled throughput: {thr:?}");
        // Absurd γ throttles (the trade the theorem's γ avoids).
        assert!(thr[2] < thr[1], "{thr:?}");
    }
}
