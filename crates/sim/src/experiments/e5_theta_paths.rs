//! **E5 — Lemma 2.9 / Theorem 2.8**: replacing any non-interfering set of
//! `G*` edges by θ-paths in `𝒩` loads every `𝒩` edge only a constant
//! number of times, so `𝒩` can emulate any `G*` schedule with an
//! `O(I)` slowdown.
//!
//! The table replaces maximal *non-interfering* `G*` edge sets (greedy
//! independent sets under the guard-zone model — exactly the paper's `T`
//! sets) and reports the observed max congestion, path lengths, and the
//! worst energy blow-up of a replacement path.

use super::table::{f2, Table};
use adhoc_core::{theta_path_congestion, ThetaAlg};
use adhoc_geom::distributions::NodeDistribution;
use adhoc_interference::{edge_interferes, InterferenceModel, Transmission};
use adhoc_proximity::unit_disk_graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Greedy maximal non-interfering subset of `G*` edges (a paper-`T` set).
fn greedy_noninterfering_set(
    sg: &adhoc_proximity::SpatialGraph,
    model: InterferenceModel,
) -> Vec<(u32, u32)> {
    let mut chosen: Vec<Transmission> = Vec::new();
    for (u, v, _) in sg.graph.edges() {
        let cand = Transmission::new(u, v);
        let ok = chosen.iter().all(|&e| {
            e.a != cand.a
                && e.a != cand.b
                && e.b != cand.a
                && e.b != cand.b
                && !edge_interferes(model, &sg.points, e, cand)
                && !edge_interferes(model, &sg.points, cand, e)
        });
        if ok {
            chosen.push(cand);
        }
    }
    chosen.into_iter().map(|e| (e.a, e.b)).collect()
}

/// Run E5 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick { &[150] } else { &[150, 400, 800] };
    let trials = if quick { 2 } else { 3 };

    let mut table = Table::new(
        "E5 (Lemma 2.9 / Thm 2.8): θ-path replacement of non-interfering G* edge sets",
        &[
            "n",
            "|T| set",
            "max congestion",
            "avg hops",
            "max hops",
            "max energy ratio",
        ],
    );

    for &n in sizes {
        let mut congestion_max = 0usize;
        let mut hops_sum = 0.0;
        let mut hops_n = 0usize;
        let mut hops_max = 0usize;
        let mut set_size = 0usize;
        let mut energy_ratio_max: f64 = 0.0;
        for t in 0..trials {
            let mut rng = ChaCha8Rng::seed_from_u64(5000 + n as u64 * 31 + t as u64);
            let points = NodeDistribution::unit_square()
                .sample(n, &mut rng)
                .expect("sampling");
            let range = adhoc_geom::default_max_range(n);
            let gstar = unit_disk_graph(&points, range);
            let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
            let model = InterferenceModel::new(0.5);
            let tset = greedy_noninterfering_set(&gstar, model);
            set_size = tset.len();
            let report = theta_path_congestion(&topo, &tset).expect("replacement");
            congestion_max = congestion_max.max(report.max_congestion);
            hops_sum += report.total_hops as f64;
            hops_n += report.edges_replaced;
            hops_max = hops_max.max(report.max_path_hops);
            // Energy ratio of each replacement path vs its edge.
            for &(u, v) in &tset {
                let path = adhoc_core::replace_edge(&topo, u, v).expect("path");
                let pe: f64 = path
                    .iter()
                    .map(|&(a, b)| topo.spatial.edge_len(a, b).powi(2))
                    .sum();
                let ee = topo.spatial.edge_len(u, v).powi(2);
                if ee > 1e-12 {
                    energy_ratio_max = energy_ratio_max.max(pe / ee);
                }
            }
        }
        table.push(vec![
            n.to_string(),
            set_size.to_string(),
            congestion_max.to_string(),
            f2(hops_sum / hops_n.max(1) as f64),
            hops_max.to_string(),
            f2(energy_ratio_max),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_congestion_constant() {
        let t = run(true);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let congestion: usize = row[2].parse().unwrap();
            // Lemma 2.9's θ-path bound is 6; the full replacement
            // (θ-path + closing edges + case-2 recursion) stays a small
            // constant as well.
            assert!(
                (1..=12).contains(&congestion),
                "congestion {congestion} out of the constant regime"
            );
            let energy_ratio: f64 = row[5].parse().unwrap();
            assert!(energy_ratio < 25.0, "energy blow-up {energy_ratio}");
        }
    }
}
