//! **E6 — Theorem 3.1**: the `(T,γ)`-balancing algorithm is
//! `(1−ε, O(L̄/ε), O(1/ε))`-competitive.
//!
//! The theorem reads `A ≥ (1−ε)·OPT − r` with an additive residue `r`
//! *independent of the request sequence*: with threshold `T`, a
//! backpressure staircase of ≈ `(T+1)·L̄²/2` packets per flow stays
//! resident forever. The experiment therefore sweeps the flow volume
//! (packets per source–destination pair): the measured throughput ratio
//! must climb toward `1−ε` as volume grows — that is the theorem's shape.
//! Cost ratios must stay below `1 + 2/ε` throughout. The greedy
//! shortest-path baseline runs under the same adversary for contrast.

use super::table::{f2, f3, Table};
use crate::runner::{run_balancing_on_schedule, run_greedy_on_schedule};
use crate::schedule::build_schedule_hops;
use crate::workloads::Workload;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_proximity::unit_disk_graph;
use adhoc_routing::{BalancingConfig, BalancingRouter, GreedyRouter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn dests_of(schedule: &crate::schedule::Schedule) -> Vec<u32> {
    let mut d: Vec<u32> = schedule
        .injections
        .iter()
        .flat_map(|v| v.iter().map(|&(_, d)| d))
        .collect();
    d.sort_unstable();
    d.dedup();
    d
}

/// Run E6 and return the table.
pub fn run(quick: bool) -> Table {
    let n = 60;
    let volumes: &[usize] = if quick {
        &[20, 80, 320]
    } else {
        &[20, 80, 320, 640]
    };
    let epsilons: &[f64] = if quick { &[0.25] } else { &[0.5, 0.25, 0.1] };
    let repeats = if quick { 15 } else { 40 };
    let flows = 6;

    let mut table = Table::new(
        "E6 (Theorem 3.1): (T,γ)-balancing vs OPT — throughput ratio climbs to 1−ε as flow volume grows",
        &[
            "ε", "pkts/flow", "T", "γ", "H", "thr ratio", "cost ratio (≤1+2/ε?)", "thr greedy",
            "resident",
        ],
    );

    let mut rng = ChaCha8Rng::seed_from_u64(6000);
    let points = NodeDistribution::unit_square()
        .sample(n, &mut rng)
        .expect("sampling");
    // A denser G* keeps L̄ ≈ 3 so the staircase residue is small relative
    // to the swept volumes.
    let sg = unit_disk_graph(&points, 0.5);
    let distinct = Workload::RandomPairs.pairs(n, flows, &mut rng);

    for &eps in epsilons {
        for &volume in volumes {
            let mut pairs = Vec::with_capacity(flows * volume);
            for _ in 0..volume {
                pairs.extend(distinct.iter().copied());
            }
            let schedule = build_schedule_hops(&sg, &pairs);
            let dests = dests_of(&schedule);
            if dests.is_empty() {
                continue;
            }
            let mut cfg = BalancingConfig::from_theorem_3_1(
                schedule.opt_buffer,
                1,
                schedule.l_bar().max(1.0),
                schedule.c_bar().max(1e-6),
                eps,
            );
            // Buffers must also hold the injected backlog (the adversary
            // front-loads whole flows; Theorem 3.1's scale factor assumes
            // smooth injections).
            cfg.capacity = cfg.capacity.max(volume as u32);
            let mut router = BalancingRouter::new(sg.len(), &dests, cfg);
            let rep = run_balancing_on_schedule(&mut router, &schedule, repeats);
            let mut greedy = GreedyRouter::new(&sg.hop_graph(), &dests, cfg.capacity);
            let grep = run_greedy_on_schedule(&mut greedy, &schedule, repeats);
            table.push(vec![
                format!("{eps}"),
                volume.to_string(),
                f2(cfg.threshold),
                f2(cfg.gamma),
                cfg.capacity.to_string(),
                f3(rep.throughput_ratio()),
                rep.cost_ratio().map(f3).unwrap_or_else(|| "-".into()),
                f3(grep.throughput_ratio()),
                router.bank().total_buffered().to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_competitive_shape() {
        let t = run(true);
        assert!(t.rows.len() >= 3);
        for row in &t.rows {
            let eps: f64 = row[0].parse().unwrap();
            if row[6] != "-" {
                let cost: f64 = row[6].parse().unwrap();
                assert!(
                    cost <= 1.0 + 2.0 / eps,
                    "cost ratio {cost} above 1 + 2/ε: {row:?}"
                );
            }
        }
        // Throughput ratio climbs with volume and ends near 1−ε.
        let ratios: Vec<f64> = t.rows.iter().map(|r| r[5].parse().unwrap()).collect();
        assert!(
            ratios.windows(2).all(|w| w[1] >= w[0] - 0.05),
            "ratio not (weakly) increasing with volume: {ratios:?}"
        );
        let last = *ratios.last().unwrap();
        let eps: f64 = t.rows.last().unwrap()[0].parse().unwrap();
        assert!(
            last >= (1.0 - eps) * 0.85,
            "final throughput ratio {last} well below 1−ε = {}",
            1.0 - eps
        );
    }
}
