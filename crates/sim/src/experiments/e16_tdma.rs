//! **E16 — Theorem 2.8 made executable**: TDMA scheduling by
//! interference-graph coloring.
//!
//! Theorem 2.8 proves `𝒩` can emulate any `G*` schedule with an `O(I)`
//! slowdown; the constructive half is a conflict-free slot assignment.
//! Greedy coloring gives frame length ≤ `I + 1`, so:
//!
//! * column "frame(𝒩) vs I+1" certifies the bound;
//! * frame(𝒩) ≪ frame(G*) quantifies why topology control matters;
//! * the balancing router driven by the TDMA frame is measured against
//!   the **min-cut throughput ceiling** (Dinic max-flow from all sources
//!   to the sink with per-frame unit edge capacities) — an upper bound
//!   *no* algorithm can beat, making the measured utilization an absolute
//!   (not relative) efficiency number.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_graph::multi_source_min_cut;
use adhoc_interference::{interference_number, tdma_schedule, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use adhoc_routing::{ActiveEdge, BalancingConfig, BalancingRouter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E16 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[100, 200]
    } else {
        &[100, 200, 400, 800]
    };
    let steps = if quick { 4000 } else { 12_000 };

    let mut table = Table::new(
        "E16 (Thm 2.8 constructive): TDMA coloring — frame ≤ I+1, 𝒩 ≪ G*, and goodput vs the min-cut ceiling",
        &[
            "n", "I(𝒩)", "frame(𝒩)", "≤ I+1", "frame(G*)", "min-cut ceiling/step",
            "measured goodput", "utilization",
        ],
    );

    for &n in sizes {
        let mut rng = ChaCha8Rng::seed_from_u64(16_000 + n as u64);
        let points = NodeDistribution::unit_square()
            .sample(n, &mut rng)
            .expect("sampling");
        let range = adhoc_geom::default_max_range(n);
        let model = InterferenceModel::new(0.5);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);

        let i_n = interference_number(&topo.spatial, model);
        let sched_n = tdma_schedule(&topo.spatial, model);
        // frame(G*) only at moderate n (quadratic memory).
        let frame_g = if n <= 400 {
            tdma_schedule(&gstar, model).frame_length.to_string()
        } else {
            "-".to_string()
        };

        // Min-cut ceiling: all nodes inject toward the sink; each 𝒩 edge
        // carries ≤ 1 packet per activation and is active once per frame.
        let sink = 0u32;
        let sources: Vec<u32> = (1..n as u32).collect();
        let cut = multi_source_min_cut(
            n,
            topo.spatial.graph.edges().map(|(u, v, _)| (u, v, 1.0)),
            &sources,
            sink,
        );
        let ceiling = cut / sched_n.frame_length.max(1) as f64;

        // Drive the balancing router with the TDMA frame.
        let edge_list: Vec<(u32, u32, f64)> = topo
            .spatial
            .graph
            .edges()
            .map(|(u, v, w)| (u, v, w * w))
            .collect();
        let slots: Vec<Vec<ActiveEdge>> = (0..sched_n.frame_length)
            .map(|s| {
                sched_n
                    .edges_in_slot(s)
                    .iter()
                    .map(|&e| {
                        let (u, v, c) = edge_list[e as usize];
                        ActiveEdge::new(u, v, c)
                    })
                    .collect()
            })
            .collect();
        let mut router = BalancingRouter::new(
            n,
            &[sink],
            BalancingConfig {
                threshold: 0.5,
                gamma: 0.0,
                capacity: 60,
            },
        );
        for s in 0..steps {
            router.inject((1 + (s % (n - 1))) as u32, sink);
            router.step(&slots[s % slots.len().max(1)]);
        }
        let goodput = router.metrics().delivered as f64 / steps as f64;

        table.push(vec![
            n.to_string(),
            i_n.to_string(),
            sched_n.frame_length.to_string(),
            (sched_n.frame_length as usize <= i_n + 1).to_string(),
            frame_g,
            f3(ceiling),
            f3(goodput),
            f3(goodput / ceiling.max(1e-12)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_frame_bound_and_ceiling() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row[3], "true", "frame exceeded I+1: {row:?}");
            let util: f64 = row[7].parse().unwrap();
            // No algorithm can exceed the min-cut ceiling; the balancing
            // router must reach a nontrivial fraction of it.
            assert!(util <= 1.0 + 1e-9, "goodput above the ceiling?! {row:?}");
            assert!(util > 0.05, "utilization too low: {row:?}");
        }
    }
}
