//! **E19 — Theorem 2.8, measured end to end**: emulate complete `G*`
//! schedules on `𝒩` via θ-path replacement + TDMA and report the realized
//! slowdown against the theorem's `O(tI + n²)` bound.

use super::table::{f2, Table};
use crate::emulation::emulate_on_theta;
use crate::schedule::build_schedule;
use crate::workloads::Workload;
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_interference::{interference_number, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E19 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[80, 160]
    } else {
        &[80, 160, 320, 640]
    };

    let mut table = Table::new(
        "E19 (Theorem 2.8 end-to-end): G*-schedule emulation on 𝒩 — slowdown vs the O(I) bound",
        &[
            "n",
            "I(𝒩)",
            "t (G* steps)",
            "emulated steps",
            "slowdown",
            "slowdown/I",
            "frame",
        ],
    );

    for &n in sizes {
        let mut rng = ChaCha8Rng::seed_from_u64(19_000 + n as u64);
        let points = NodeDistribution::unit_square()
            .sample(n, &mut rng)
            .expect("sampling");
        let range = adhoc_geom::default_max_range(n);
        let gstar = unit_disk_graph(&points, range);
        let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
        let model = InterferenceModel::new(0.5);
        let i = interference_number(&topo.spatial, model);

        let pairs = Workload::RandomPairs.pairs(n, n / 2, &mut rng);
        let schedule = build_schedule(&gstar, 2.0, &pairs);
        let report = emulate_on_theta(&topo, &schedule, model);

        table.push(vec![
            n.to_string(),
            i.to_string(),
            report.original_steps.to_string(),
            report.emulated_steps.to_string(),
            f2(report.slowdown()),
            format!("{:.3}", report.slowdown() / i.max(1) as f64),
            report.frame_length.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_slowdown_is_o_of_i() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let ratio: f64 = row[5].parse().unwrap();
            // slowdown / I must be O(1); empirically well below 1.
            assert!(ratio < 2.0, "slowdown/I = {ratio}: {row:?}");
        }
    }
}
