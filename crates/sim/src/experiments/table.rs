//! Minimal aligned-text table for the report binary and EXPERIMENTS.md.

/// A titled table of string cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Render with aligned columns (markdown-flavoured pipes).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for i in 0..cols {
                line.push_str(&format!(" {:<w$} |", cells[i], w = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        sep.push('\n');
        out.push_str(&sep);
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format θ as a fraction of π.
pub fn theta_label(theta: f64) -> String {
    format!("π/{:.0}", std::f64::consts::PI / theta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("Demo", &["a", "bee"]);
        t.push(vec!["1".into(), "2".into()]);
        t.push(vec!["1000".into(), "2".into()]);
        let r = t.render();
        assert!(r.contains("## Demo"));
        assert!(r.contains("| a    | bee |"));
        assert!(r.contains("| 1000 | 2   |"));
    }

    #[test]
    #[should_panic]
    fn wrong_width_panics() {
        let mut t = Table::new("Demo", &["a"]);
        t.push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(f2(1.23456), "1.23");
        assert_eq!(theta_label(std::f64::consts::FRAC_PI_3), "π/3");
        assert_eq!(theta_label(std::f64::consts::PI / 6.0), "π/6");
    }
}
