//! **E4 — Lemma 2.10**: for `n` nodes uniform in the unit square, the
//! interference number of `𝒩` is `O(log n)` whp.
//!
//! The table doubles `n` and tracks `I(𝒩) / log₂ n`, which must stay
//! (roughly) flat, while `I(G*)` — shown for contrast — grows
//! polynomially.

use super::table::{f2, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_interference::{interference_number, InterferenceModel};
use adhoc_proximity::unit_disk_graph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E4 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[100, 200, 400]
    } else {
        &[100, 200, 400, 800, 1600, 3200]
    };
    let deltas: &[f64] = if quick { &[0.5] } else { &[0.5, 1.0, 2.0] };
    let trials = if quick { 2 } else { 3 };

    let mut table = Table::new(
        "E4 (Lemma 2.10): interference number I(𝒩) = O(log n) whp, uniform nodes (I(G*) for contrast)",
        &["n", "Δ", "I(𝒩) avg", "I(𝒩)/log₂n", "I(G*) avg", "edges(𝒩)", "edges(G*)"],
    );

    for &delta in deltas {
        let model = InterferenceModel::new(delta);
        for &n in sizes {
            // I(G*) is inherently quadratic in memory (every edge of the
            // dense G* interferes with Θ(m) others, and the guard radius
            // scales with Δ); only compute the contrast column at sizes
            // where the sets fit comfortably.
            let gstar_cap = if delta > 0.5 { 400 } else { 800 };
            let mut i_theta_sum = 0.0;
            let mut i_gstar_sum = 0.0;
            let mut m_theta = 0usize;
            let mut m_gstar = 0usize;
            for t in 0..trials {
                let mut rng = ChaCha8Rng::seed_from_u64(4000 + n as u64 * 17 + t as u64);
                let points = NodeDistribution::unit_square()
                    .sample(n, &mut rng)
                    .expect("sampling");
                let range = adhoc_geom::default_max_range(n);
                let gstar = unit_disk_graph(&points, range);
                let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
                i_theta_sum += interference_number(&topo.spatial, model) as f64;
                if n <= gstar_cap {
                    i_gstar_sum += interference_number(&gstar, model) as f64;
                }
                m_theta = topo.spatial.graph.num_edges();
                m_gstar = gstar.graph.num_edges();
            }
            let i_theta = i_theta_sum / trials as f64;
            let i_gstar = i_gstar_sum / trials as f64;
            table.push(vec![
                n.to_string(),
                format!("{delta}"),
                f2(i_theta),
                f2(i_theta / (n as f64).log2()),
                if n <= gstar_cap {
                    f2(i_gstar)
                } else {
                    "-".into()
                },
                m_theta.to_string(),
                m_gstar.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_log_scaling_shape() {
        let t = run(true);
        assert_eq!(t.rows.len(), 3);
        // I(𝒩) grows much slower than I(G*): compare growth factors from
        // n=100 to n=400.
        let i_theta_first: f64 = t.rows[0][2].parse().unwrap();
        let i_theta_last: f64 = t.rows[2][2].parse().unwrap();
        let i_gstar_first: f64 = t.rows[0][4].parse().unwrap();
        let i_gstar_last: f64 = t.rows[2][4].parse().unwrap();
        let g_theta = i_theta_last / i_theta_first.max(1.0);
        let g_gstar = i_gstar_last / i_gstar_first.max(1.0);
        assert!(
            g_theta < g_gstar,
            "I(𝒩) grew faster ({g_theta}) than I(G*) ({g_gstar})"
        );
        // And 𝒩 is always the less-interfering topology.
        for row in &t.rows {
            let i_t: f64 = row[2].parse().unwrap();
            let i_g: f64 = row[4].parse().unwrap();
            assert!(i_t <= i_g, "{row:?}");
        }
    }
}
