//! **E11 — dynamic topologies (extension)**: the paper's motivation is
//! that "the underlying topology may change with time" and routing must
//! "effectively react to dynamically changing network conditions". This
//! experiment moves nodes by random waypoint, re-runs ΘALG's three local
//! rounds periodically, and measures sustained delivery plus Lemma 2.1
//! compliance at every rebuild epoch.

use super::table::{f2, f3, Table};
use crate::mobility::RandomWaypoint;
use adhoc_core::{verify_lemma_2_1, ThetaAlg};
use adhoc_geom::distributions::NodeDistribution;
use adhoc_routing::{ActiveEdge, BalancingConfig, BalancingRouter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E11 and return the table.
pub fn run(quick: bool) -> Table {
    let n = if quick { 80 } else { 150 };
    let steps = if quick { 1500 } else { 6000 };
    let speeds: &[f64] = if quick {
        &[0.002, 0.01]
    } else {
        &[0.001, 0.005, 0.01, 0.02]
    };
    let rebuild_every = 25usize;

    let mut table = Table::new(
        "E11 (extension): ΘALG + (T,γ)-balancing under random-waypoint mobility",
        &[
            "n",
            "speed",
            "rebuilds",
            "lemma 2.1 ok",
            "delivered/injected",
            "energy/delivery",
            "avg hops",
        ],
    );

    for &speed in speeds {
        let mut rng = ChaCha8Rng::seed_from_u64(11_000);
        let start = NodeDistribution::unit_square()
            .sample(n, &mut rng)
            .expect("sampling");
        let mut mobility = RandomWaypoint::new(start, speed / 2.0, speed, &mut rng);
        let range = adhoc_geom::default_max_range(n) * 1.3;
        let sink = 0u32;
        let mut router = BalancingRouter::new(
            n,
            &[sink],
            BalancingConfig {
                threshold: 2.0,
                gamma: 5.0,
                capacity: 40,
            },
        );
        let mut topo = ThetaAlg::new(PI / 3.0, range).build(mobility.positions());
        let mut rebuilds = 0usize;
        let mut lemma_ok = true;
        for s in 0..steps {
            if s % rebuild_every == 0 && s > 0 {
                topo = ThetaAlg::new(PI / 3.0, range).build(mobility.positions());
                rebuilds += 1;
                let rep = verify_lemma_2_1(&topo);
                // Connectivity can momentarily fail if movement outruns
                // the rebuilt range; the degree bound must never fail.
                lemma_ok &= rep.max_degree <= rep.bound;
            }
            let pts = mobility.positions();
            let active: Vec<ActiveEdge> = topo
                .spatial
                .graph
                .edges()
                .map(|(u, v, _)| {
                    ActiveEdge::new(u, v, pts[u as usize].energy_cost(pts[v as usize], 2.0))
                })
                .collect();
            router.inject((1 + (s % (n - 1))) as u32, sink);
            router.step(&active);
            mobility.step(&mut rng);
        }
        let m = router.metrics();
        table.push(vec![
            n.to_string(),
            format!("{speed}"),
            rebuilds.to_string(),
            lemma_ok.to_string(),
            format!("{}/{}", m.delivered, m.injected),
            f3(m.avg_cost_per_delivery().unwrap_or(0.0)),
            f2(m.avg_path_length().unwrap_or(0.0)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_mobility_keeps_delivering() {
        let t = run(true);
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            assert_eq!(row[3], "true", "Lemma 2.1 degree bound failed: {row:?}");
            let parts: Vec<u64> = row[4].split('/').map(|x| x.parse().unwrap()).collect();
            let (delivered, injected) = (parts[0], parts[1]);
            assert!(injected > 0);
            assert!(
                delivered * 2 > injected,
                "mobility run delivered under half: {row:?}"
            );
        }
    }
}
