//! **E10 — Lemmas 2.3–2.6 and Figure 5**: Monte-Carlo verification of the
//! paper's geometric foundations.
//!
//! Each lemma checker is evaluated on a large batch of random
//! configurations satisfying its preconditions; the "holds" fraction must
//! be 1.0. The hexagon tiling (Figure 5) is checked for the partition
//! property (center round-trips) at the paper's cell dimensions.

use super::table::{f3, Table};
use adhoc_geom::lemmas::{lemma_2_3, lemma_2_3_c_min, lemma_2_4, lemma_2_5, lemma_2_6};
use adhoc_geom::{HexCoord, HexGrid, Point};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Run E10 and return the table.
pub fn run(quick: bool) -> Table {
    let samples = if quick { 20_000 } else { 200_000 };
    let mut rng = ChaCha8Rng::seed_from_u64(1010);

    let mut table = Table::new(
        "E10 (Lemmas 2.3–2.6, Fig. 5): Monte-Carlo verification of the geometric foundations",
        &["claim", "configs tested", "holds fraction"],
    );

    // Lemma 2.3
    {
        let mut tested = 0usize;
        let mut held = 0usize;
        for _ in 0..samples {
            let gamma = rng.gen_range(0.001..(std::f64::consts::FRAC_PI_3 - 0.001));
            let la = rng.gen_range(0.1..10.0);
            let lb = la * rng.gen_range(1.0..10.0);
            let a = Point::new(la, 0.0);
            let b = Point::new(lb * gamma.cos(), lb * gamma.sin());
            let c = lemma_2_3_c_min(gamma) * rng.gen_range(1.0..5.0);
            if let Some(chk) = lemma_2_3(a, b, Point::new(0.0, 0.0), c) {
                tested += 1;
                held += chk.holds() as usize;
            }
        }
        table.push(vec![
            "Lemma 2.3".into(),
            tested.to_string(),
            f3(held as f64 / tested.max(1) as f64),
        ]);
    }

    // Lemma 2.4
    {
        let mut tested = 0usize;
        let mut held = 0usize;
        for _ in 0..samples {
            let alpha = rng.gen_range(0.001..(std::f64::consts::FRAC_PI_6 - 0.001));
            let ab = rng.gen_range(0.5..10.0);
            let ac = ab * rng.gen_range(0.01..1.0);
            let a = Point::new(0.0, 0.0);
            let b = Point::new(ab, 0.0);
            let c = Point::new(ac * alpha.cos(), ac * alpha.sin());
            if let Some(chk) = lemma_2_4(a, b, c) {
                tested += 1;
                held += chk.holds() as usize;
            }
        }
        table.push(vec![
            "Lemma 2.4".into(),
            tested.to_string(),
            f3(held as f64 / tested.max(1) as f64),
        ]);
    }

    // Lemma 2.5
    {
        let mut tested = 0usize;
        let mut held = 0usize;
        for _ in 0..samples / 4 {
            let theta = rng.gen_range(0.05..std::f64::consts::FRAC_PI_3);
            let steps = rng.gen_range(2..12usize);
            let shrink: f64 = rng.gen_range(0.5..1.0);
            let gapfrac: f64 = rng.gen_range(0.0..1.0);
            let chain: Vec<Point> = (0..steps)
                .map(|i| {
                    let r = shrink.powi(i as i32);
                    let ang = i as f64 * gapfrac * theta;
                    Point::new(r * ang.cos(), r * ang.sin())
                })
                .collect();
            if let Some(chk) = lemma_2_5(Point::new(0.0, 0.0), &chain, theta) {
                tested += 1;
                held += chk.holds() as usize;
            }
        }
        table.push(vec![
            "Lemma 2.5".into(),
            tested.to_string(),
            f3(held as f64 / tested.max(1) as f64),
        ]);
    }

    // Lemma 2.6
    {
        let mut tested = 0usize;
        let mut held = 0usize;
        for _ in 0..samples {
            let ang = rng.gen_range(0.001..(std::f64::consts::PI / 12.0 - 0.001));
            let ab = rng.gen_range(1.0..5.0);
            let ac = ab * rng.gen_range(0.9..1.0);
            let a = Point::new(0.0, 0.0);
            let b = Point::new(ab, 0.0);
            let c = Point::new(ac * ang.cos(), ac * ang.sin());
            if let Some(chk) = lemma_2_6(a, b, c) {
                tested += 1;
                held += chk.holds() as usize;
            }
        }
        table.push(vec![
            "Lemma 2.6".into(),
            tested.to_string(),
            f3(held as f64 / tested.max(1) as f64),
        ]);
    }

    // Figure 5: hexagon tiling partition property.
    {
        let grid = HexGrid::for_guard_zone(0.5); // side 3 + 2Δ = 4
        let mut held = 0usize;
        let span = 20i32;
        let mut tested = 0usize;
        for q in -span..=span {
            for r in -span..=span {
                let h = HexCoord::new(q, r);
                tested += 1;
                held += (grid.hex_of(grid.center(h)) == h) as usize;
            }
        }
        table.push(vec![
            "Figure 5 tiling (center round-trip)".into(),
            tested.to_string(),
            f3(held as f64 / tested as f64),
        ]);
    }

    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_all_claims_hold_fully() {
        let t = run(true);
        assert_eq!(t.rows.len(), 5);
        for row in &t.rows {
            let tested: usize = row[1].parse().unwrap();
            assert!(tested > 100, "too few configs for {row:?}");
            let frac: f64 = row[2].parse().unwrap();
            assert_eq!(frac, 1.0, "claim failed on some configs: {row:?}");
        }
    }
}
