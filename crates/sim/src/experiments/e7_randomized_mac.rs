//! **E7 — Lemma 3.2 / Theorem 3.3**: under the randomized
//! symmetry-breaking MAC (edge active w.p. `1/(2 I_e)`), every active
//! edge conflicts with probability ≤ 1/2, and the `(T,γ,I)`-balancing
//! algorithm achieves `Ω(1/I)` of the interference-free optimum.
//!
//! Columns: the measured conflict probability (must be ≤ 0.5), the
//! per-step goodput, and the ratio to an interference-free balancing run
//! on the same topology (the Theorem 3.3 comparator), against `1/(8I)`.

use super::table::{f3, Table};
use adhoc_core::ThetaAlg;
use adhoc_geom::distributions::NodeDistribution;
use adhoc_interference::{ActivationRule, InterferenceModel};
use adhoc_routing::{ActiveEdge, BalancingConfig, BalancingRouter, InterferenceRouter};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E7 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick { &[80] } else { &[80, 200, 400] };
    let steps = if quick { 2000 } else { 6000 };
    let rules = [ActivationRule::GlobalBound, ActivationRule::Local];

    let mut table = Table::new(
        "E7 (Lemma 3.2 / Thm 3.3): randomized MAC — conflict prob ≤ 1/2 and Ω(1/I) goodput",
        &[
            "n",
            "rule",
            "I",
            "P[conflict]",
            "goodput/step",
            "no-interf goodput",
            "ratio",
            "1/(8I)",
        ],
    );

    for &n in sizes {
        for rule in rules {
            let mut rng = ChaCha8Rng::seed_from_u64(7000 + n as u64);
            let points = NodeDistribution::unit_square()
                .sample(n, &mut rng)
                .expect("sampling");
            let range = adhoc_geom::default_max_range(n);
            let topo = ThetaAlg::new(PI / 3.0, range).build(&points);
            let cfg = BalancingConfig {
                threshold: 1.0,
                gamma: 0.0,
                capacity: 40,
            };
            let model = InterferenceModel::new(0.5);

            // (T,γ,I)-balancing run.
            let mut ir = InterferenceRouter::new(&topo.spatial, &[0], cfg, model, rule, 2.0);
            let inter_num = ir.mac().interference_number();
            let mut conflicts = 0u64;
            let mut attempts = 0u64;
            let mut proto_rng = ChaCha8Rng::seed_from_u64(7100 + n as u64);
            for s in 0..steps {
                // inject at a rotating set of sources
                ir.inject((1 + (s % (n - 1))) as u32, 0);
                let out = ir.step(&mut proto_rng);
                attempts += out.attempted as u64;
                conflicts += (out.attempted - out.succeeded) as u64;
            }
            let m = ir.metrics();
            let goodput = m.delivered as f64 / steps as f64;

            // Interference-free comparator: the same balancing algorithm
            // with ALL topology edges usable every step (what Theorem 3.3's
            // optimum may do).
            let mut free = BalancingRouter::new(topo.spatial.len(), &[0], cfg);
            let all_edges: Vec<ActiveEdge> = topo
                .spatial
                .graph
                .edges()
                .map(|(u, v, w)| ActiveEdge::new(u, v, w * w))
                .collect();
            for s in 0..steps {
                free.inject((1 + (s % (n - 1))) as u32, 0);
                free.step(&all_edges);
            }
            let free_goodput = free.metrics().delivered as f64 / steps as f64;

            let conflict_p = if attempts > 0 {
                conflicts as f64 / attempts as f64
            } else {
                0.0
            };
            table.push(vec![
                n.to_string(),
                format!("{rule:?}"),
                inter_num.to_string(),
                f3(conflict_p),
                f3(goodput),
                f3(free_goodput),
                f3(goodput / free_goodput.max(1e-9)),
                f3(1.0 / (8.0 * inter_num.max(1) as f64)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_lemma_3_2_and_goodput() {
        let t = run(true);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let conflict_p: f64 = row[3].parse().unwrap();
            assert!(
                conflict_p <= 0.55,
                "conflict probability {conflict_p} > 1/2"
            );
            let ratio: f64 = row[6].parse().unwrap();
            let bound: f64 = row[7].parse().unwrap();
            // Theorem 3.3 shape: goodput ratio at least ~1/(8I).
            assert!(
                ratio >= bound * 0.5,
                "goodput ratio {ratio} below the Ω(1/I) regime ({bound}): {row:?}"
            );
        }
    }
}
