//! **E1 — Lemma 2.1**: the ΘALG topology `𝒩` is connected and every node
//! has degree at most `4π/θ`, for any node distribution.
//!
//! Also reports the kNN baseline, demonstrating the paper's intro claim
//! that "connecting to the k closest neighbors" guarantees neither
//! connectivity nor bounded degree.

use super::table::{f2, theta_label, Table};
use adhoc_core::{verify_lemma_2_1, ThetaAlg};
use adhoc_geom::distributions::NodeDistribution;
use adhoc_graph::is_connected;
use adhoc_proximity::{knn_graph, unit_disk_graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::f64::consts::PI;

/// Run E1 and return the table.
pub fn run(quick: bool) -> Table {
    let sizes: &[usize] = if quick {
        &[100, 200]
    } else {
        &[100, 400, 1600]
    };
    let thetas: &[f64] = if quick {
        &[PI / 3.0, PI / 6.0]
    } else {
        &[PI / 3.0, PI / 4.0, PI / 6.0, PI / 9.0]
    };
    let dists = [
        NodeDistribution::unit_square(),
        NodeDistribution::Clustered {
            clusters: 6,
            sigma: 0.03,
        },
        NodeDistribution::GridJitter { jitter: 0.3 },
    ];

    let mut table = Table::new(
        "E1 (Lemma 2.1): degree bound 4π/θ and connectivity of 𝒩 (kNN shown as the failing baseline)",
        &[
            "dist", "n", "θ", "bound", "maxdeg(𝒩)", "avgdeg(𝒩)", "conn(G*)", "conn(𝒩)",
            "maxdeg(kNN-6)", "conn(kNN-6)",
        ],
    );

    for dist in &dists {
        for &n in sizes {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + n as u64);
            let points = dist.sample(n, &mut rng).expect("sampling");
            let range = adhoc_geom::default_max_range(n).max(0.25);
            let gstar_connected = is_connected(&unit_disk_graph(&points, range).graph);
            for &theta in thetas {
                let topo = ThetaAlg::new(theta, range).build(&points);
                let rep = verify_lemma_2_1(&topo);
                let knn = knn_graph(&points, 6, range);
                table.push(vec![
                    dist.label().to_string(),
                    n.to_string(),
                    theta_label(theta),
                    rep.bound.to_string(),
                    rep.max_degree.to_string(),
                    f2(rep.avg_degree),
                    gstar_connected.to_string(),
                    rep.connected.to_string(),
                    knn.graph.max_degree().to_string(),
                    is_connected(&knn.graph).to_string(),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_bound_never_violated() {
        let t = run(true);
        assert!(!t.rows.is_empty());
        for row in &t.rows {
            let bound: usize = row[3].parse().unwrap();
            let maxdeg: usize = row[4].parse().unwrap();
            assert!(maxdeg <= bound, "row {row:?}");
            // Lemma 2.1: 𝒩 is connected whenever G* is.
            assert_eq!(row[6], row[7], "conn(𝒩) must track conn(G*): {row:?}");
        }
    }
}
